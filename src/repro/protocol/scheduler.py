"""The correct-execution transaction manager (Section 5).

:class:`TransactionManager` drives nested transactions through the four
phases of Section 5.1 — definition, validation, execution, termination
— admitting exactly the parent-based correct executions of the model
(Lemma 4 / Theorem 2):

* **definition** (:meth:`define`) — register a subtransaction with its
  specification, declared update set, and place in the parent's partial
  order; cycle-checks the order and prohibits placement before a
  committed reader (the paper's chosen alternative to undoing commits);
* **validation** (:meth:`validate`) — take ``R_v`` locks on the input
  set, compute D-sets, and select a satisfying version assignment;
* **execution** (:meth:`read`, :meth:`begin_write` /
  :meth:`end_write`) — reads upgrade ``R_v → R`` and may block briefly
  on an in-flight write; writes always proceed and create new versions;
  every completed write triggers Figure 4's re-evaluation, which aborts
  invalidated readers and silently re-assigns still-validating ones;
* **termination** (:meth:`commit`, :meth:`abort`) — commit requires all
  partial-order predecessors committed, all children terminated, and
  the output condition satisfied on the transaction's world view;
  aborts expunge the transaction's versions and cascade to readers.

The manager is synchronous and single-threaded: blocking is represented
by ``BLOCKED`` outcomes plus lock-queue drainage on write completion,
which the discrete-event simulator (:mod:`repro.sim`) turns into
waiting time.  Writes never block and validation blocks only on
in-flight write operations, so **the protocol cannot deadlock** — one
of its central practical advantages over two-phase locking for
long-duration transactions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from ..core.naming import TxnName
from ..core.orders import PartialOrder
from ..core.transactions import Spec
from ..errors import (
    LockProtocolError,
    PartialOrderViolation,
    ProtocolError,
    TransactionAborted,
)
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..storage.database import Database
from ..storage.version_store import Version
from .events import EventKind, EventLog
from .fastpath import ParentIndex
from .locks import LockMode, LockOutcome, LockTable
from .reeval import ReevalDecision, figure4_decision
from .validation import (
    BacktrackingSelector,
    DSet,
    TracedSelector,
    VersionSelector,
    compute_d_set,
)


class TxnPhase(enum.Enum):
    DEFINED = "defined"
    VALIDATED = "validated"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Outcome(enum.Enum):
    """Result of a phase step that can block or fail."""

    OK = "ok"
    BLOCKED = "blocked"
    FAILED = "failed"


@dataclass(slots=True)
class StepResult:
    """Outcome of one protocol step.

    ``blocked_on`` names the entity whose in-flight write blocks the
    step; ``value`` carries a read's result; ``aborted`` /
    ``reassigned`` list the side effects of re-evaluation;
    ``unblocked`` lists transactions whose queued requests were granted
    by this step (the simulator resumes them).
    """

    outcome: Outcome
    value: int | None = None
    blocked_on: str | None = None
    aborted: list[str] = field(default_factory=list)
    reassigned: list[str] = field(default_factory=list)
    unblocked: list[str] = field(default_factory=list)
    reason: str | None = None


@dataclass(slots=True)
class TxnRecord:
    """Bookkeeping for one transaction in the tree."""

    name: str
    parent: str | None
    spec: Spec
    update_set: frozenset[str]
    phase: TxnPhase = TxnPhase.DEFINED
    #: Why the transaction aborted (None while live/committed).  The
    #: server reads this instead of scanning the whole event log
    #: backwards per cascade victim.
    abort_reason: str | None = None
    children: list[str] = field(default_factory=list)
    order_pairs: set[tuple[str, str]] = field(default_factory=set)
    assigned: dict[str, Version] = field(default_factory=dict)
    read_items: set[str] = field(default_factory=set)
    writes: dict[str, Version] = field(default_factory=dict)
    merged_child_writes: dict[str, int] = field(default_factory=dict)
    release_log: list[tuple[str, dict[str, int]]] = field(
        default_factory=list
    )
    in_flight_writes: set[str] = field(default_factory=set)
    child_counter: int = 0
    did_data_access: bool = False

    @property
    def input_set(self) -> frozenset[str]:
        return self.spec.input_constraint.entities()

    @property
    def terminated(self) -> bool:
        return self.phase in (TxnPhase.COMMITTED, TxnPhase.ABORTED)


class TransactionManager:
    """The Section-5 protocol over a multi-version database."""

    def __init__(
        self,
        database: Database,
        selector: VersionSelector | None = None,
        root_spec: Spec | None = None,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        strict: bool = False,
        root_name: str | None = None,
    ) -> None:
        self._db = database
        self._strict = strict
        self._selector: VersionSelector = (
            selector if selector is not None else BacktrackingSelector()
        )
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._registry = registry
        self._locks = LockTable(tracer=self._tracer, registry=registry)
        self._write_spans: dict[tuple[str, str], object] = {}
        if tracer is not None or registry is not None:
            self._wrap_selector()
        self._log = EventLog()
        self._records: dict[str, TxnRecord] = {}
        #: Non-terminated transaction names in definition order —
        #: the abort cascade's scan set (the full record table keeps
        #: every transaction ever defined and only grows).
        self._active: dict[str, None] = {}
        #: Use the bitmask-encoded :class:`ParentIndex` for D-set
        #: computation; ``False`` selects the object-path oracle
        #: (:func:`compute_d_set`) — differential tests flip this.
        self.fast_validation = True
        # Epoch counters invalidating the fast-path caches: structure
        # (children/order/aborted set) changes on define and abort;
        # the version population changes on write and expunge.
        self._struct_epoch = 0
        self._version_epoch = 0
        self._parent_indexes: dict[str, tuple[int, ParentIndex]] = {}
        self._order_cache: dict[str, tuple[int, int, PartialOrder[str]]] = {}
        self._authors_cache: dict[
            str, tuple[int, dict[str | None, list[Version]]]
        ] = {}

        # A custom root label namespaces every transaction name the
        # manager generates (names are {parent}.{counter} paths) — the
        # shard router relies on this to keep per-shard managers from
        # ever colliding on a name.
        self._root_name = (
            str(TxnName.root(root_name))
            if root_name is not None
            else str(TxnName.root())
        )
        root_name = self._root_name
        spec = (
            root_spec
            if root_spec is not None
            else Spec.invariant(database.constraint)
        )
        root = TxnRecord(
            name=root_name,
            parent=None,
            spec=spec,
            update_set=frozenset(database.schema.names),
            phase=TxnPhase.VALIDATED,
        )
        for entity in database.schema.names:
            root.assigned[entity] = database.store.initial(entity)
        self._records[root_name] = root
        self._active[root_name] = None

    # -- observability -------------------------------------------------------

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer after construction (simulator wiring)."""
        self._tracer = tracer
        self._locks.set_tracer(tracer)
        self._wrap_selector()

    def set_registry(self, registry: MetricsRegistry | None) -> None:
        """Attach a metrics registry (lock-queue depths, validation
        latency) after construction."""
        self._registry = registry
        self._locks.set_registry(registry)
        self._wrap_selector()

    def _wrap_selector(self) -> None:
        if isinstance(self._selector, TracedSelector):
            self._selector = TracedSelector(
                self._selector.inner, self._registry, self._tracer
            )
        else:
            self._selector = TracedSelector(
                self._selector, self._registry, self._tracer
            )

    def _select(
        self,
        txn: str,
        d_sets: dict[str, DSet],
        constraint,
        pinned: dict[str, Version] | None = None,
    ) -> dict[str, Version] | None:
        selector = self._selector
        if isinstance(selector, TracedSelector):
            selector.txn_hint = txn
        return selector.select(d_sets, constraint, pinned)

    # -- accessors -----------------------------------------------------------

    @property
    def root(self) -> str:
        return self._root_name

    @property
    def database(self) -> Database:
        return self._db

    @property
    def log(self) -> EventLog:
        return self._log

    @property
    def locks(self) -> LockTable:
        return self._locks

    @property
    def strict(self) -> bool:
        """Whether the manager runs in strict (ST-producing) mode.

        Strict mode trades the protocol's freedom to read and
        overwrite uncommitted versions for strictness of the resulting
        history: validation only assigns versions with relatively
        committed authors, and reads/writes block while an uncommitted
        sibling's version of the item is live.  This makes recovered
        histories ST at the cost of reintroducing blocking (and hence
        potential deadlock, which the server resolves by timeout).
        """
        return self._strict

    def iter_records(self) -> Iterator[TxnRecord]:
        """All transaction records, including the root (§5 bookkeeping)."""
        return iter(self._records.values())

    def record(self, txn: str) -> TxnRecord:
        try:
            return self._records[txn]
        except KeyError:
            raise ProtocolError(f"unknown transaction {txn}") from None

    def phase(self, txn: str) -> TxnPhase:
        return self.record(txn).phase

    def children_of(self, txn: str) -> tuple[str, ...]:
        return tuple(self.record(txn).children)

    def order_of(self, txn: str) -> PartialOrder[str]:
        """The partial order ``P`` over a transaction's children.

        Cached: the eager transitive closure is expensive to rebuild
        per call, and children/pairs only ever grow — their lengths
        are an exact invalidation key.
        """
        record = self.record(txn)
        key = (len(record.children), len(record.order_pairs))
        cached = self._order_cache.get(txn)
        if cached is not None and (cached[0], cached[1]) == key:
            return cached[2]
        order = PartialOrder(record.children, record.order_pairs)
        self._order_cache[txn] = (key[0], key[1], order)
        return order

    def _parent_index(self, parent: str) -> ParentIndex:
        """The bitmask D-set index for one parent, epoch-cached.

        One build serves every validation/re-assignment/commit check
        until the next define or abort — under dispatcher batching,
        one conflict-structure pass per batch.
        """
        cached = self._parent_indexes.get(parent)
        if cached is not None and cached[0] == self._struct_epoch:
            return cached[1]
        parent_record = self.record(parent)
        records = self._records
        index = ParentIndex(
            parent_record.children,
            parent_record.order_pairs,
            {
                child: records[child].update_set
                for child in parent_record.children
            },
            aborted=[
                child
                for child in parent_record.children
                if records[child].phase is TxnPhase.ABORTED
            ],
        )
        self._parent_indexes[parent] = (self._struct_epoch, index)
        return index

    def _versions_by_author(
        self, item: str
    ) -> dict[str | None, list[Version]]:
        """All versions of ``item`` grouped by author, creation order."""
        cached = self._authors_cache.get(item)
        if cached is not None and cached[0] == self._version_epoch:
            return cached[1]
        by_author: dict[str | None, list[Version]] = {}
        for version in self._db.store.versions(item):
            by_author.setdefault(version.author, []).append(version)
        self._authors_cache[item] = (self._version_epoch, by_author)
        return by_author

    def _adopt_record(self, record: TxnRecord) -> None:
        """Install an externally rebuilt record (recovery only).

        Keeps the live-transaction set and fast-path caches coherent
        when the durability layer resurrects records it persisted.
        """
        self._records[record.name] = record
        if record.terminated:
            self._active.pop(record.name, None)
        else:
            self._active[record.name] = None
        self._struct_epoch += 1

    def assigned_versions(self, txn: str) -> dict[str, Version]:
        return dict(self.record(txn).assigned)

    # -- phase 1: definition -----------------------------------------------------

    def define(
        self,
        parent: str,
        spec: Spec,
        update_set: Iterable[str],
        predecessors: Iterable[str] = (),
        successors: Iterable[str] = (),
        undo_committed_successors: bool = False,
    ) -> str:
        """Define a subtransaction (§5.1, transaction definition phase).

        ``predecessors``/``successors`` are existing siblings the new
        transaction must follow/precede in the parent's partial order.
        Raises :class:`ProtocolError` when the order would become
        cyclic, or when the new transaction is placed before a
        *committed* sibling whose input set it updates — unless
        ``undo_committed_successors`` is set, in which case the paper's
        alternative option is taken: the committed successor's
        relative commit is undone (see :meth:`undo_relative_commit`)
        and the definition proceeds.
        """
        parent_record = self.record(parent)
        if parent_record.terminated:
            raise ProtocolError(f"parent {parent} has terminated")
        if parent_record.did_data_access:
            raise ProtocolError(
                f"{parent} performs data accesses and so cannot nest "
                "subtransactions (a transaction does one or the other)"
            )
        updates = frozenset(update_set)
        unknown = updates - set(self._db.schema.names)
        unknown |= spec.input_constraint.entities() - set(
            self._db.schema.names
        )
        if unknown:
            raise ProtocolError(f"unknown entities {sorted(unknown)}")

        name = str(
            TxnName.parse(parent).child(parent_record.child_counter)
        )
        preds = list(predecessors)
        succs = list(successors)
        for sibling in preds + succs:
            if sibling not in parent_record.children:
                raise ProtocolError(
                    f"{sibling} is not an existing child of {parent}"
                )
        for successor in succs:
            successor_record = self.record(successor)
            if successor_record.phase is TxnPhase.COMMITTED and (
                updates & successor_record.input_set
            ):
                if undo_committed_successors:
                    undone = self.undo_relative_commit(successor)
                    if undone.outcome is Outcome.OK:
                        continue
                raise ProtocolError(
                    f"cannot place {name} before committed {successor}: "
                    f"it updates items {sorted(updates & successor_record.input_set)} "
                    "that the committed transaction read"
                )

        pairs = set(parent_record.order_pairs)
        pairs.update((pred, name) for pred in preds)
        pairs.update((name, succ) for succ in succs)
        try:
            # Cycle check — PartialOrder raises on cycles.
            PartialOrder(parent_record.children + [name], pairs)
        except PartialOrderViolation as error:
            raise ProtocolError(
                f"defining {name} would make {parent}'s partial order "
                f"cyclic: {error}"
            ) from error

        parent_record.child_counter += 1
        parent_record.children.append(name)
        parent_record.order_pairs = pairs
        self._records[name] = TxnRecord(
            name=name,
            parent=parent,
            spec=spec,
            update_set=updates,
        )
        self._active[name] = None
        self._struct_epoch += 1
        self._log.record(
            EventKind.DEFINE,
            name,
            parent=parent,
            updates=sorted(updates),
            predecessors=sorted(preds),
            successors=sorted(succs),
            input_constraint=str(spec.input_constraint),
            output_condition=str(spec.output_condition),
        )
        if self._tracer.enabled:
            self._tracer.event(
                "define",
                name,
                parent_txn=parent,
                updates=sorted(updates),
                predecessors=sorted(preds),
                successors=sorted(succs),
            )
        return name

    # -- phase 2: validation ----------------------------------------------------

    def validate(self, txn: str) -> StepResult:
        """Acquire ``R_v`` locks and assign versions (§5.1 part 1+2).

        Returns ``BLOCKED`` if some input item is under an in-flight
        write (retry after the write completes); ``FAILED`` (and aborts
        the transaction) when no version assignment can satisfy the
        input constraint.
        """
        record = self.record(txn)
        if record.phase is not TxnPhase.DEFINED:
            raise ProtocolError(
                f"{txn} cannot validate from phase {record.phase.value}"
            )
        tracer = self._tracer
        span = (
            tracer.start("validate", txn, items=sorted(record.input_set))
            if tracer.enabled
            else None
        )
        for item in sorted(record.input_set):
            if self._locks.holds(txn, item, LockMode.RV):
                continue
            outcome = self._locks.request(txn, item, LockMode.RV)
            if outcome is LockOutcome.BLOCKED:
                self._log.record(EventKind.BLOCKED, txn, entity=item)
                if span is not None:
                    tracer.end(span, outcome="blocked", blocked_on=item)
                return StepResult(Outcome.BLOCKED, blocked_on=item)

        d_sets = self._compute_d_sets(record)
        if self._strict:
            blocked_item: str | None = None
            strict_sets: dict[str, DSet] = {}
            for item, d_set in d_sets.items():
                kept = tuple(
                    version
                    for version in d_set.candidates
                    if self._strict_visible(txn, version)
                )
                if not kept:
                    blocked_item = item
                    break
                strict_sets[item] = replace(d_set, candidates=kept)
            if blocked_item is not None:
                # Every candidate for this item is an uncommitted
                # sibling's version: wait for the author to terminate
                # rather than read dirty data (strictness).
                self._log.record(
                    EventKind.BLOCKED, txn, entity=blocked_item
                )
                if span is not None:
                    tracer.end(
                        span, outcome="blocked", blocked_on=blocked_item
                    )
                return StepResult(
                    Outcome.BLOCKED, blocked_on=blocked_item
                )
            d_sets = strict_sets
        assignment = self._select(
            txn, d_sets, record.spec.input_constraint
        )
        if assignment is None:
            self._log.record(
                EventKind.VALIDATE, txn, ok=False
            )
            if span is not None:
                tracer.end(
                    span,
                    outcome="failed",
                    reason="input constraint unsatisfiable",
                )
            cascade = self.abort(
                txn, reason="input constraint unsatisfiable"
            )
            return StepResult(
                Outcome.FAILED,
                reason="input constraint unsatisfiable",
                aborted=[name for name in cascade if name != txn],
            )
        record.assigned = assignment
        record.phase = TxnPhase.VALIDATED
        self._log.record(
            EventKind.VALIDATE,
            txn,
            ok=True,
            assigned={
                item: str(version)
                for item, version in sorted(assignment.items())
            },
        )
        if span is not None:
            tracer.end(
                span,
                outcome="ok",
                assigned={
                    item: str(version)
                    for item, version in sorted(assignment.items())
                },
            )
        return StepResult(Outcome.OK)

    def _compute_d_sets(self, record: TxnRecord) -> dict[str, DSet]:
        """D-sets for every input item (§5.1 part 1).

        The default path answers the three exclusion rules from the
        bitmask-encoded :class:`ParentIndex`; the object path below is
        the oracle it must match bit-for-bit (the differential property
        tests run both).
        """
        if not self.fast_validation:
            return self._compute_d_sets_object(record)
        assert record.parent is not None
        parent = record.parent
        index = self._parent_index(parent)
        d_sets: dict[str, DSet] = {}
        for item in sorted(record.input_set):
            members_mask, pred_mask = index.d_members(record.name, item)
            by_author = self._versions_by_author(item)
            parent_version = self._parent_world_version(parent, item)
            candidates: list[Version] = []
            # Ascending-bit traversal == the object path's sorted-name
            # candidate order.
            for member in index.names_from(
                pred_mask if pred_mask else members_mask
            ):
                versions = by_author.get(member)
                if versions:
                    candidates.extend(versions)
            used_parent = False
            if not pred_mask or not candidates:
                candidates.append(parent_version)
                used_parent = True
            d_sets[item] = DSet(
                item=item,
                members=frozenset(index.names_from(members_mask)),
                predecessors=frozenset(index.names_from(pred_mask)),
                candidates=tuple(candidates),
                used_parent_version=used_parent,
            )
        return d_sets

    def _compute_d_sets_object(
        self, record: TxnRecord
    ) -> dict[str, DSet]:
        assert record.parent is not None
        parent_record = self.record(record.parent)
        order = self.order_of(record.parent)
        siblings = [
            child
            for child in parent_record.children
            if child != record.name
            and self.record(child).phase is not TxnPhase.ABORTED
        ]
        update_sets = {
            sibling: self.record(sibling).update_set
            for sibling in siblings
        }
        d_sets: dict[str, DSet] = {}
        for item in sorted(record.input_set):
            versions_by = {
                sibling: self._versions_authored(sibling, item)
                for sibling in siblings
            }
            parent_version = self._parent_world_version(
                record.parent, item
            )
            d_sets[item] = compute_d_set(
                item,
                record.name,
                siblings,
                order,
                update_sets,
                versions_by,
                parent_version,
            )
        return d_sets

    def _versions_authored(
        self, txn: str, item: str
    ) -> tuple[Version, ...]:
        return tuple(
            version
            for version in self._db.store.versions(item)
            if version.author == txn
        )

    def _parent_world_version(self, parent: str, item: str) -> Version:
        """The parent's world view of one item, as a version.

        The parent's own assigned version, unless a committed child has
        already released a newer one into the parent's world.
        """
        parent_record = self.record(parent)
        merged = parent_record.merged_child_writes.get(item)
        if merged is not None:
            # Find the youngest surviving version carrying that value,
            # authored within the parent's subtree.
            for version in reversed(self._db.store.versions(item)):
                if version.value == merged:
                    return version
        assigned = parent_record.assigned.get(item)
        if assigned is not None:
            return assigned
        if parent_record.parent is None:
            return self._db.store.initial(item)
        return self._parent_world_version(parent_record.parent, item)

    # -- phase 3: execution --------------------------------------------------------

    def read(self, txn: str, entity: str) -> StepResult:
        """A read request: upgrade ``R_v`` to ``R`` and serve the
        assigned version (§5.1, execution phase).

        Rejects (raises) reads of items outside the validated input
        set; returns ``BLOCKED`` while another transaction's write is
        in flight on the entity.
        """
        record = self.record(txn)
        self._require_active(record)
        if record.phase is not TxnPhase.VALIDATED:
            raise ProtocolError(f"{txn} must validate before reading")
        if self._strict:
            assigned = record.assigned.get(entity)
            if assigned is not None and not self._strict_visible(
                txn, assigned
            ):
                self._log.record(EventKind.BLOCKED, txn, entity=entity)
                return StepResult(Outcome.BLOCKED, blocked_on=entity)
        if self._locks.holds(txn, entity, LockMode.R):
            pass  # repeated read: lock already held
        else:
            outcome = self._locks.upgrade_rv_to_r(txn, entity)
            if outcome is LockOutcome.BLOCKED:
                self._log.record(EventKind.BLOCKED, txn, entity=entity)
                return StepResult(Outcome.BLOCKED, blocked_on=entity)
        version = record.assigned.get(entity)
        if version is None:
            raise LockProtocolError(
                f"{txn}: no version assigned for {entity}"
            )
        record.read_items.add(entity)
        record.did_data_access = True
        self._log.record(
            EventKind.READ, txn, entity=entity, version=str(version)
        )
        if self._tracer.enabled:
            self._tracer.event(
                "read",
                txn,
                entity=entity,
                version=str(version),
                value=version.value,
            )
        return StepResult(Outcome.OK, value=version.value)

    def begin_write(self, txn: str, entity: str) -> StepResult:
        """Take the ``W`` lock — always granted (Figure 3)."""
        record = self.record(txn)
        self._require_active(record)
        if record.phase is not TxnPhase.VALIDATED:
            raise ProtocolError(f"{txn} must validate before writing")
        if entity not in record.update_set:
            raise ProtocolError(
                f"{txn} did not declare {entity} in its update set"
            )
        if self._strict:
            blocker = self._strict_write_blocker(txn, entity)
            if blocker is not None:
                # Strictness also forbids overwriting uncommitted data:
                # wait for the earlier writer to terminate.
                self._log.record(EventKind.BLOCKED, txn, entity=entity)
                return StepResult(Outcome.BLOCKED, blocked_on=entity)
        outcome = self._locks.request(txn, entity, LockMode.W)
        assert outcome is LockOutcome.GRANTED, "writes never block"
        record.in_flight_writes.add(entity)
        record.did_data_access = True
        self._log.record(EventKind.WRITE_BEGIN, txn, entity=entity)
        if self._tracer.enabled:
            self._write_spans[(txn, entity)] = self._tracer.start(
                "write", txn, entity=entity
            )
        return StepResult(Outcome.OK)

    def end_write(self, txn: str, entity: str, value: int) -> StepResult:
        """Complete a write: new version, release ``W``, re-evaluate.

        Figure 4 runs against every sibling holding a read-side lock,
        and again (per the compatibility matrix's "re-eval" entries)
        for every reader the lock release unblocks.
        """
        record = self.record(txn)
        if entity not in record.in_flight_writes:
            raise ProtocolError(f"{txn} has no write in flight on {entity}")
        version = self._db.write(entity, value, txn)
        self._version_epoch += 1
        record.writes[entity] = version
        record.in_flight_writes.discard(entity)
        self._log.record(
            EventKind.WRITE_END,
            txn,
            entity=entity,
            value=value,
            version=str(version),
        )
        write_span = self._write_spans.pop((txn, entity), None)
        if write_span is not None:
            self._tracer.end(
                write_span, value=value, version=str(version)
            )

        result = StepResult(Outcome.OK)
        # Re-eval current read-side holders first (Figure 4 proper)…
        holders = sorted(self._locks.read_side_holders(entity) - {txn})
        self._reeval(txn, entity, version, holders, result)
        # …then release the write lock and re-eval the unblocked.
        granted = self._locks.release(txn, entity, LockMode.W)
        newly = sorted({request.txn for request in granted} - {txn})
        result.unblocked.extend(
            t for t in newly if t not in result.aborted
        )
        for unblocked_txn in newly:
            if unblocked_txn in result.aborted:
                continue
            for event_txn in (unblocked_txn,):
                self._log.record(
                    EventKind.UNBLOCKED, event_txn, entity=entity
                )
        self._reeval(
            txn,
            entity,
            version,
            [t for t in newly if t not in result.aborted],
            result,
        )
        return result

    def write(self, txn: str, entity: str, value: int) -> StepResult:
        """An instantaneous write (begin + end in one step)."""
        self.begin_write(txn, entity)
        return self.end_write(txn, entity, value)

    def _reeval(
        self,
        writer: str,
        entity: str,
        version: Version,
        holders: Iterable[str],
        result: StepResult,
    ) -> None:
        writer_record = self.record(writer)
        if writer_record.parent is None:
            return
        order = self.order_of(writer_record.parent)
        for holder in holders:
            if holder in result.aborted:
                continue
            holder_record = self._records.get(holder)
            if holder_record is None or holder_record.terminated:
                continue
            assigned = holder_record.assigned.get(entity)
            author = assigned.author if assigned is not None else None
            decision = figure4_decision(
                writer,
                holder,
                author,
                order,
                holder_has_read=entity in holder_record.read_items,
            )
            if decision is ReevalDecision.NONE:
                continue
            self._log.record(
                EventKind.REEVAL,
                holder,
                writer=writer,
                entity=entity,
                decision=decision.value,
            )
            if self._tracer.enabled:
                self._tracer.event(
                    "reeval",
                    holder,
                    writer=writer,
                    entity=entity,
                    decision=decision.value,
                )
            if decision is ReevalDecision.ABORT:
                cascade = self.abort(
                    holder,
                    reason=(
                        f"partial-order invalidation: read {entity} "
                        f"before predecessor {writer} wrote it"
                    ),
                )
                result.aborted.extend(
                    name
                    for name in cascade
                    if name not in result.aborted
                )
            else:
                if self._reassign(holder_record, entity, version):
                    result.reassigned.append(holder)
                else:
                    cascade = self.abort(
                        holder,
                        reason=(
                            "re-assignment failed: input constraint "
                            f"unsatisfiable with new {entity} version"
                        ),
                    )
                    result.aborted.extend(
                        name
                        for name in cascade
                        if name not in result.aborted
                    )

    def _reassign(
        self, record: TxnRecord, entity: str, new_version: Version
    ) -> bool:
        """Figure 4's re-assign: redo selection with the item pinned.

        Any version assignment may change as long as the transaction
        has not read the item; items already read stay pinned to the
        versions actually read.
        """
        d_sets = self._compute_d_sets(record)
        pinned: dict[str, Version] = {entity: new_version}
        for item in record.read_items:
            if item in record.assigned:
                pinned[item] = record.assigned[item]
        assignment = self._select(
            record.name, d_sets, record.spec.input_constraint, pinned
        )
        if assignment is None:
            return False
        record.assigned = assignment
        self._log.record(
            EventKind.REASSIGN,
            record.name,
            entity=entity,
            version=str(new_version),
        )
        if self._tracer.enabled:
            self._tracer.event(
                "reassign",
                record.name,
                entity=entity,
                version=str(new_version),
            )
        return True

    def _strict_visible(self, txn: str, version: Version) -> bool:
        """Is a version safe to expose to ``txn`` under strict mode?

        Safe means its author has relatively committed (or it is the
        initial ``t_0`` version, or the reader's own write).  Authors
        without a live record — possible only for versions restored
        from a checkpoint, whose authors had committed pre-crash — are
        treated as committed.
        """
        author = version.author
        if author is None or author == txn:
            return True
        author_record = self._records.get(author)
        if author_record is None:
            return True
        return author_record.phase is TxnPhase.COMMITTED

    def _strict_write_blocker(self, txn: str, entity: str) -> str | None:
        """The author of a live uncommitted version of ``entity``, if any."""
        for version in self._db.store.versions(entity):
            if not self._strict_visible(txn, version):
                return version.author
        return None

    def _require_active(self, record: TxnRecord) -> None:
        if record.phase is TxnPhase.ABORTED:
            raise TransactionAborted(record.name, "already aborted")
        if record.phase is TxnPhase.COMMITTED:
            raise ProtocolError(f"{record.name} already committed")
        if record.children:
            raise ProtocolError(
                f"{record.name} nests subtransactions and so cannot "
                "perform data accesses"
            )

    # -- phase 4: termination ----------------------------------------------------

    def view(self, txn: str) -> dict[str, int]:
        """The transaction's world view over all entities.

        Own writes shadow merged child writes, which shadow the
        assigned input versions, which shadow the parent's view.
        """
        record = self.record(txn)
        if record.parent is None:
            base = {
                name: version.value
                for name, version in record.assigned.items()
            }
        else:
            base = self.view(record.parent)
        for item, version in record.assigned.items():
            base[item] = version.value
        for item, value in record.merged_child_writes.items():
            base[item] = value
        for item, version in record.writes.items():
            base[item] = version.value
        return base

    def can_commit(self, txn: str) -> tuple[bool, str]:
        """Check the three commit rules; returns (ok, reason)."""
        record = self.record(txn)
        if record.terminated:
            return False, f"already {record.phase.value}"
        if record.in_flight_writes:
            return False, "write in flight"
        if record.parent is not None:
            index = self._parent_index(record.parent)
            for predecessor in index.predecessor_names(txn):
                predecessor_phase = self.record(predecessor).phase
                if predecessor_phase is TxnPhase.ABORTED:
                    # An aborted predecessor can never commit; waiting
                    # on it would deadlock the successor.  Its effects
                    # are gone (versions expunged, readers cascaded),
                    # so the ordering obligation is vacuous.
                    continue
                if predecessor_phase is not TxnPhase.COMMITTED:
                    return (
                        False,
                        f"predecessor {predecessor} not committed",
                    )
        for child in record.children:
            if not self.record(child).terminated:
                return False, f"subtransaction {child} not terminated"
        view = self.view(txn)
        satisfied = record.spec.output_condition.evaluate(view)
        if self._tracer.enabled:
            self._tracer.event(
                "predicate.eval",
                txn,
                predicate=str(record.spec.output_condition),
                role="output-condition",
                satisfied=satisfied,
            )
        if not satisfied:
            return False, "output condition unsatisfied"
        return True, "ok"

    def unstable_reads_from(self, txn: str) -> str | None:
        """First live transaction this commit's input depends on.

        A top-level commit is only crash-durable if every version in
        its (and its committed descendants') input assignment was
        authored by a transaction whose whole chain up to top level has
        committed: recovery expunges versions authored by transactions
        in flight at the crash and cascade-aborts their committed
        readers, so acknowledging such a commit would promise
        durability the log cannot keep.  Returns the name of the first
        dependency that has not terminated (the caller should wait for
        it), or ``None`` when every reads-from edge is stable.

        The durability boundary is a commit directly under the root:
        the root transaction never commits, so its children's commits
        are what recovery treats as durable.  Deeper (relative)
        commits return ``None`` — they carry no durability promise,
        and gating them on siblings would deadlock the hierarchy.  An
        aborted author is treated as stable: its versions are
        expunged and the abort cascade owns the reader's fate.
        Read-only.
        """
        record = self.record(txn)
        if record.parent is None:
            return None  # a root never carries a durability promise
        if self.record(record.parent).parent is not None:
            return None  # relative commit below the boundary
        subtree = {txn}
        stack = [record]
        while stack:
            node = stack.pop()
            for child in node.children:
                subtree.add(child)
                stack.append(self.record(child))
        stack = [record]
        while stack:
            node = stack.pop()
            for child in node.children:
                child_record = self.record(child)
                if child_record.phase is TxnPhase.COMMITTED:
                    stack.append(child_record)
            for version in node.assigned.values():
                author = version.author
                while author is not None and author not in subtree:
                    author_record = self._records.get(author)
                    if author_record is None:
                        # Restored from a checkpoint: the author
                        # committed before the previous crash.
                        break
                    if author_record.parent is None:
                        # Reached the root: the chain below it has
                        # committed, which is as durable as it gets.
                        break
                    if author_record.phase is TxnPhase.ABORTED:
                        break
                    if author_record.phase is not TxnPhase.COMMITTED:
                        return author
                    # Relatively committed: durable only once the
                    # chain reaches a commit directly under the root.
                    author = author_record.parent
        return None

    def commit(self, txn: str) -> StepResult:
        """Commit (relative to the parent): release versions upward.

        Returns ``FAILED`` with the blocking rule when the §5.1 commit
        conditions do not hold — committing is only legal once every
        predecessor has committed, every child has terminated, and the
        output condition holds on the transaction's world view.
        """
        tracer = self._tracer
        span = tracer.start("commit", txn) if tracer.enabled else None
        ok, reason = self.can_commit(txn)
        if not ok:
            if span is not None:
                tracer.end(span, outcome="failed", reason=reason)
            return StepResult(Outcome.FAILED, reason=reason)
        record = self.record(txn)
        record.phase = TxnPhase.COMMITTED
        self._active.pop(txn, None)
        if record.parent is not None:
            parent_record = self.record(record.parent)
            # Release this transaction's world (its writes and its
            # children's merged writes) into the parent's world view.
            released = dict(record.merged_child_writes)
            released.update(
                {
                    item: version.value
                    for item, version in record.writes.items()
                }
            )
            parent_record.release_log.append((txn, released))
            parent_record.merged_child_writes.update(released)
        unblocked = self._locks.release_all(txn)
        self._log.record(EventKind.COMMIT, txn)
        if span is not None:
            tracer.end(span, outcome="committed")
        result = StepResult(Outcome.OK)
        result.unblocked.extend(
            sorted({request.txn for request in unblocked})
        )
        return result

    def undo_relative_commit(self, txn: str) -> StepResult:
        """Undo a commit that is still only relative to the parent.

        Section 5.1 notes a commit "is only relative to the parent",
        so it can be undone as long as the parent has not itself
        committed — the alternative to prohibiting placement of new
        predecessors before committed readers.  The transaction's
        released writes are withdrawn from the parent's world view and
        it returns to the VALIDATED phase, from which it can re-commit
        (or be aborted).  Data accesses after an undo are not
        supported — the read-side locks were dropped at commit time.
        """
        record = self.record(txn)
        if record.phase is not TxnPhase.COMMITTED:
            return StepResult(
                Outcome.FAILED,
                reason=f"{txn} is not committed",
            )
        if record.parent is None:
            return StepResult(
                Outcome.FAILED, reason="the root's commit is absolute"
            )
        parent_record = self.record(record.parent)
        if parent_record.phase is TxnPhase.COMMITTED:
            return StepResult(
                Outcome.FAILED,
                reason=(
                    f"{record.parent} has committed; {txn}'s commit is "
                    "no longer relative"
                ),
            )
        parent_record.release_log = [
            entry for entry in parent_record.release_log
            if entry[0] != txn
        ]
        rebuilt: dict[str, int] = {}
        for __, released in parent_record.release_log:
            rebuilt.update(released)
        parent_record.merged_child_writes = rebuilt
        record.phase = TxnPhase.VALIDATED
        self._active[txn] = None
        # Re-acquire read-side locks so Figure-4 re-evaluation sees the
        # transaction again: a predecessor placed after the undo that
        # writes an item this transaction already *read* must be able
        # to detect the partial-order invalidation and abort it.
        for item in sorted(record.input_set):
            if not self._locks.holds(txn, item, LockMode.RV):
                self._locks.request(txn, item, LockMode.RV)
            if item in record.read_items and not self._locks.holds(
                txn, item, LockMode.R
            ):
                self._locks.request(txn, item, LockMode.R)
        self._log.record(EventKind.UNDO_COMMIT, txn)
        if self._tracer.enabled:
            self._tracer.event("undo-commit", txn)
        return StepResult(Outcome.OK)

    def abort(self, txn: str, reason: str = "requested") -> list[str]:
        """Abort a transaction (and its active subtree), cascading.

        Expunges every version the subtree authored; any *sibling*
        transaction whose assignment referenced an expunged version is
        re-assigned (if it has not read the item) or aborted in
        cascade.  Returns all transaction names aborted, most-derived
        first.
        """
        record = self.record(txn)
        if record.phase is TxnPhase.ABORTED:
            return []
        if record.phase is TxnPhase.COMMITTED and record.parent is not None:
            parent_phase = self.record(record.parent).phase
            if parent_phase is TxnPhase.COMMITTED:
                raise ProtocolError(
                    f"{txn} is committed beyond its parent; too late to abort"
                )
        aborted: list[str] = []
        for child in list(record.children):
            if not self.record(child).terminated:
                aborted.extend(self.abort(child, reason=f"parent {txn} aborted"))
        if self._tracer.enabled:
            for entity in record.in_flight_writes:
                write_span = self._write_spans.pop((txn, entity), None)
                if write_span is not None:
                    self._tracer.end(write_span, outcome="aborted")
        record.phase = TxnPhase.ABORTED
        record.abort_reason = reason
        record.in_flight_writes.clear()
        self._active.pop(txn, None)
        self._struct_epoch += 1
        removed = self._db.store.expunge_author(txn)
        if removed:
            self._version_epoch += 1
        self._locks.release_all(txn)
        self._log.record(EventKind.ABORT, txn, reason=reason)
        if self._tracer.enabled:
            self._tracer.event(
                "abort",
                txn,
                reason=reason,
                expunged=len(removed),
            )
        aborted.append(txn)

        # Cascade: siblings whose assigned versions died with us.  Only
        # live transactions can hold a stale assignment — the record
        # table keeps every transaction ever defined, so scanning it
        # here was quadratic over a server's lifetime.
        dead = {(version.entity, version.sequence) for version in removed}
        if dead:
            for other_name in list(self._active):
                other = self._records[other_name]
                if other.terminated or other.name == txn:
                    continue
                stale_items = [
                    item
                    for item, version in other.assigned.items()
                    if (version.entity, version.sequence) in dead
                ]
                if not stale_items:
                    continue
                if any(item in other.read_items for item in stale_items):
                    aborted.extend(
                        self.abort(
                            other.name,
                            reason=f"read a version aborted with {txn}",
                        )
                    )
                    continue
                # Re-select without the dead versions.
                if other.parent is not None and other.phase is TxnPhase.VALIDATED:
                    d_sets = self._compute_d_sets(other)
                    pinned = {
                        item: other.assigned[item]
                        for item in other.read_items
                        if item in other.assigned
                    }
                    assignment = self._select(
                        other.name, d_sets, other.spec.input_constraint,
                        pinned,
                    )
                    if assignment is None:
                        aborted.extend(
                            self.abort(
                                other.name,
                                reason="no valid versions after cascade",
                            )
                        )
                    else:
                        other.assigned = assignment
        return aborted

    # -- verification (Lemma 4 / Theorem 2) -----------------------------------------

    def verify_parent_based(self, parent: str) -> list[str]:
        """Lemma 4: every committed child read only parent/sibling state.

        Returns violation descriptions (empty = parent-based).  Checks
        that each committed child's assigned versions were authored by
        ``t_0``/the parent's world or by a sibling that is not a
        partial-order successor.
        """
        violations: list[str] = []
        parent_record = self.record(parent)
        order = self.order_of(parent)
        children = set(parent_record.children)
        for child in parent_record.children:
            child_record = self.record(child)
            if child_record.phase is not TxnPhase.COMMITTED:
                continue
            for item, version in child_record.assigned.items():
                author = version.author
                if author is None or author == parent:
                    continue
                if author in children:
                    if order.precedes(child, author):
                        violations.append(
                            f"{child} read {item} from successor {author}"
                        )
                    continue
                # Authored deeper in a sibling subtree: find the
                # sibling ancestor.
                sibling = self._sibling_ancestor(author, parent)
                if sibling is None:
                    violations.append(
                        f"{child} read {item} from non-sibling {author}"
                    )
                elif order.precedes(child, sibling):
                    violations.append(
                        f"{child} read {item} from successor subtree "
                        f"{sibling}"
                    )
        return violations

    def _sibling_ancestor(self, txn: str, parent: str) -> str | None:
        name: str | None = txn
        while name is not None:
            record = self._records.get(name)
            if record is None:
                return None
            if record.parent == parent:
                return name
            name = record.parent
        return None

    def verify_correctness(self, parent: str) -> list[str]:
        """Theorem 2: inputs satisfied at read time, output at commit.

        Re-checks, from the recorded assignments, that every committed
        child's input constraint holds on the version state it was
        assigned, and that the parent's output condition holds on its
        current world view (when the parent has committed).
        """
        violations: list[str] = []
        parent_record = self.record(parent)
        for child in parent_record.children:
            child_record = self.record(child)
            if child_record.phase is not TxnPhase.COMMITTED:
                continue
            values = {
                item: version.value
                for item, version in child_record.assigned.items()
            }
            constraint = child_record.spec.input_constraint
            relevant = {
                name: values[name]
                for name in constraint.entities()
                if name in values
            }
            if set(relevant) != set(constraint.entities()):
                violations.append(
                    f"{child}: assigned state does not cover I_t"
                )
            elif not constraint.evaluate(relevant):
                violations.append(
                    f"{child}: input constraint violated at read time"
                )
        if parent_record.phase is TxnPhase.COMMITTED:
            view = self.view(parent)
            if not parent_record.spec.output_condition.evaluate(view):
                violations.append(
                    f"{parent}: output condition violated at commit"
                )
        return violations
