"""The protocol's lock manager — Figure 3's compatibility matrix.

Three lock modes (Section 5.1):

* ``R_v`` — *read for validation*: taken on every input-constraint item
  during the validation phase, protecting the version assignment.
* ``R`` — read: an upgrade of an ``R_v`` lock, taken per read request.
* ``W`` — write: held **only for the duration of the write operation**,
  never to end of transaction — the source of the protocol's short
  waits.

Compatibility (reconstructed from Figure 3 and the surrounding prose —
the scan's row/column alignment is ambiguous, the prose is not):

======  =====  =====  =====
held    R_v    R      W
======  =====  =====  =====
R_v     grant  grant  grant
R       grant  grant  grant
W       block  block  grant
======  =====  =====  =====

* "A write request … can never fail": ``W`` is always granted — in a
  multiversion system a write creates a *new* version, so it cannot
  disturb readers of old ones.  Two sibling writes coexist (new
  versions each).
* ``R_v``/``R`` requested while another transaction holds ``W``:
  blocked ("temporarily blocked on some writing transaction"); the
  blocking window is one write operation.  On unblocking, the
  scheduler runs re-evaluation "as if the matrix result had been
  re-eval".
* Locks are placed on the entity (the *type*), not on a version.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import LockProtocolError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer


class LockMode(enum.Enum):
    """Figure 3's three lock modes."""

    RV = "R_v"
    R = "R"
    W = "W"

    def __str__(self) -> str:
        return self.value


class LockOutcome(enum.Enum):
    GRANTED = "granted"
    BLOCKED = "blocked"


def compatible(held: LockMode, requested: LockMode) -> bool:
    """Figure 3: only a held ``W`` blocks, and only read-side requests."""
    if held is LockMode.W and requested in (LockMode.RV, LockMode.R):
        return False
    return True


@dataclass(frozen=True, slots=True)
class LockRequest:
    """A queued (blocked) lock request."""

    txn: str
    entity: str
    mode: LockMode


@dataclass(slots=True)
class _EntityLocks:
    #: Creation rank in the table — lets the per-transaction exit path
    #: reproduce the whole-table iteration order exactly.
    ordinal: int = 0
    holders: dict[LockMode, set[str]] = field(
        default_factory=lambda: {mode: set() for mode in LockMode}
    )
    queue: list[LockRequest] = field(default_factory=list)


class LockTable:
    """Entity-level lock table with FIFO queueing of blocked reads.

    Optionally observable: with a tracer attached, blocks and queue
    grants become ``lock.block``/``lock.grant`` events; with a metrics
    registry attached, every block observes the entity's queue depth
    into the ``lock_queue_depth`` histogram (the percentile source for
    the benchmark reports).
    """

    def __init__(
        self,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._entities: dict[str, _EntityLocks] = {}
        # Per-transaction reverse indexes.  ``release_all`` and
        # ``locks_of`` used to scan the whole table on every commit and
        # abort — O(entities ever locked) per transaction exit, which
        # dominated long server runs.  ``_held`` maps txn → entity →
        # modes; ``_queued`` maps txn → entity → queued-request count.
        # Both are maintained on every grant/block/release so the exit
        # path touches only the entities the transaction actually used.
        self._held: dict[str, dict[str, set[LockMode]]] = {}
        self._queued: dict[str, dict[str, int]] = {}
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._registry = registry

    def set_tracer(self, tracer: Tracer) -> None:
        self._tracer = tracer

    def set_registry(self, registry: MetricsRegistry | None) -> None:
        self._registry = registry

    def _entry(self, entity: str) -> _EntityLocks:
        entry = self._entities.get(entity)
        if entry is None:
            entry = self._entities[entity] = _EntityLocks(
                ordinal=len(self._entities)
            )
        return entry

    # -- reverse-index bookkeeping ------------------------------------------

    def _note_grant(self, txn: str, entity: str, mode: LockMode) -> None:
        self._held.setdefault(txn, {}).setdefault(entity, set()).add(mode)

    def _note_release(self, txn: str, entity: str, mode: LockMode) -> None:
        by_entity = self._held.get(txn)
        if by_entity is None:
            return
        modes = by_entity.get(entity)
        if modes is None:
            return
        modes.discard(mode)
        if not modes:
            del by_entity[entity]
            if not by_entity:
                del self._held[txn]

    def _note_queued(self, txn: str, entity: str, delta: int) -> None:
        by_entity = self._queued.setdefault(txn, {})
        count = by_entity.get(entity, 0) + delta
        if count > 0:
            by_entity[entity] = count
        else:
            by_entity.pop(entity, None)
            if not by_entity:
                self._queued.pop(txn, None)

    # -- queries ------------------------------------------------------------

    def holds(self, txn: str, entity: str, mode: LockMode) -> bool:
        entry = self._entities.get(entity)
        return bool(entry) and txn in entry.holders[mode]

    def holders(self, entity: str, mode: LockMode) -> frozenset[str]:
        entry = self._entities.get(entity)
        if entry is None:
            return frozenset()
        return frozenset(entry.holders[mode])

    def read_side_holders(self, entity: str) -> frozenset[str]:
        """Transactions holding ``R`` or ``R_v`` on an entity.

        These are Figure 4's ``R`` array — the candidates for
        re-evaluation when a new version of the entity appears.
        """
        return self.holders(entity, LockMode.R) | self.holders(
            entity, LockMode.RV
        )

    def queued(self, entity: str) -> tuple[LockRequest, ...]:
        entry = self._entities.get(entity)
        if entry is None:
            return ()
        return tuple(entry.queue)

    def locks_of(self, txn: str) -> list[tuple[str, LockMode]]:
        """Every lock a transaction currently holds.

        Served from the per-transaction index — O(locks held), not
        O(entities ever locked) — in the same order the whole-table
        scan produced (entity creation order, then mode order).
        """
        by_entity = self._held.get(txn)
        if not by_entity:
            return []
        result = []
        for entity in sorted(
            by_entity, key=lambda name: self._entities[name].ordinal
        ):
            modes = by_entity[entity]
            for mode in LockMode:
                if mode in modes:
                    result.append((entity, mode))
        return result

    # -- requests --------------------------------------------------------------

    def request(
        self, txn: str, entity: str, mode: LockMode
    ) -> LockOutcome:
        """Apply Figure 3 to a lock request.

        Granted locks are recorded; blocked requests join the entity's
        FIFO queue and are granted by :meth:`release` when the
        conflicting ``W`` disappears.
        """
        entry = self._entry(entity)
        for held_mode, holders in entry.holders.items():
            blockers = holders - {txn}
            if blockers and not compatible(held_mode, mode):
                entry.queue.append(LockRequest(txn, entity, mode))
                self._note_queued(txn, entity, +1)
                if self._registry is not None:
                    self._registry.histogram(
                        "lock_queue_depth"
                    ).observe(len(entry.queue))
                if self._tracer.enabled:
                    self._tracer.event(
                        "lock.block",
                        txn,
                        entity=entity,
                        mode=str(mode),
                        held_by=sorted(blockers),
                        queue_depth=len(entry.queue),
                    )
                return LockOutcome.BLOCKED
        entry.holders[mode].add(txn)
        self._note_grant(txn, entity, mode)
        return LockOutcome.GRANTED

    def upgrade_rv_to_r(self, txn: str, entity: str) -> LockOutcome:
        """A read request: upgrade the validation lock to a read lock.

        The protocol rejects reads without a prior ``R_v`` lock ("if
        the transaction does not have a R_v-lock on the data item, then
        the read is rejected").
        """
        if not self.holds(txn, entity, LockMode.RV):
            raise LockProtocolError(
                f"{txn}: read of {entity} without a validation lock"
            )
        return self.request(txn, entity, LockMode.R)

    def release(
        self, txn: str, entity: str, mode: LockMode
    ) -> list[LockRequest]:
        """Release a lock; grant whatever the FIFO queue now admits.

        Returns the newly granted requests — the scheduler must run
        re-evaluation for each (they were blocked on a write).
        """
        entry = self._entry(entity)
        if txn not in entry.holders[mode]:
            raise LockProtocolError(
                f"{txn} does not hold a {mode} lock on {entity}"
            )
        entry.holders[mode].discard(txn)
        self._note_release(txn, entity, mode)
        return self._drain_queue(entry)

    def release_all(self, txn: str) -> list[LockRequest]:
        """Drop every lock a transaction holds (commit/abort cleanup).

        Visits only the entities the transaction holds or queues on
        (the reverse indexes), in entity creation order — the same
        entities, in the same order, the old whole-table scan touched,
        without paying for every entity the table has ever seen.
        """
        held = self._held.pop(txn, {})
        queued = self._queued.pop(txn, {})
        touched = sorted(
            set(held) | set(queued),
            key=lambda name: self._entities[name].ordinal,
        )
        granted: list[LockRequest] = []
        for entity in touched:
            entry = self._entities[entity]
            changed = False
            for mode in held.get(entity, ()):
                entry.holders[mode].discard(txn)
                changed = True
            if entity in queued:
                entry.queue = [
                    request
                    for request in entry.queue
                    if request.txn != txn
                ]
            if changed:
                granted.extend(self._drain_queue(entry))
        return granted

    def _drain_queue(self, entry: _EntityLocks) -> list[LockRequest]:
        granted: list[LockRequest] = []
        still_blocked: list[LockRequest] = []
        for request in entry.queue:
            blocked = False
            for held_mode, holders in entry.holders.items():
                if (holders - {request.txn}) and not compatible(
                    held_mode, request.mode
                ):
                    blocked = True
                    break
            if blocked:
                still_blocked.append(request)
            else:
                entry.holders[request.mode].add(request.txn)
                self._note_grant(request.txn, request.entity, request.mode)
                self._note_queued(request.txn, request.entity, -1)
                granted.append(request)
                if self._tracer.enabled:
                    self._tracer.event(
                        "lock.grant",
                        request.txn,
                        entity=request.entity,
                        mode=str(request.mode),
                    )
        entry.queue = still_blocked
        return granted


def lock_compatibility_matrix() -> dict[tuple[str, str], bool]:
    """Figure 3 as data, for documentation/tests/benchmarks."""
    return {
        (str(held), str(requested)): compatible(held, requested)
        for held in LockMode
        for requested in LockMode
    }
