"""The Section-5 correct-execution protocol."""

from .events import Event, EventKind, EventLog
from .locks import (
    LockMode,
    LockOutcome,
    LockRequest,
    LockTable,
    compatible,
    lock_compatibility_matrix,
)
from .reeval import ReevalDecision, figure4_decision
from .replay import histories_match, log_from_json, log_to_json, replay
from .scheduler import (
    Outcome,
    StepResult,
    TransactionManager,
    TxnPhase,
    TxnRecord,
)
from .validation import (
    BacktrackingSelector,
    DSet,
    GreedyLatestSelector,
    SatSelector,
    VersionSelector,
    compute_d_set,
)

__all__ = [
    "BacktrackingSelector",
    "DSet",
    "Event",
    "EventKind",
    "EventLog",
    "GreedyLatestSelector",
    "LockMode",
    "LockOutcome",
    "LockRequest",
    "LockTable",
    "Outcome",
    "ReevalDecision",
    "SatSelector",
    "StepResult",
    "TransactionManager",
    "TxnPhase",
    "TxnRecord",
    "VersionSelector",
    "compatible",
    "compute_d_set",
    "figure4_decision",
    "histories_match",
    "log_from_json",
    "log_to_json",
    "lock_compatibility_matrix",
    "replay",
]
