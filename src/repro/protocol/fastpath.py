"""Bitmask-encoded D-set index — the validator's live-path fast lane.

:func:`~repro.protocol.validation.compute_d_set` is a direct
transliteration of §5.1: for each sibling it scans *every other*
sibling looking for an intervening updater, an O(|siblings|²) rule-3
check per item per validation.  Under the live server a busy parent
accumulates hundreds of children, and profiling shows that generator
expression dominating the whole dispatcher (tens of millions of steps
per loadgen run).

This module re-encodes the per-parent structure the three exclusion
rules consult as machine integers, the same playbook the census fast
path used (stage the structure once, then answer each query with a few
bitwise operations):

* children are interned to bit positions **in sorted-name order**, so
  iterating a mask from the low bit up reproduces exactly the
  ``sorted(...)`` traversal the object path uses to build candidate
  lists;
* the parent's partial order ``P+`` becomes two arrays of masks —
  ``pred_masks[i]`` / ``succ_masks[i]`` hold the transitive
  predecessors/successors of child ``i`` — built by one topological
  DP over the covering pairs (aborted children stay in the ground set:
  they still mediate reachability, exactly as the object
  :class:`~repro.core.orders.PartialOrder` closure does);
* each item's *live updaters* become one mask, so rule 3's
  "some other updater lies strictly between ``t_j`` and ``t_i``"
  collapses to ``updaters & succ_masks[j] & pred_masks[i] != 0``.

The rules then read, for transaction ``i`` and item ``d``:

* rule 1+2: candidates = ``updaters(d) & ~succ_masks[i] & ~bit(i)``;
* rule 3: drop candidate ``j`` iff
  ``updaters(d) & succ_masks[j] & pred_masks[i]`` is non-zero;
* predecessor rule: ``members & pred_masks[i]``.

Strictness of ``P+`` makes the self-exclusions of the object path
(``other not in (sibling, txn)``) automatic: ``j ∉ succ_masks[j]`` and
``i ∉ pred_masks[i]``.

The index is a pure function of the parent's children, order pairs,
update sets, and the aborted subset — the transaction manager caches
one per parent and invalidates by a structure epoch bumped on define
and abort.  The object path remains in place as the differential
oracle (``TransactionManager.fast_validation = False`` selects it);
``tests/protocol/test_fastpath_validation.py`` holds the two paths
equal on hypothesis-generated histories.
"""

from __future__ import annotations

from typing import Iterable, Mapping


class ParentIndex:
    """Integer-encoded §5.1 exclusion rules for one parent's children."""

    __slots__ = (
        "names",
        "ids",
        "pred_masks",
        "succ_masks",
        "live_mask",
        "_update_sets",
        "_updater_masks",
    )

    def __init__(
        self,
        children: Iterable[str],
        order_pairs: Iterable[tuple[str, str]],
        update_sets: Mapping[str, frozenset[str]],
        aborted: Iterable[str] = (),
    ) -> None:
        # Bit i ↔ names[i]; sorted so low-to-high bit iteration is
        # exactly the object path's sorted-name traversal.
        self.names: list[str] = sorted(children)
        self.ids: dict[str, int] = {
            name: index for index, name in enumerate(self.names)
        }
        count = len(self.names)
        succ_adj = [0] * count
        pred_adj = [0] * count
        for before, after in order_pairs:
            succ_adj[self.ids[before]] |= 1 << self.ids[after]
            pred_adj[self.ids[after]] |= 1 << self.ids[before]

        # Kahn topological order over the (acyclic — define() checked)
        # covering pairs, then one DP pass per direction turns the
        # immediate adjacency into transitive reachability masks.
        indegree = [_popcount(pred_adj[i]) for i in range(count)]
        topo: list[int] = [i for i in range(count) if indegree[i] == 0]
        cursor = 0
        while cursor < len(topo):
            node = topo[cursor]
            cursor += 1
            for succ in _bits(succ_adj[node]):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    topo.append(succ)

        pred_masks = [0] * count
        for node in topo:
            mask = 0
            for pred in _bits(pred_adj[node]):
                mask |= (1 << pred) | pred_masks[pred]
            pred_masks[node] = mask
        succ_masks = [0] * count
        for node in reversed(topo):
            mask = 0
            for succ in _bits(succ_adj[node]):
                mask |= (1 << succ) | succ_masks[succ]
            succ_masks[node] = mask
        self.pred_masks = pred_masks
        self.succ_masks = succ_masks

        live = (1 << count) - 1 if count else 0
        for name in aborted:
            live &= ~(1 << self.ids[name])
        self.live_mask = live
        self._update_sets = update_sets
        # item -> mask of *live* children declaring it, built lazily.
        self._updater_masks: dict[str, int] = {}

    # -- queries -----------------------------------------------------------

    def updater_mask(self, item: str) -> int:
        mask = self._updater_masks.get(item)
        if mask is None:
            mask = 0
            ids = self.ids
            for name, updates in self._update_sets.items():
                if item in updates:
                    mask |= 1 << ids[name]
            mask &= self.live_mask
            self._updater_masks[item] = mask
        return mask

    def d_members(self, txn: str, item: str) -> tuple[int, int]:
        """(members, predecessors) masks under the three §5.1 rules."""
        txn_id = self.ids[txn]
        updaters = self.updater_mask(item)
        pred_of_txn = self.pred_masks[txn_id]
        succ_masks = self.succ_masks
        # Rules 1+2 in one expression; rule 3 per surviving bit.
        remaining = updaters & ~succ_masks[txn_id] & ~(1 << txn_id)
        members = 0
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            sibling_id = low.bit_length() - 1
            if not (updaters & succ_masks[sibling_id] & pred_of_txn):
                members |= low
        return members, members & pred_of_txn

    def names_from(self, mask: int) -> list[str]:
        """Mask → names, ascending bit order == sorted-name order."""
        names = self.names
        out: list[str] = []
        while mask:
            low = mask & -mask
            mask ^= low
            out.append(names[low.bit_length() - 1])
        return out

    def predecessor_names(self, txn: str) -> list[str]:
        """All strict ``P+`` predecessors (aborted included), sorted."""
        return self.names_from(self.pred_masks[self.ids[txn]])


def _popcount(mask: int) -> int:
    return bin(mask).count("1")


def _bits(mask: int):
    """Indices of set bits, ascending."""
    while mask:
        low = mask & -mask
        mask ^= low
        yield low.bit_length() - 1
