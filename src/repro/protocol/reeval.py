"""Figure 4 — the re-evaluation procedure's decision logic.

On every write completion the protocol scans the transactions holding
read-side locks on the written item and decides, per holder, whether
the new version invalidates its assignment.  The nested conditions of
Figure 4, in order:

1. ``prefix(R[i].name) = prefix(W.name)`` — only *siblings* are
   affected (each nesting level is protected independently);
2. ``path(parent(W).P, W, R[i])`` — the writer must be a partial-order
   *predecessor* of the holder (otherwise the holder is allowed to keep
   reading an older world);
3. ``path(parent(W).P, V, W)`` where ``V`` authored the version the
   holder was assigned — the writer must *succeed* that author, i.e.
   the holder is now reading a stale predecessor state;
4. then: a holder that has **already read** the item must be aborted
   (partial-order invalidation); a holder still in validation
   (``R_v`` only) can be salvaged by **re-assignment**.

This module is pure decision logic (easily property-tested); the
scheduler applies the decisions.

One extension beyond the literal figure, documented here because it is
deliberate: when the stale version's author *is the writer itself*
(``V = W``: the writer wrote the item twice), ``path(P, V, W)`` is
false by irreflexivity and Figure 4 would do nothing — leaving the
holder assigned a non-final predecessor version, which breaks the
parent-based property Lemma 4 claims.  We treat ``V = W`` like a stale
author, re-assigning (or aborting) the holder.  The initial version
(author ``t_0``) precedes everything, so it is always stale once a true
predecessor writes.
"""

from __future__ import annotations

import enum

from ..core.orders import PartialOrder


class ReevalDecision(enum.Enum):
    """What Figure 4 does to one lock holder."""

    NONE = "none"
    REASSIGN = "re-assign"
    ABORT = "abort"


def _prefix(name: str) -> str:
    """Figure 4's ``prefix``: the parent part of a dotted name."""
    head, _, __ = name.rpartition(".")
    return head


def figure4_decision(
    writer: str,
    holder: str,
    version_author: str | None,
    parent_order: PartialOrder[str],
    holder_has_read: bool,
) -> ReevalDecision:
    """Decide the fate of one read-side lock holder after a write.

    Parameters
    ----------
    writer:
        ``W`` — the transaction that just wrote the item.
    holder:
        ``R[i]`` — a transaction holding an ``R`` or ``R_v`` lock.
    version_author:
        The author of the version currently assigned to / read by the
        holder for this item (``None`` = the parent's / initial
        version, which every sibling's write supersedes).
    parent_order:
        ``parent(W).P`` restricted to the current siblings.
    holder_has_read:
        Has the holder performed the actual read (holds ``R``), or is
        it still in validation (``R_v`` only)?
    """
    if holder == writer:
        return ReevalDecision.NONE
    if _prefix(holder) != _prefix(writer):
        return ReevalDecision.NONE  # not siblings
    if not parent_order.precedes(writer, holder):
        return ReevalDecision.NONE  # writer is not a predecessor
    writer_supersedes = (
        version_author is None
        or version_author == writer
        or parent_order.precedes(version_author, writer)
    )
    if not writer_supersedes:
        return ReevalDecision.NONE
    if holder_has_read:
        return ReevalDecision.ABORT
    return ReevalDecision.REASSIGN
