"""Protocol event log.

The transaction manager records every externally visible step as an
event.  The log serves three purposes: observability (examples print
it), verification (the L4/T2 property tests reconstruct executions from
it), and metrics (the simulator derives wait/abort counts from it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator


class EventKind(enum.Enum):
    DEFINE = "define"
    VALIDATE = "validate"
    ASSIGN = "assign"
    READ = "read"
    BLOCKED = "blocked"
    UNBLOCKED = "unblocked"
    WRITE_BEGIN = "write-begin"
    WRITE_END = "write-end"
    REEVAL = "re-eval"
    REASSIGN = "re-assign"
    COMMIT = "commit"
    UNDO_COMMIT = "undo-commit"
    ABORT = "abort"


@dataclass(frozen=True, slots=True)
class Event:
    """One protocol step: who, what, and the step's details."""

    kind: EventKind
    txn: str
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        body = ", ".join(
            f"{key}={value}" for key, value in sorted(self.details.items())
        )
        return f"[{self.kind.value}] {self.txn} {body}".rstrip()


class EventLog:
    """An append-only event log with simple query helpers."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def record(self, kind: EventKind, txn: str, **details: Any) -> Event:
        event = Event(kind, txn, details)
        self._events.append(event)
        return event

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        return [event for event in self._events if event.kind is kind]

    def for_txn(self, txn: str) -> list[Event]:
        return [event for event in self._events if event.txn == txn]

    def count(self, kind: EventKind) -> int:
        return sum(1 for event in self._events if event.kind is kind)

    def dump(self) -> str:
        """Human-readable transcript of the run."""
        return "\n".join(str(event) for event in self._events)
