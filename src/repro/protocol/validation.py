"""The transaction validation phase (Section 5.1).

Validation assigns versions to a freshly defined transaction in two
parts, implemented faithfully:

**Part 1 — the D-set.**  For each data item ``d`` in the transaction's
input constraint, collect the set ``D`` of sibling transactions whose
versions of ``d`` may be read without partial-order invalidation.  A
sibling ``t_j`` is in ``D`` unless

1. ``(t_i, t_j) ∈ P+`` — it is a successor of the transaction being
   validated, or
2. ``d ∉ U_{t_j}`` — it does not update the item, or
3. some other updater of ``d`` lies strictly between ``t_j`` and
   ``t_i`` in ``P+``.

If some member of ``D`` is a *predecessor* of ``t_i``, only the
predecessor-written versions are allowed; otherwise any version written
by a member of ``D``, or the version assigned to the parent, may be
used.  Members that have not yet written the item contribute nothing —
the protocol's **optimistic assumption** (re-evaluation repairs the
assignment if they write later).

**Part 2 — selection.**  Choose one candidate version per item so the
input constraint is satisfied.  The paper notes exhaustive search is
exponential and suggests heuristics or query-style processing; the
library offers pluggable selectors:

* :class:`BacktrackingSelector` — most-constrained-variable
  backtracking (the default; exact, usually fast);
* :class:`SatSelector` — compile to CNF and run DPLL (exact;
  demonstrates the "treat selection as a query" idea);
* :class:`GreedyLatestSelector` — latest-version-first greedy probe
  with backtracking fallback, modelling the "expected case" the paper
  argues is cheap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol

from ..core.orders import PartialOrder
from ..core.predicates import Predicate
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..storage.version_store import Version


@dataclass(frozen=True, slots=True)
class DSet:
    """The validation-phase candidate set for one data item."""

    item: str
    members: frozenset[str]
    predecessors: frozenset[str]
    candidates: tuple[Version, ...]
    used_parent_version: bool

    @property
    def candidate_values(self) -> list[int]:
        return sorted({version.value for version in self.candidates})


def compute_d_set(
    item: str,
    txn: str,
    siblings: Iterable[str],
    order: PartialOrder[str],
    update_sets: Mapping[str, frozenset[str]],
    versions_by: Mapping[str, tuple[Version, ...]],
    parent_version: Version,
) -> DSet:
    """Apply the three §5.1 exclusion rules and the predecessor rule.

    Parameters
    ----------
    item:
        The data item ``d`` being provisioned.
    txn:
        The transaction ``t_i`` being validated.
    siblings:
        Names of ``t_i``'s siblings (same parent), excluding ``t_i``.
    order:
        The parent's partial order ``P`` over its children.
    update_sets:
        Declared update set ``U_t`` per sibling.
    versions_by:
        Versions of ``item`` already written, per sibling (creation
        order).  Siblings that have not written are simply absent or
        mapped to an empty tuple — the optimistic assumption.
    parent_version:
        The version of ``item`` assigned to the parent (its world
        view), the fallback candidate.
    """
    members: set[str] = set()
    for sibling in siblings:
        if sibling == txn:
            continue
        if order.precedes(txn, sibling):  # rule 1: successor
            continue
        if item not in update_sets.get(sibling, frozenset()):  # rule 2
            continue
        intervening = any(
            item in update_sets.get(other, frozenset())
            and order.precedes(sibling, other)
            and order.precedes(other, txn)
            for other in siblings
            if other not in (sibling, txn)
        )
        if intervening:  # rule 3
            continue
        members.add(sibling)

    predecessors = frozenset(
        member for member in members if order.precedes(member, txn)
    )

    candidates: list[Version] = []
    used_parent = False
    if predecessors:
        # Only predecessor-written versions are allowed.  A predecessor
        # that has not written yet contributes nothing (optimism); if
        # none has written, fall back to the parent's version, which
        # re-evaluation will revisit when the predecessor writes.
        for member in sorted(predecessors):
            candidates.extend(versions_by.get(member, ()))
        if not candidates:
            candidates.append(parent_version)
            used_parent = True
    else:
        for member in sorted(members):
            candidates.extend(versions_by.get(member, ()))
        candidates.append(parent_version)
        used_parent = True

    return DSet(
        item=item,
        members=frozenset(members),
        predecessors=predecessors,
        candidates=tuple(candidates),
        used_parent_version=used_parent,
    )


class VersionSelector(Protocol):
    """Part-2 strategy: pick one candidate version per item."""

    def select(
        self,
        d_sets: Mapping[str, DSet],
        constraint: Predicate,
        pinned: Mapping[str, Version] | None = None,
    ) -> dict[str, Version] | None:
        """A satisfying assignment of versions, or ``None``.

        ``pinned`` forces specific items to specific versions — used by
        re-assignment, which must include a predecessor's new version.
        """
        ...


def _value_index(
    d_sets: Mapping[str, DSet],
    pinned: Mapping[str, Version] | None,
) -> tuple[dict[str, list[int]], dict[tuple[str, int], Version]]:
    """Candidate values per item, plus a (item, value) → version map.

    When several candidate versions share a value, the newest wins —
    reading the freshest witness of a value keeps re-evaluation churn
    low.
    """
    pinned = pinned or {}
    values: dict[str, list[int]] = {}
    back: dict[tuple[str, int], Version] = {}
    for item, d_set in d_sets.items():
        if item in pinned:
            version = pinned[item]
            values[item] = [version.value]
            back[(item, version.value)] = version
            continue
        seen: dict[int, Version] = {}
        for version in d_set.candidates:
            existing = seen.get(version.value)
            if existing is None or version.sequence > existing.sequence:
                seen[version.value] = version
        values[item] = sorted(seen)
        for value, version in seen.items():
            back[(item, value)] = version
    return values, back


class BacktrackingSelector:
    """Exact selection by most-constrained-variable backtracking."""

    def select(
        self,
        d_sets: Mapping[str, DSet],
        constraint: Predicate,
        pinned: Mapping[str, Version] | None = None,
    ) -> dict[str, Version] | None:
        values, back = _value_index(d_sets, pinned)
        relevant = {
            name: values[name]
            for name in constraint.entities()
            if name in values
        }
        chosen = constraint.find_satisfying_assignment(relevant)
        if chosen is None:
            return None
        full = {name: candidates[0] for name, candidates in values.items()}
        full.update(chosen)
        return {name: back[(name, value)] for name, value in full.items()}


class SatSelector:
    """Exact selection via the DPLL SAT back-end.

    Demonstrates the paper's suggestion of treating version selection
    as a query over an indexed search structure — here the CNF encoding
    plays the role of the query plan.
    """

    def select(
        self,
        d_sets: Mapping[str, DSet],
        constraint: Predicate,
        pinned: Mapping[str, Version] | None = None,
    ) -> dict[str, Version] | None:
        from ..sat.reduction import solve_candidate_selection

        values, back = _value_index(d_sets, pinned)
        relevant = {
            name: values[name]
            for name in constraint.entities()
            if name in values
        }
        if relevant:
            chosen = solve_candidate_selection(relevant, constraint)
            if chosen is None:
                return None
        else:
            chosen = {}
        full = {name: candidates[0] for name, candidates in values.items()}
        full.update(chosen)
        return {name: back[(name, value)] for name, value in full.items()}


class TracedSelector:
    """Observability wrapper around any :class:`VersionSelector`.

    Times each selection into the registry's ``validation_latency_us``
    histogram (wall-clock microseconds — selection is real CPU work,
    unlike the simulator's virtual time) and emits a
    ``validate.select`` event carrying the candidate-space size, so
    slow validations are attributable to their search space.
    """

    def __init__(
        self,
        inner: VersionSelector,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.inner = inner
        self._registry = registry
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: The transaction the next selection is on behalf of; set by
        #: the transaction manager before each call (single-threaded).
        self.txn_hint: str = "-"

    def select(
        self,
        d_sets: Mapping[str, DSet],
        constraint: Predicate,
        pinned: Mapping[str, Version] | None = None,
    ) -> dict[str, Version] | None:
        started = time.perf_counter()
        assignment = self.inner.select(d_sets, constraint, pinned)
        elapsed_us = (time.perf_counter() - started) * 1e6
        if self._registry is not None:
            self._registry.histogram(
                "validation_latency_us"
            ).observe(elapsed_us)
        if self._tracer.enabled:
            self._tracer.event(
                "validate.select",
                self.txn_hint,
                items=len(d_sets),
                candidates=sum(
                    len(d_set.candidates) for d_set in d_sets.values()
                ),
                satisfiable=assignment is not None,
                elapsed_us=round(elapsed_us, 1),
            )
        return assignment


class GreedyLatestSelector:
    """Latest-versions-first probe, falling back to exact search.

    The paper argues the expected case is cheap because most items have
    few versions and any satisfying set will do.  This selector first
    tries the single all-latest assignment (O(|I_t|)); only on failure
    does it pay for the exact search.
    """

    def __init__(self) -> None:
        self._fallback = BacktrackingSelector()
        self.probe_hits = 0
        self.probe_misses = 0

    def select(
        self,
        d_sets: Mapping[str, DSet],
        constraint: Predicate,
        pinned: Mapping[str, Version] | None = None,
    ) -> dict[str, Version] | None:
        pinned = pinned or {}
        probe: dict[str, Version] = {}
        for item, d_set in d_sets.items():
            if item in pinned:
                probe[item] = pinned[item]
            else:
                probe[item] = max(
                    d_set.candidates, key=lambda v: v.sequence
                )
        trial = {item: version.value for item, version in probe.items()}
        relevant_entities = constraint.entities()
        if all(name in trial for name in relevant_entities):
            if constraint.evaluate(
                {name: trial[name] for name in trial}
            ):
                self.probe_hits += 1
                return probe
        self.probe_misses += 1
        return self._fallback.select(d_sets, constraint, pinned)
