"""The modeled network layer of the cluster simulator.

Every byte that crosses a node boundary in the DES goes through one
:class:`Network`: per-link base latency, seeded jitter, an optional
bandwidth cap, per-node slowdown multipliers, and partition windows in
virtual time.  Delivery on a link is FIFO — a message never overtakes
an earlier one on the same ``(src, dst)`` pair — which is exactly the
ordering contract the replication protocol assumes from TCP.

Determinism: each link owns a :class:`random.Random` seeded from the
scenario seed and the link's name, so the jitter stream is a pure
function of the seed and the order in which transits start — and on
the virtual-clock loop that order is itself deterministic.  No global
RNG, no wall clock.

Partitions attach to a *node* (matching the fuzz plan's
``[replica_index, start, end]`` windows): while a node is inside one
of its windows, nothing is delivered to or from it.  Transits started
during a window are held and delivered after it heals (the TCP
retransmit model); the replication pumps additionally check
:meth:`partitioned` themselves and drop their cursor instead, which is
what exercises the hub's resync paths.
"""

from __future__ import annotations

import asyncio
import random
import zlib
from typing import Callable, Iterable

#: Poll period (virtual seconds) while a transit waits out a partition.
_PARTITION_POLL = 0.05


class Network:
    """Latency / jitter / bandwidth / partition model over node names."""

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        seed: int = 0,
        latency: float = 0.002,
        jitter: float = 0.002,
        bandwidth: float = 0.0,
        slow_nodes: "dict[str, float] | None" = None,
        partitions: "Iterable[tuple[str, float, float]] | None" = None,
    ) -> None:
        self._clock = clock
        self.seed = seed
        self.latency = latency
        self.jitter = jitter
        #: Bytes per virtual second; ``0`` disables the bandwidth term.
        self.bandwidth = bandwidth
        self.slow_nodes = dict(slow_nodes or {})
        #: ``node -> [(start, end), ...]`` partition windows.
        self.partitions: dict[str, list[tuple[float, float]]] = {}
        for node, start, end in partitions or ():
            self.partitions.setdefault(node, []).append((start, end))
        self._rngs: dict[tuple[str, str], random.Random] = {}
        self._last_delivery: dict[tuple[str, str], float] = {}
        self.messages = 0
        self.bytes_sent = 0

    # -- partitions --------------------------------------------------------

    def partitioned(self, node: str, now: "float | None" = None) -> bool:
        """Is ``node`` inside one of its partition windows?"""
        at = self._clock() if now is None else now
        return any(
            start <= at < end
            for start, end in self.partitions.get(node, ())
        )

    def heal(self) -> None:
        """Operator intervention: drop every remaining window."""
        self.partitions.clear()

    # -- delay model -------------------------------------------------------

    def _rng(self, src: str, dst: str) -> random.Random:
        key = (src, dst)
        rng = self._rngs.get(key)
        if rng is None:
            rng = random.Random(
                self.seed ^ zlib.crc32(f"{src}->{dst}".encode("utf-8"))
            )
            self._rngs[key] = rng
        return rng

    def delay(self, src: str, dst: str, nbytes: int) -> float:
        """One message's raw transit time (before FIFO clamping)."""
        multiplier = max(
            self.slow_nodes.get(src, 1.0), self.slow_nodes.get(dst, 1.0)
        )
        base = self.latency * multiplier
        if self.jitter > 0.0:
            base += self.jitter * self._rng(src, dst).random()
        if self.bandwidth > 0.0:
            base += nbytes / self.bandwidth
        return base

    async def transit(self, src: str, dst: str, nbytes: int = 256) -> float:
        """Deliver one message ``src -> dst``; returns delivery time.

        Waits out partition windows covering either endpoint, then
        sleeps the modeled delay, clamped so deliveries on a link stay
        FIFO (a later message is never delivered before an earlier
        one, no matter how the jitter draws land).
        """
        while self.partitioned(src) or self.partitioned(dst):
            await asyncio.sleep(_PARTITION_POLL)
        now = self._clock()
        deliver_at = max(
            now + self.delay(src, dst, nbytes),
            self._last_delivery.get((src, dst), 0.0),
        )
        self._last_delivery[(src, dst)] = deliver_at
        self.messages += 1
        self.bytes_sent += nbytes
        remaining = deliver_at - now
        if remaining > 0.0:
            await asyncio.sleep(remaining)
        return deliver_at
