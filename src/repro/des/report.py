"""Deterministic report assembly for cluster simulation runs.

Everything in a report is a pure function of the scenario and the
virtual-time execution — no wall-clock timestamps, no environment —
so the same scenario + seed produces a byte-identical JSON document,
and a report diff IS a behavior diff.
"""

from __future__ import annotations

import math
from typing import Any

SIM_REPORT_VERSION = 1


def percentile(values: "list[float]", q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def _epoch_section(entry: dict[str, Any]) -> dict[str, Any]:
    evidence = entry["evidence"]
    oracles = entry["oracles"]
    replies = [e for e in evidence.events if e["kind"] == "reply"]
    section = {
        "epoch": entry["epoch"],
        "crashed": evidence.crashed,
        "crash": evidence.crash_info,
        "counts": {
            "events": len(evidence.events),
            "requests": len(evidence.requests),
            "replies": len(replies),
            "busy": sum(
                1 for e in evidence.events if e["kind"] == "busy"
            ),
            "timeouts": sum(
                1 for e in replies if e.get("code") == "TIMEOUT"
            ),
            "commits_acked": len(evidence.acked_committed),
            "commits_indeterminate": len(
                evidence.indeterminate_committed
            ),
        },
        "acked_committed": list(evidence.acked_committed),
        "indeterminate_committed": list(
            evidence.indeterminate_committed
        ),
        "recovered_committed": (
            list(evidence.recovery.committed)
            if evidence.recovery is not None
            else None
        ),
        "recovery_error": evidence.recovery_error,
        "drain_summary": evidence.drain_summary,
        "replicas": evidence.replicas,
        "oracles": {
            result.name: {
                "ok": result.ok,
                "skipped": result.skipped,
                "details": list(result.details),
            }
            for result in oracles
        },
        "schedule": evidence.events,
    }
    section["ok"] = all(
        v["ok"] for v in section["oracles"].values()
    )
    return section


def _metrics(
    epochs: "list[dict[str, Any]]",
    samples: "list[dict[str, Any]]",
    virtual_duration: float,
) -> dict[str, Any]:
    commit_attempts = 0
    commits_acked = 0
    commits_indeterminate = 0
    aborts_acked = 0
    busy = 0
    timeouts = 0
    follower_reads_ok = 0
    follower_reads_rejected = 0
    for entry in epochs:
        evidence = entry["evidence"]
        commits_acked += len(evidence.acked_committed)
        commits_indeterminate += len(
            evidence.indeterminate_committed
        )
        for request in evidence.requests.values():
            status = request["status"]
            if request["op"] == "commit" and status != "pending":
                commit_attempts += 1
            elif request["op"] == "abort" and status == "ok":
                aborts_acked += 1
            elif request["op"] == "follower_read":
                if status == "ok":
                    follower_reads_ok += 1
                elif status != "pending":
                    follower_reads_rejected += 1
        for event in evidence.events:
            if event["kind"] == "busy":
                busy += 1
            elif (
                event["kind"] == "reply"
                and event.get("code") == "TIMEOUT"
            ):
                timeouts += 1
    resolved = commits_acked + commits_indeterminate
    failed_commits = max(0, commit_attempts - resolved)
    terminated = commit_attempts + aborts_acked
    aborted = failed_commits + aborts_acked
    lag_lsn = [float(s.get("lag_lsn", 0)) for s in samples]
    lag_ms = [float(s.get("lag_ms", 0.0)) for s in samples]
    return {
        "virtual_duration": round(virtual_duration, 6),
        "commit_attempts": commit_attempts,
        "commits_acked": commits_acked,
        "commits_indeterminate": commits_indeterminate,
        "aborts_acked": aborts_acked,
        "failed_commits": failed_commits,
        "throughput_commits_per_s": (
            round(commits_acked / virtual_duration, 6)
            if virtual_duration > 0
            else 0.0
        ),
        "abort_rate": (
            round(aborted / terminated, 6) if terminated else 0.0
        ),
        "busy_replies": busy,
        "timeouts": timeouts,
        "follower_reads_ok": follower_reads_ok,
        "follower_reads_rejected": follower_reads_rejected,
        "lag_lsn_p50": percentile(lag_lsn, 50),
        "lag_lsn_p95": percentile(lag_lsn, 95),
        "lag_lsn_p99": percentile(lag_lsn, 99),
        "lag_ms_p50": percentile(lag_ms, 50),
        "lag_ms_p95": percentile(lag_ms, 95),
        "lag_ms_p99": percentile(lag_ms, 99),
    }


def build_report(
    scenario: Any,
    epochs: "list[dict[str, Any]]",
    invariants: "list[Any]",
    *,
    promotion: "dict[str, Any] | None",
    deadlock: "str | None",
    samples: "list[dict[str, Any]]",
    network: Any,
    virtual_duration: float,
    partitions: "list[list[float]]",
) -> dict[str, Any]:
    epoch_sections = [_epoch_section(entry) for entry in epochs]
    invariant_section = {
        result.name: {
            "ok": result.ok,
            "skipped": result.skipped,
            "details": list(result.details),
        }
        for result in invariants
    }
    report = {
        "sim_version": SIM_REPORT_VERSION,
        "scenario": scenario.to_dict(),
        "scenario_digest": scenario.digest(),
        "seed": scenario.seed,
        "virtual_duration": round(virtual_duration, 6),
        "partitions": [list(w) for w in partitions],
        "promotion": promotion,
        "deadlock": deadlock,
        "epochs": epoch_sections,
        "invariants": invariant_section,
        "metrics": _metrics(epochs, samples, virtual_duration),
        "network": {
            "messages": network.messages,
            "bytes_sent": network.bytes_sent,
        },
    }
    report["ok"] = (
        deadlock is None
        and all(section["ok"] for section in epoch_sections)
        and all(v["ok"] for v in invariant_section.values())
    )
    return report
