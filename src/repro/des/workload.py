"""Expand a :class:`Scenario` into deterministic client scripts.

Same discipline as :mod:`repro.fuzz.plan`: the seed is consumed *up
front*, at plan time, into explicit :class:`~repro.fuzz.plan.ClientPlan`
scripts — execution never touches an RNG, so the same scenario + seed
always produces the same cluster run.  The scripts reuse the fuzz
plan's op encoding plus one DES-only op:

``["follower_read", entity_or_None, follower_index]``
    a bounded-stale read routed to the given follower node, carrying
    the scenario's ``max_lag_lsn`` bound and (when enabled) the
    session's read-your-writes token.

Epoch-2 scripts (after a primary crash + promotion) carry an ``e2``
label prefix so transaction labels stay globally unique across the
whole cluster history — the oracle evidence depends on it.
"""

from __future__ import annotations

import random
from typing import Any

from ..fuzz.plan import ENTITIES, ClientPlan, FuzzPlan, PlannedTxn
from .scenarios import WORKLOAD_KINDS, Scenario


def _rng(scenario: Scenario, *scope: Any) -> random.Random:
    """A seeded stream for one (scenario, phase, client, ...) scope."""
    return random.Random(
        ":".join(str(part) for part in (scenario.seed, *scope))
    )


def expand_partitions(scenario: Scenario) -> list[list[float]]:
    """Explicit windows plus ``partition_rate``-generated ones."""
    windows = [list(window) for window in scenario.partitions]
    if scenario.partition_rate > 0.0:
        rng = _rng(scenario, "partitions")
        for index in range(scenario.followers):
            if rng.random() < scenario.partition_rate:
                start = round(rng.uniform(0.2, 2.0), 3)
                length = round(rng.uniform(0.3, 1.5), 3)
                windows.append([index, start, round(start + length, 3)])
    return windows


def _maybe_follower_read(
    scenario: Scenario,
    rng: random.Random,
    ops: "list[list[Any]]",
    txn_index: int,
) -> None:
    if scenario.followers <= 0 or scenario.follower_read_every <= 0:
        return
    if (txn_index + 1) % scenario.follower_read_every:
        return
    entity = rng.choice([None, *ENTITIES])
    # Before the terminal op: the client loop stops at commit/abort.
    ops.insert(
        max(0, len(ops) - 1),
        ["follower_read", entity, rng.randrange(scenario.followers)],
    )


def _sleep(rng: random.Random, think_max: float) -> "list[Any]":
    return ["sleep", round(rng.uniform(0.0, think_max), 4)]


def _hot_key_txn(
    scenario: Scenario, rng: random.Random, label: str
) -> PlannedTxn:
    """Everyone reads and rewrites ``x``: maximal write-write conflict."""
    ops: list[list[Any]] = [["read", "x"]]
    if scenario.think_max > 0:
        ops.append(_sleep(rng, scenario.think_max))
    ops.append(["write", "x", rng.randint(0, 9)])
    ops.append(["commit"])
    return PlannedTxn(
        label=label,
        updates=["x"],
        input="x >= 0",
        output="x >= 0",
        ops=ops,
    )


def _cad_txn(
    scenario: Scenario,
    rng: random.Random,
    label: str,
    long_form: bool,
) -> PlannedTxn:
    """Long CAD-style reader-then-writer vs. a short point write."""
    if long_form:
        ops: list[list[Any]] = []
        for entity in ENTITIES:
            ops.append(_sleep(rng, scenario.think_max))
            ops.append(["read", entity])
        target = rng.choice(ENTITIES)
        ops.append(_sleep(rng, scenario.think_max))
        ops.append(["write", target, rng.randint(0, 9)])
        ops.append(["commit"])
        return PlannedTxn(
            label=label,
            updates=[target],
            input=" & ".join(f"{e} >= 0" for e in ENTITIES),
            output=f"{target} >= 0",
            ops=ops,
        )
    target = rng.choice(ENTITIES)
    return PlannedTxn(
        label=label,
        updates=[target],
        input="true",
        output=f"{target} >= 0",
        ops=[["write", target, rng.randint(0, 9)], ["commit"]],
    )


def _cascade_txn(
    scenario: Scenario,
    rng: random.Random,
    label: str,
    earlier: "list[str]",
    aborter: bool,
) -> PlannedTxn:
    """Writers that abort late vs. dependents that read their entity."""
    entity = rng.choice(ENTITIES)
    if aborter:
        ops: list[list[Any]] = [
            ["write", entity, rng.randint(0, 9)],
            _sleep(rng, max(scenario.think_max, 0.02) * 3),
            ["abort"],
        ]
        return PlannedTxn(
            label=label,
            updates=[entity],
            input="true",
            output=f"{entity} >= 0",
            ops=ops,
        )
    predecessors = [rng.choice(earlier)] if earlier else []
    ops = [
        ["read", entity],
        _sleep(rng, max(scenario.think_max, 0.02)),
        ["write", entity, rng.randint(0, 9)],
        ["commit"],
    ]
    return PlannedTxn(
        label=label,
        updates=[entity],
        input=f"{entity} >= 0",
        output=f"{entity} >= 0",
        predecessors=predecessors,
        ops=ops,
    )


def _herd_txn(
    scenario: Scenario, rng: random.Random, label: str
) -> PlannedTxn:
    """Zero think time: stampede the queue, ride the BUSY backoff."""
    entity = rng.choice(ENTITIES)
    return PlannedTxn(
        label=label,
        updates=[entity],
        input="true",
        output=f"{entity} >= 0",
        ops=[["write", entity, rng.randint(0, 9)], ["commit"]],
    )


def _mixed_txn(
    scenario: Scenario,
    rng: random.Random,
    label: str,
    earlier: "list[str]",
) -> PlannedTxn:
    """The fuzz generator's shape: random reads, writes, terminals."""
    reads = [e for e in ENTITIES if rng.random() < 0.45]
    updates = [e for e in ENTITIES if rng.random() < 0.5] or [
        rng.choice(ENTITIES)
    ]
    input_terms = [f"{e} >= 0" for e in reads]
    output_terms = [f"{e} >= 0" for e in updates]
    predecessors = []
    if earlier and rng.random() < 0.3:
        predecessors.append(rng.choice(earlier))
    ops: list[list[Any]] = []
    for entity in reads:
        if scenario.think_max > 0 and rng.random() < 0.5:
            ops.append(_sleep(rng, scenario.think_max))
        ops.append(["read", entity])
    for entity in updates:
        if scenario.think_max > 0 and rng.random() < 0.5:
            ops.append(_sleep(rng, scenario.think_max))
        ops.append(["write", entity, rng.randint(0, 9)])
    ops.append(["abort"] if rng.random() < 0.12 else ["commit"])
    return PlannedTxn(
        label=label,
        updates=updates,
        input=" & ".join(input_terms) or "true",
        output=" & ".join(output_terms) or "true",
        predecessors=predecessors,
        ops=ops,
    )


def build_clients(
    scenario: Scenario,
    *,
    phase: str = "e1",
    txns_per_client: "int | None" = None,
) -> "list[ClientPlan]":
    """Expand one epoch's client scripts, labels unique per phase."""
    if scenario.workload not in WORKLOAD_KINDS:
        raise ValueError(
            f"unknown workload kind {scenario.workload!r} "
            f"(known: {', '.join(WORKLOAD_KINDS)})"
        )
    n_txns = (
        txns_per_client
        if txns_per_client is not None
        else scenario.txns_per_client
    )
    prefix = "" if phase == "e1" else f"{phase}"
    clients: list[ClientPlan] = []
    earlier: list[str] = []
    for client_id in range(scenario.clients):
        rng = _rng(scenario, phase, client_id)
        txns: list[PlannedTxn] = []
        for txn_index in range(n_txns):
            label = f"{prefix}c{client_id}t{txn_index}"
            kind = scenario.workload
            if kind == "hot_key":
                txn = _hot_key_txn(scenario, rng, label)
            elif kind == "cad":
                txn = _cad_txn(
                    scenario, rng, label, long_form=client_id % 2 == 0
                )
            elif kind == "cascade":
                txn = _cascade_txn(
                    scenario,
                    rng,
                    label,
                    earlier,
                    aborter=(client_id + txn_index) % 3 == 0,
                )
            elif kind == "herd":
                txn = _herd_txn(scenario, rng, label)
            else:
                txn = _mixed_txn(scenario, rng, label, earlier)
            _maybe_follower_read(scenario, rng, txn.ops, txn_index)
            txns.append(txn)
            earlier.append(label)
        clients.append(ClientPlan(client_id=client_id, txns=txns))
    return clients


def build_plan(
    scenario: Scenario,
    *,
    phase: str = "e1",
    clients: "list[ClientPlan] | None" = None,
    replicas: "int | None" = None,
    sync_replicas: "int | None" = None,
    partitions: "list[list[float]] | None" = None,
) -> FuzzPlan:
    """The oracle-facing :class:`FuzzPlan` for one epoch.

    The DES engine drives its own harness, but the fuzz oracles read
    run configuration off ``evidence.plan`` — this builds that plan,
    with epoch overrides for the post-promotion phase.
    """
    return FuzzPlan(
        seed=scenario.seed,
        strict=scenario.strict,
        durable=True,
        queue_size=scenario.queue_size,
        request_timeout=scenario.request_timeout,
        drain_grace=scenario.drain_grace,
        flush_interval=scenario.flush_interval,
        checkpoint_every=scenario.checkpoint_every,
        replicas=(
            replicas if replicas is not None else scenario.followers
        ),
        sync_replicas=(
            sync_replicas
            if sync_replicas is not None
            else scenario.sync_replicas
        ),
        partitions=(
            [list(w) for w in partitions]
            if partitions is not None
            else expand_partitions(scenario)
        ),
        clients=(
            clients
            if clients is not None
            else build_clients(scenario, phase=phase)
        ),
    )
