"""Cluster-level invariants, plus which fuzz oracles transfer where.

The fuzz oracle suite judges ONE server's run.  The DES runs a
cluster, possibly across a promotion, so correctness splits into two
layers:

* **per-epoch**: each epoch's transcript + artifacts are fuzz-shaped
  :class:`~repro.fuzz.runner.Evidence`, judged by the fuzz oracles
  through :func:`repro.fuzz.oracles.run_oracles`.  Epoch 1 (whether it
  ends cleanly or in a primary kill) gets the full suite.  Epoch 2
  (post-promotion) gets :data:`EPOCH2_ORACLES` — everything except
  ``write_multiplicity`` (acked writes of transactions the dead
  primary never committed may be legitimately absent from the winner's
  log) and ``metrics_consistent``, which the engine re-runs separately
  against an epoch-2-only view of the indeterminate set because the
  new primary's counters never saw epoch 1.

* **cluster**: the invariants below, over the *whole* history —
  every acked commit and acked committed write survives into the final
  primary no matter the partition schedule, follower reads honor their
  staleness bounds (and rejections are honest), and promotion extends
  the recovered history without rewriting it.
"""

from __future__ import annotations

from typing import Any

from ..durability.records import OP_WRITE
from ..fuzz.oracles import OracleResult

#: The fuzz oracles that transfer to a post-promotion epoch, given the
#: engine folds the promotion baseline into ``indeterminate_committed``
#: (epoch-1 history: legitimately committed, never acked this epoch).
EPOCH2_ORACLES = [
    "no_deadlock",
    "replies_complete",
    "recovery_verified",
    "committed_prefix",
    "history_rc",
    "classifier_lattice",
    "protocol_verify",
    "acked_commits_survive_promotion",
    "prefix_consistency",
]


def cluster_invariants(
    evidences: "list[Any]",
    *,
    final_records: "list[Any] | None",
    final_recovery: Any,
    baseline_committed: "list[str] | None",
) -> list[OracleResult]:
    """All cluster-level verdicts, in a fixed order."""
    return [
        _no_acked_write_lost(evidences, final_records, final_recovery),
        _bounded_staleness(evidences),
        _promotion_continuity(baseline_committed, final_recovery),
    ]


def _no_acked_write_lost(
    evidences: "list[Any]",
    final_records: "list[Any] | None",
    final_recovery: Any,
) -> OracleResult:
    """No acked commit — and none of its acked writes — is ever lost.

    The cluster-wide durability contract: once a commit was
    acknowledged to a client in ANY epoch, the transaction (and every
    write the client got an ``ok`` for inside it) is in the FINAL
    primary's recovered history, no matter which node died or which
    links were partitioned in between.
    """
    name = "cluster_no_acked_write_lost"
    if final_recovery is None:
        return OracleResult.skip(
            name, "final primary recovery unavailable"
        )
    final_committed = set(final_recovery.committed)
    details: list[str] = []
    acked_by_epoch: list[tuple[int, str]] = []
    for epoch_index, evidence in enumerate(evidences, start=1):
        for txn in evidence.acked_committed:
            acked_by_epoch.append((epoch_index, txn))
            if txn not in final_committed:
                details.append(
                    f"epoch {epoch_index}: acked commit {txn} missing "
                    f"from the final primary's recovered history"
                )
    # Write-level: only checkable while the final log still starts at
    # LSN 1 (a snapshot resync on the eventual winner legitimately
    # truncates early history — the commit-level check above stands).
    if (
        final_records
        and final_records[0].lsn == 1
        and not details
    ):
        logged: dict[tuple[str, str], int] = {}
        for record in final_records:
            if record.op == OP_WRITE:
                key = (record.txn, record.data["entity"])
                logged[key] = logged.get(key, 0) + 1
        surviving = {txn for _, txn in acked_by_epoch}
        for epoch_index, evidence in enumerate(evidences, start=1):
            for entry in evidence.requests.values():
                if (
                    entry["op"] != "write"
                    or entry["status"] != "ok"
                    or entry["txn"] not in surviving
                ):
                    continue
                key = (entry["txn"], entry["entity"])
                if logged.get(key, 0) < 1:
                    details.append(
                        f"epoch {epoch_index}: acked write on "
                        f"{key[0]}/{key[1]} left no WAL record in the "
                        f"final primary"
                    )
    return OracleResult(name, not details, details)


def _bounded_staleness(evidences: "list[Any]") -> OracleResult:
    """Follower reads honor their bounds; rejections are honest.

    Every ``ok`` follower read must satisfy the ``max_lag_lsn`` and
    ``min_applied_lsn`` bounds it carried; every ``FOLLOWER_READ``
    rejection must have had a genuinely unsatisfiable bound (or no
    replicated state at all) — a follower may never claim staleness it
    does not have.
    """
    name = "cluster_bounded_staleness"
    details: list[str] = []
    checked = 0
    for evidence in evidences:
        for entry in evidence.requests.values():
            if entry["op"] != "follower_read":
                continue
            bounds = entry.get("bounds") or {}
            max_lag = bounds.get("max_lag_lsn")
            min_applied = bounds.get("min_applied_lsn")
            where = (
                f"client {entry['client']} rid {entry['rid']} "
                f"on {entry.get('node')}"
            )
            if entry["status"] == "ok":
                checked += 1
                lag = entry.get("lag_lsn")
                applied = entry.get("applied_lsn")
                if (
                    max_lag is not None
                    and isinstance(lag, int)
                    and lag > max_lag
                ):
                    details.append(
                        f"{where}: served with lag_lsn {lag} over "
                        f"max_lag_lsn {max_lag}"
                    )
                if (
                    min_applied is not None
                    and isinstance(applied, int)
                    and applied < min_applied
                ):
                    details.append(
                        f"{where}: served at applied_lsn {applied} "
                        f"behind min_applied_lsn {min_applied} "
                        f"(read-your-writes)"
                    )
            elif entry["status"] == "error:FOLLOWER_READ":
                checked += 1
                reported = entry.get("error_details") or {}
                lag = reported.get("lag_lsn")
                applied = reported.get("applied_lsn")
                honest = (
                    # No replicated state yet: always refusable.
                    applied == 0
                    or (
                        max_lag is not None
                        and isinstance(lag, int)
                        and lag > max_lag
                    )
                    or (
                        min_applied is not None
                        and isinstance(applied, int)
                        and applied < min_applied
                    )
                )
                if not honest:
                    details.append(
                        f"{where}: rejected as stale at applied_lsn "
                        f"{applied} lag_lsn {lag} though its bounds "
                        f"(max_lag_lsn {max_lag}, min_applied_lsn "
                        f"{min_applied}) were satisfiable"
                    )
    if checked == 0:
        return OracleResult.skip(
            name, "no follower reads in this run"
        )
    return OracleResult(name, not details, details)


def _promotion_continuity(
    baseline_committed: "list[str] | None",
    final_recovery: Any,
) -> OracleResult:
    """Promotion extends history; it never rewrites it.

    The committed order the promotion gate recovered on the winner
    must be a prefix of the committed order the final recovery sees —
    epoch 2 may only append.
    """
    name = "cluster_promotion_continuity"
    if baseline_committed is None:
        return OracleResult.skip(name, "no promotion in this run")
    if final_recovery is None:
        return OracleResult.skip(
            name, "final primary recovery unavailable"
        )
    final = list(final_recovery.committed)
    if final[: len(baseline_committed)] != list(baseline_committed):
        return OracleResult(
            name,
            False,
            [
                "promotion baseline is not a prefix of the final "
                f"history: baseline {baseline_committed!r} vs final "
                f"{final[: len(baseline_committed)]!r}"
            ],
        )
    return OracleResult(name, True)
