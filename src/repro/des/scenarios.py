"""The adversarial scenario library of the cluster simulator.

A :class:`Scenario` is the DES analogue of a :class:`FuzzPlan`: every
knob a cluster run needs, decided before it starts, JSON-round-trippable
so a scenario file *is* a reproducer.  The shipped :data:`SCENARIOS`
library encodes the failure modes the paper's protocol is supposed to
survive — hot-key contention, long CAD transactions (§2.1), abort
cascades, BUSY thundering herds, primary crash + promotion under a
partition, and follower lag divergence — each validated by the fuzz
oracle suite plus the cluster-level invariants in
:mod:`repro.des.invariants`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any

SCENARIO_VERSION = 1

#: Workload kinds :mod:`repro.des.workload` knows how to expand.
WORKLOAD_KINDS = ("mixed", "hot_key", "cad", "cascade", "herd")


@dataclass
class Scenario:
    """Everything one cluster simulation needs; JSON-round-trippable."""

    name: str
    description: str = ""
    seed: int = 0

    # -- topology ----------------------------------------------------------
    clients: int = 3
    followers: int = 2
    #: Commit replies wait for this many follower acks (0 = async).
    sync_replicas: int = 1

    # -- workload ----------------------------------------------------------
    workload: str = "mixed"
    txns_per_client: int = 4
    #: Transactions per client in the post-promotion epoch (crash
    #: scenarios only).
    post_crash_txns_per_client: int = 2
    think_max: float = 0.05

    # -- server tunables ---------------------------------------------------
    strict: bool = False
    queue_size: int = 8
    request_timeout: float = 1.0
    drain_grace: float = 2.0
    flush_interval: float = 0.0
    checkpoint_every: int = 0

    # -- network model -----------------------------------------------------
    latency: float = 0.002
    jitter: float = 0.002
    bandwidth: float = 0.0
    #: ``node name -> latency multiplier`` (e.g. ``{"follower1": 25.0}``).
    slow_nodes: dict[str, float] = field(default_factory=dict)

    # -- faults ------------------------------------------------------------
    #: Explicit partition windows ``[follower_index, start, end]`` in
    #: virtual seconds (the fuzz plan's encoding).
    partitions: list[list[float]] = field(default_factory=list)
    #: Probability (per follower, drawn from the seed at plan time)
    #: of one additional generated partition window.
    partition_rate: float = 0.0
    #: Kill the primary dispatcher at this virtual time (None = never).
    crash_primary_at: "float | None" = None

    # -- follower reads ----------------------------------------------------
    #: Issue a bounded-stale read after every Nth transaction
    #: (0 = no follower reads).
    follower_read_every: int = 0
    max_lag_lsn: "int | None" = None
    #: Thread commit-LSN session tokens into follower reads
    #: (read-your-writes).
    read_your_writes: bool = True

    #: Virtual-time ceiling; pumps exit past it so the loop's deadlock
    #: detector can fire on a genuinely stuck run.
    horizon: float = 120.0

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["version"] = SCENARIO_VERSION
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        payload = dict(data)
        version = payload.pop("version", SCENARIO_VERSION)
        if version != SCENARIO_VERSION:
            raise ValueError(
                f"unsupported scenario version {version!r} "
                f"(this build speaks {SCENARIO_VERSION})"
            )
        return cls(**payload)

    def canonical_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """Stable content hash — identifies a scenario across reports."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")
        ).hexdigest()[:16]

    def with_overrides(self, **overrides: Any) -> "Scenario":
        return replace(self, **overrides)


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="hot_key_storm",
            description=(
                "Six writers hammer the same entity through a small "
                "queue: selection conflicts, contention aborts, and "
                "BUSY backpressure, with bounded-stale reads riding "
                "along."
            ),
            seed=11,
            clients=6,
            followers=2,
            sync_replicas=1,
            workload="hot_key",
            txns_per_client=4,
            think_max=0.01,
            queue_size=8,
            follower_read_every=2,
        ),
        Scenario(
            name="cad_long_txns",
            description=(
                "Long-duration CAD-style transactions (paper §2.1): "
                "slow multi-entity readers hold RV locks across long "
                "think times while short writers weave between them."
            ),
            seed=23,
            clients=4,
            followers=2,
            sync_replicas=1,
            workload="cad",
            txns_per_client=3,
            think_max=0.4,
            request_timeout=5.0,
            follower_read_every=3,
        ),
        Scenario(
            name="abort_cascade",
            description=(
                "Writers abort after dependents have read their "
                "versions: cascade amplification through predecessor "
                "chains."
            ),
            seed=37,
            clients=4,
            followers=2,
            sync_replicas=1,
            workload="cascade",
            txns_per_client=4,
            think_max=0.08,
        ),
        Scenario(
            name="busy_retry_herd",
            description=(
                "Eight clients stampede a queue of two with zero "
                "think time: a BUSY-retry thundering herd riding the "
                "deterministic backoff."
            ),
            seed=41,
            clients=8,
            followers=1,
            sync_replicas=1,
            workload="herd",
            txns_per_client=3,
            think_max=0.0,
            queue_size=2,
            request_timeout=2.0,
            # Co-located clients: zero transit spread, so the whole
            # herd lands in the same virtual instant and the queue
            # actually overflows (jitter would serialize arrivals).
            latency=0.0,
            jitter=0.0,
        ),
        Scenario(
            name="primary_crash_promotion",
            description=(
                "The primary is killed mid-run while one follower is "
                "partitioned: election over the healed set, in-place "
                "promotion through recover --verify, and a second "
                "epoch on the survivor."
            ),
            seed=53,
            clients=4,
            followers=3,
            sync_replicas=1,
            workload="mixed",
            txns_per_client=8,
            think_max=0.1,
            partitions=[[2, 0.4, 2.5]],
            crash_primary_at=0.9,
            post_crash_txns_per_client=3,
            follower_read_every=3,
        ),
        Scenario(
            name="follower_lag_divergence",
            description=(
                "One follower 25x slower and another partitioned: "
                "divergent lag under bounded-stale reads with a "
                "max_lag_lsn budget and read-your-writes tokens."
            ),
            seed=67,
            clients=4,
            followers=3,
            sync_replicas=1,
            workload="mixed",
            txns_per_client=5,
            think_max=0.05,
            latency=0.005,
            jitter=0.004,
            slow_nodes={"follower2": 25.0},
            partitions=[[1, 0.3, 1.6]],
            follower_read_every=2,
            max_lag_lsn=64,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(
            f"unknown scenario {name!r} (known: {known})"
        ) from None
