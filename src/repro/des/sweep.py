"""Parameter sweeps over the cluster simulator.

A sweep grids a base scenario over cluster size, partition rate, and
optionally workload kind and link latency, runs every cell through
:func:`repro.des.engine.run_scenario`, and collects a deterministic
``BENCH_sim.json``-shaped document: per-cell throughput, abort rate,
and replication-lag percentiles, plus every cell's oracle verdict.

Node budget per cell: ``nodes = 1 primary + max(1, nodes // 3)``
followers, and the remainder (at least one) client nodes — so a
6-node cell is 1 primary / 2 followers / 3 clients.
"""

from __future__ import annotations

from typing import Any

from .engine import run_scenario
from .report import SIM_REPORT_VERSION
from .scenarios import Scenario

#: Default grid: a small cell and a ≥6-node cell, quiet and partitioned.
DEFAULT_NODES = [3, 6]
DEFAULT_PARTITION_RATES = [0.0, 0.3]


def split_nodes(nodes: int) -> "tuple[int, int]":
    """``total node count -> (followers, clients)`` for one cell."""
    if nodes < 3:
        raise ValueError(
            f"a cluster cell needs at least 3 nodes, got {nodes}"
        )
    followers = max(1, nodes // 3)
    clients = max(1, nodes - 1 - followers)
    return followers, clients


def cell_scenario(
    base: Scenario,
    *,
    nodes: int,
    partition_rate: float,
    workload: "str | None" = None,
    latency: "float | None" = None,
) -> Scenario:
    followers, clients = split_nodes(nodes)
    overrides: dict[str, Any] = {
        "name": (
            f"{base.name}@n{nodes}"
            f"+pr{partition_rate:g}"
            + (f"+{workload}" if workload is not None else "")
            + (f"+lat{latency:g}" if latency is not None else "")
        ),
        "clients": clients,
        "followers": followers,
        "partition_rate": partition_rate,
    }
    if workload is not None:
        overrides["workload"] = workload
    if latency is not None:
        overrides["latency"] = latency
    return base.with_overrides(**overrides)


def run_sweep(
    base: Scenario,
    *,
    nodes: "list[int] | None" = None,
    partition_rates: "list[float] | None" = None,
    workloads: "list[str] | None" = None,
    latencies: "list[float] | None" = None,
) -> dict[str, Any]:
    """Run the full grid; returns the ``BENCH_sim.json`` document."""
    node_axis = list(nodes) if nodes else list(DEFAULT_NODES)
    rate_axis = (
        list(partition_rates)
        if partition_rates is not None
        else list(DEFAULT_PARTITION_RATES)
    )
    workload_axis: "list[str | None]" = (
        list(workloads) if workloads else [None]
    )
    latency_axis: "list[float | None]" = (
        list(latencies) if latencies else [None]
    )
    cells: list[dict[str, Any]] = []
    for n in node_axis:
        for rate in rate_axis:
            for workload in workload_axis:
                for latency in latency_axis:
                    scenario = cell_scenario(
                        base,
                        nodes=n,
                        partition_rate=rate,
                        workload=workload,
                        latency=latency,
                    )
                    report = run_scenario(scenario)
                    failed = sorted(
                        name
                        for section in report["epochs"]
                        for name, verdict in section[
                            "oracles"
                        ].items()
                        if not verdict["ok"]
                    ) + sorted(
                        name
                        for name, verdict in report[
                            "invariants"
                        ].items()
                        if not verdict["ok"]
                    )
                    cells.append(
                        {
                            "nodes": n,
                            "clients": scenario.clients,
                            "followers": scenario.followers,
                            "partition_rate": rate,
                            "workload": scenario.workload,
                            "latency": scenario.latency,
                            "scenario": scenario.name,
                            "scenario_digest": scenario.digest(),
                            "partitions": report["partitions"],
                            "promotion": (
                                report["promotion"]["winner"]
                                if report["promotion"]
                                else None
                            ),
                            "ok": report["ok"],
                            "failed_checks": failed,
                            "metrics": report["metrics"],
                        }
                    )
    return {
        "bench": "sim",
        "sim_version": SIM_REPORT_VERSION,
        "base_scenario": base.name,
        "base_digest": base.digest(),
        "seed": base.seed,
        "grid": {
            "nodes": node_axis,
            "partition_rates": rate_axis,
            "workloads": [w for w in workload_axis if w is not None],
            "latencies": [
                lat for lat in latency_axis if lat is not None
            ],
        },
        "cells": cells,
        "ok": all(cell["ok"] for cell in cells),
    }
