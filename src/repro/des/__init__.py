"""Multi-node discrete-event cluster simulation.

Runs primary/follower/client nodes of the real protocol stack on one
virtual clock, connected by a modeled network (latency, jitter,
bandwidth, partitions, slow nodes), with an adversarial scenario
library, fuzz-oracle validation per epoch, cluster-level invariants,
and a parameter-sweep runner.
"""

from .engine import ClusterSim, run_scenario
from .invariants import EPOCH2_ORACLES, cluster_invariants
from .network import Network
from .report import SIM_REPORT_VERSION, build_report, percentile
from .scenarios import (
    SCENARIO_VERSION,
    SCENARIOS,
    WORKLOAD_KINDS,
    Scenario,
    get_scenario,
)
from .sweep import cell_scenario, run_sweep, split_nodes
from .workload import build_clients, build_plan, expand_partitions

__all__ = [
    "ClusterSim",
    "EPOCH2_ORACLES",
    "Network",
    "SCENARIOS",
    "SCENARIO_VERSION",
    "SIM_REPORT_VERSION",
    "Scenario",
    "WORKLOAD_KINDS",
    "build_clients",
    "build_plan",
    "build_report",
    "cell_scenario",
    "cluster_invariants",
    "expand_partitions",
    "get_scenario",
    "percentile",
    "run_scenario",
    "run_sweep",
    "split_nodes",
]
