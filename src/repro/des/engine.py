"""The multi-node discrete-event cluster simulator.

One :class:`ClusterSim` runs N nodes of the *actual* protocol stack —
a primary :class:`~repro.server.server.TransactionServer` over a
:class:`~repro.durability.manager.DurableTransactionManager`, follower
nodes each owning a :class:`~repro.replication.follower.FollowerApplier`
plus a dispatcher serving ``follower_read``, and scripted client nodes
— all on a single :class:`~repro.fuzz.loop.VirtualClockLoop`, connected
by the modeled :class:`~repro.des.network.Network` (per-link latency,
jitter, bandwidth, partition windows, slow nodes).

Only the transports are modeled: client requests are submitted
straight to the dispatchers (with network transit sleeps around every
hop) and WAL shipping drives the hub's ``register``/``next_batch``/
``ack`` core directly — the same bypass the deterministic fuzzer uses,
so two runs of the same scenario are byte-identical.

Crash scenarios add a second epoch: at ``crash_primary_at`` the
primary dispatcher is killed the way SIGKILL would, a survivor copy of
its WAL preserves what stable storage kept, the healed follower set is
electd via :class:`~repro.replication.promoter.Promoter` and the
winner promoted in place through the stock ``recover --verify`` gate,
and the remaining followers re-attach to the new primary's hub.  Each
epoch's transcript becomes fuzz-shaped :class:`Evidence` and the fuzz
oracles transfer per epoch (see :mod:`repro.des.invariants` for which
and why), plus cluster-level invariants over the whole history.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
from dataclasses import replace
from pathlib import Path
from typing import Any

from ..durability.harness import build_survivor_copy
from ..durability.manager import DurableTransactionManager
from ..durability.recovery import recover
from ..durability.wal import scan_wal
from ..errors import ReproError
from ..fuzz.loop import FuzzDeadlockError, VirtualClockLoop
from ..fuzz.oracles import run_oracles
from ..fuzz.plan import ClientPlan, FuzzPlan
from ..fuzz.runner import Evidence, fuzz_database
from ..obs.metrics import MetricsRegistry
from ..replication import (
    ROLE_FOLLOWER,
    ROLE_PRIMARY,
    FollowerApplier,
    Promoter,
    ReplicationContext,
    ReplicationHub,
    encode_message,
    promote_in_place,
)
from ..replication.messages import KIND_SNAPSHOT
from ..server.protocol import Request
from ..server.server import ServerConfig, TransactionServer
from ..server.session import SessionState
from ..sim.clock import VirtualClock
from .invariants import EPOCH2_ORACLES, cluster_invariants
from .network import Network
from .report import build_report
from .scenarios import Scenario
from .workload import build_clients, build_plan, expand_partitions

_DEAD_CODES = {"ABORTED", "UNKNOWN_TXN", "SHUTTING_DOWN"}
_BUSY_RETRIES = 5
_BUSY_BACKOFF = 0.05
#: Pump poll period (virtual seconds) while idle or partitioned.
_POLL = 0.05


def _noop_notify(payload: dict[str, Any]) -> None:
    return None


class FollowerNode:
    """One follower node: applier + a read-serving dispatcher."""

    def __init__(
        self,
        index: int,
        wal_dir: Path,
        scenario: Scenario,
        clock: VirtualClock,
    ) -> None:
        self.index = index
        self.name = f"follower{index}"
        self.dir = wal_dir
        # Own registry and no tracer: follower-side counters and spans
        # must not leak into the primary's metrics evidence.
        self.registry = MetricsRegistry()
        self.applier = FollowerApplier(
            wal_dir,
            registry=self.registry,
            clock=clock,
            wall_clock=clock,
        )
        self.server = TransactionServer(
            fuzz_database(),
            config=ServerConfig(
                # Large queue: a follower BUSY would desynchronise the
                # primary's transcript-vs-counters oracle.
                queue_size=4096,
                request_timeout=scenario.request_timeout,
                drain_grace=scenario.drain_grace,
                strict=scenario.strict,
            ),
            registry=self.registry,
            clock=clock,
        )
        context = ReplicationContext(
            ROLE_FOLLOWER,
            applier=self.applier,
            primary_host="sim",
            primary_port=0,
        )
        self.server.replication = context
        self.server.dispatcher.replication = context
        self.slot: Any = None
        self.dispatcher_task: "asyncio.Task | None" = None
        self.serving = True

    async def start(self) -> None:
        self.dispatcher_task = asyncio.ensure_future(
            self.server.dispatcher.run()
        )

    async def stop(self) -> None:
        if not self.serving:
            return
        self.serving = False
        await self.server.shutdown()
        if self.dispatcher_task is not None:
            await self.dispatcher_task
            self.dispatcher_task = None


class ClusterContext:
    """One epoch's transcript and client-visible state."""

    def __init__(
        self,
        scenario: Scenario,
        clock: VirtualClock,
        net: Network,
        server: TransactionServer,
        primary_node: str,
        epoch: int,
    ) -> None:
        self.scenario = scenario
        self.clock = clock
        self.net = net
        self.server = server
        self.dispatcher = server.dispatcher
        self.primary_node = primary_node
        self.epoch = epoch
        self.events: list[dict[str, Any]] = []
        self.names: dict[str, str] = {}
        # (commit_lsn, arrival_seq, txn): unlike the fuzzer's in-process
        # replies, acks cross the modeled network, so arrival order can
        # differ from commit order — the oracles want commit order, and
        # the reply's commit_lsn is exactly the sort key a real client
        # library would use.
        self._acked: list[tuple[int, int, str]] = []
        self._indeterminate: list[tuple[int, int, str]] = []
        self.requests: dict[tuple[int, int], dict[str, Any]] = {}
        self.rid_counters: dict[int, int] = {}
        #: Read-your-writes token per client: highest commit LSN any
        #: of the client's commit replies carried (including
        #: indeterminate ones — the commit may well be durable).
        self.session_lsn: dict[int, int] = {}
        self.drain_summary: "dict[str, Any] | None" = None
        self.crashed = False

    @property
    def acked_committed(self) -> list[str]:
        return [txn for _, _, txn in sorted(self._acked)]

    @property
    def indeterminate_committed(self) -> list[str]:
        return [txn for _, _, txn in sorted(self._indeterminate)]

    def emit(self, kind: str, **fields: Any) -> None:
        event = {"t": round(self.clock.now, 6), "kind": kind}
        event.update(fields)
        self.events.append(event)

    def notify_for(self, client_id: int):
        def _notify(payload: dict[str, Any]) -> None:
            self.emit(
                "event",
                client=client_id,
                event=payload.get("event"),
                txn=payload.get("txn"),
            )

        return _notify

    def next_rid(self, client_id: int) -> int:
        rid = self.rid_counters.get(client_id, 0) + 1
        self.rid_counters[client_id] = rid
        return rid

    def _bump_token(self, client_id: int, lsn: Any) -> None:
        if isinstance(lsn, int) and not isinstance(lsn, bool):
            current = self.session_lsn.get(client_id, 0)
            self.session_lsn[client_id] = max(current, lsn)

    async def request(
        self,
        client_id: int,
        session: SessionState,
        op: str,
        params: dict[str, Any],
        *,
        txn: "str | None" = None,
        entity: "str | None" = None,
        node: "str | None" = None,
        dispatcher: Any = None,
        bounds: "dict[str, Any] | None" = None,
    ) -> dict[str, Any]:
        """Submit one request over the network, retrying BUSY."""
        target = node if node is not None else self.primary_node
        dispatcher = (
            dispatcher if dispatcher is not None else self.dispatcher
        )
        client_node = f"client{client_id}"
        rid = self.next_rid(client_id)
        entry: dict[str, Any] = {
            "client": client_id,
            "rid": rid,
            "op": op,
            "txn": txn,
            "entity": entity,
            "node": target,
            "status": "pending",
            "outcome": None,
        }
        if bounds is not None:
            entry["bounds"] = bounds
        self.requests[(client_id, rid)] = entry
        self.emit(
            "request",
            client=client_id,
            rid=rid,
            op=op,
            txn=txn,
            node=target,
        )
        nbytes = max(96, len(repr(params)))
        reply: dict[str, Any] = {}
        for attempt in range(_BUSY_RETRIES + 1):
            await self.net.transit(client_node, target, nbytes)
            outcome = dispatcher.submit(
                session, Request(rid, op, dict(params))
            )
            reply = (
                outcome if isinstance(outcome, dict) else await outcome
            )
            await self.net.transit(target, client_node, 256)
            code = (
                (reply.get("error") or {}).get("code")
                if reply.get("ok") is False
                else None
            )
            if code != "BUSY" or attempt == _BUSY_RETRIES:
                break
            self.emit("busy", client=client_id, rid=rid, op=op)
            await asyncio.sleep(_BUSY_BACKOFF * (attempt + 1))
        code = (
            (reply.get("error") or {}).get("code")
            if reply.get("ok") is False
            else None
        )
        entry["status"] = "ok" if reply.get("ok") else f"error:{code}"
        entry["outcome"] = reply.get("outcome")
        extra: dict[str, Any] = {}
        if op == "follower_read":
            if reply.get("ok"):
                for key in ("applied_lsn", "lag_lsn", "role"):
                    entry[key] = reply.get(key)
                    extra[key] = reply.get(key)
            else:
                details = (reply.get("error") or {}).get("details") or {}
                entry["error_details"] = dict(details)
        self.emit(
            "reply",
            client=client_id,
            rid=rid,
            op=op,
            ok=bool(reply.get("ok")),
            code=code,
            outcome=reply.get("outcome"),
            value=reply.get("value"),
            **extra,
        )
        if op == "commit" and txn:
            if reply.get("outcome") == "committed":
                self._acked.append(
                    (_lsn_key(reply.get("commit_lsn")), rid, txn)
                )
                self._bump_token(client_id, reply.get("commit_lsn"))
            elif not reply.get("ok"):
                details = (reply.get("error") or {}).get("details") or {}
                if details.get("indeterminate"):
                    self._indeterminate.append(
                        (_lsn_key(details.get("commit_lsn")), rid, txn)
                    )
                    self._bump_token(
                        client_id, details.get("commit_lsn")
                    )
        return reply


class ClusterSim:
    """Execute one :class:`Scenario` to completion, with oracles."""

    def __init__(
        self,
        scenario: Scenario,
        workdir: "Path | str | None" = None,
    ) -> None:
        self.scenario = scenario
        self._owns_workdir = workdir is None
        self.base = Path(
            tempfile.mkdtemp(prefix="repro-des-")
            if workdir is None
            else workdir
        )
        self.clock = VirtualClock()
        self.partitions = expand_partitions(scenario)
        self.net = Network(
            self.clock,
            seed=scenario.seed,
            latency=scenario.latency,
            jitter=scenario.jitter,
            bandwidth=scenario.bandwidth,
            slow_nodes=dict(scenario.slow_nodes),
            partitions=[
                (f"follower{int(index)}", start, end)
                for index, start, end in self.partitions
            ],
        )
        self.samples: list[dict[str, Any]] = []
        self.followers: list[FollowerNode] = []
        self.deadlock: "str | None" = None
        self.promotion: "dict[str, Any] | None" = None
        self._epochs: list[dict[str, Any]] = []
        # Set during the run.
        self._ctx1: "ClusterContext | None" = None
        self._ctx2: "ClusterContext | None" = None
        self._plan1: "FuzzPlan | None" = None
        self._plan2: "FuzzPlan | None" = None
        self._baseline_committed: "list[str] | None" = None

    # -- replication pumping ----------------------------------------------

    def _sample(
        self, node: FollowerNode, hub: "ReplicationHub | None" = None
    ) -> None:
        if node.applier.state is None:
            return  # no snapshot yet: nothing to observe
        applied_lsn, view = node.applier.read_view()
        # The simulator is omniscient: measure lag against the hub's
        # true durable tip, not just the tip the follower last heard
        # about — a partitioned follower's self-reported lag freezes.
        lag_lsn = (
            max(0, hub.durable_lsn - applied_lsn)
            if hub is not None
            else node.applier.lag_lsn
        )
        self.samples.append(
            {
                "t": round(self.clock.now, 6),
                "replica": node.index,
                "applied_lsn": applied_lsn,
                "lag_lsn": lag_lsn,
                "lag_ms": round(node.applier.lag_ms, 3),
                "view": dict(view),
            }
        )

    def _register(self, hub: ReplicationHub, node: FollowerNode) -> None:
        slot, initial = hub.register(
            node.applier.applied_lsn, node.name
        )
        node.slot = slot
        if initial is not None:
            node.applier.install_snapshot(
                initial["state"], initial["last_lsn"]
            )
        hub.ack(slot, node.applier.applied_lsn)

    def _pump_once(
        self, hub: ReplicationHub, node: FollowerNode
    ) -> bool:
        """Ship/apply/ack one message synchronously (no network)."""
        if node.slot is None:
            self._register(hub, node)
        message = hub.next_batch(node.slot)
        if message is None:
            return False
        if message["kind"] == KIND_SNAPSHOT:
            node.applier.install_snapshot(
                message["state"], message["last_lsn"]
            )
        else:
            node.applier.apply_records(message)
        hub.ack(node.slot, node.applier.applied_lsn)
        self._sample(node, hub)
        return True

    async def _pump(
        self,
        hub: ReplicationHub,
        node: FollowerNode,
        primary_node: str,
        stop: asyncio.Event,
    ) -> None:
        """One follower's ship loop over the modeled network.

        Inside a partition window the node drops its hub registration
        (the TCP link is dead); on heal it re-registers from its
        ``applied_lsn``, which exercises the hub's record catch-up and
        — if retention ever dropped the cursor's segment — the
        snapshot-fallback resync.
        """
        while not stop.is_set():
            now = self.clock.now
            if now > self.scenario.horizon:
                return
            if self.net.partitioned(node.name, now):
                if node.slot is not None:
                    hub.unregister(node.slot)
                    node.slot = None
                self._sample(node, hub)
                await self._wait_poll(stop)
                continue
            if node.slot is None:
                self._register(hub, node)
            message = hub.next_batch(node.slot)
            if message is None:
                self._sample(node, hub)
                await self._wait_poll(stop)
                continue
            await self.net.transit(
                primary_node, node.name, len(encode_message(message))
            )
            if message["kind"] == KIND_SNAPSHOT:
                node.applier.install_snapshot(
                    message["state"], message["last_lsn"]
                )
            else:
                node.applier.apply_records(message)
            applied = node.applier.applied_lsn
            await self.net.transit(node.name, primary_node, 64)
            if node.slot is not None:
                hub.ack(node.slot, applied)
            self._sample(node, hub)

    @staticmethod
    async def _wait_poll(stop: asyncio.Event) -> None:
        try:
            await asyncio.wait_for(stop.wait(), _POLL)
        except asyncio.TimeoutError:
            pass

    def _catch_up(
        self, hub: ReplicationHub, nodes: "list[FollowerNode]"
    ) -> None:
        """Heal every partition and drain every backlog (clean end)."""
        self.net.heal()
        for node in nodes:
            while self._pump_once(hub, node):
                pass

    # -- client execution --------------------------------------------------

    async def _run_client(
        self,
        ctx: ClusterContext,
        cplan: ClientPlan,
        followers_by_index: "dict[int, FollowerNode]",
    ) -> None:
        client_id = cplan.client_id
        session = SessionState(
            session_id=client_id + 1, notify=ctx.notify_for(client_id)
        )
        follower_sessions: dict[int, SessionState] = {}
        for txn_plan in cplan.txns:
            reply = await ctx.request(
                client_id,
                session,
                "define",
                {
                    "updates": list(txn_plan.updates),
                    "input": txn_plan.input,
                    "output": txn_plan.output,
                    "predecessors": [
                        ctx.names[label]
                        for label in txn_plan.predecessors
                        if label in ctx.names
                    ],
                },
            )
            if not reply.get("ok"):
                continue
            name = reply["txn"]
            ctx.names[txn_plan.label] = name
            reply = await ctx.request(
                client_id, session, "validate", {"txn": name}, txn=name
            )
            if not reply.get("ok"):
                if _reply_code(reply) == "TIMEOUT":
                    await self._abort_quietly(
                        ctx, client_id, session, name
                    )
                continue
            if reply.get("outcome") == "failed":
                continue  # validation failure already aborted the txn
            dead = False
            for op in txn_plan.ops:
                if dead:
                    break
                kind = op[0]
                if kind == "sleep":
                    await asyncio.sleep(op[1])
                    continue
                if kind == "follower_read":
                    await self._follower_read(
                        ctx,
                        client_id,
                        follower_sessions,
                        followers_by_index,
                        entity=op[1],
                        index=op[2],
                    )
                    continue
                if kind == "read":
                    reply = await ctx.request(
                        client_id,
                        session,
                        "read",
                        {"txn": name, "entity": op[1]},
                        txn=name,
                        entity=op[1],
                    )
                elif kind == "write":
                    reply = await ctx.request(
                        client_id,
                        session,
                        "write",
                        {"txn": name, "entity": op[1], "value": op[2]},
                        txn=name,
                        entity=op[1],
                    )
                elif kind == "commit":
                    reply = await ctx.request(
                        client_id,
                        session,
                        "commit",
                        {"txn": name},
                        txn=name,
                    )
                    if (
                        reply.get("ok")
                        and reply.get("outcome") == "failed"
                    ):
                        await self._abort_quietly(
                            ctx, client_id, session, name
                        )
                    dead = True
                elif kind == "abort":
                    reply = await ctx.request(
                        client_id,
                        session,
                        "abort",
                        {"txn": name, "reason": "scripted abort"},
                        txn=name,
                    )
                    dead = True
                else:  # pragma: no cover — generator never emits others
                    raise ReproError(f"unknown planned op {kind!r}")
                code = _reply_code(reply)
                indeterminate = bool(
                    (
                        (reply.get("error") or {}).get("details") or {}
                    ).get("indeterminate")
                )
                if code in _DEAD_CODES:
                    dead = True
                elif code == "TIMEOUT" and indeterminate:
                    # Durable locally, replication ack unknown: the
                    # contract forbids treating it as lost, so no
                    # clean-up abort (it would undo the commit).
                    dead = True
                elif code == "TIMEOUT":
                    await self._abort_quietly(
                        ctx, client_id, session, name
                    )
                    dead = True
                elif code is not None and kind in ("read", "write"):
                    dead = True

    async def _follower_read(
        self,
        ctx: ClusterContext,
        client_id: int,
        sessions: "dict[int, SessionState]",
        followers_by_index: "dict[int, FollowerNode]",
        *,
        entity: "str | None",
        index: int,
    ) -> None:
        node = followers_by_index.get(index)
        if node is None or not node.serving:
            return  # promoted or retired mid-history
        fsession = sessions.get(index)
        if fsession is None:
            fsession = SessionState(
                session_id=client_id + 1, notify=_noop_notify
            )
            sessions[index] = fsession
        params: dict[str, Any] = {}
        if entity is not None:
            params["entity"] = entity
        bounds: dict[str, Any] = {
            "max_lag_lsn": self.scenario.max_lag_lsn,
            "min_applied_lsn": None,
        }
        if self.scenario.max_lag_lsn is not None:
            params["max_lag_lsn"] = self.scenario.max_lag_lsn
        token = ctx.session_lsn.get(client_id, 0)
        if self.scenario.read_your_writes and token:
            params["min_applied_lsn"] = token
            bounds["min_applied_lsn"] = token
        await ctx.request(
            client_id,
            fsession,
            "follower_read",
            params,
            entity=entity,
            node=node.name,
            dispatcher=node.server.dispatcher,
            bounds=bounds,
        )

    async def _abort_quietly(
        self,
        ctx: ClusterContext,
        client_id: int,
        session: SessionState,
        name: str,
    ) -> None:
        await ctx.request(
            client_id,
            session,
            "abort",
            {"txn": name, "reason": "sim client gave up"},
            txn=name,
        )

    # -- epoch orchestration ----------------------------------------------

    async def _killer(
        self, at: float, dispatcher_task: "asyncio.Task"
    ) -> None:
        await asyncio.sleep(max(0.0, at - self.clock.now))
        dispatcher_task.cancel()

    async def _run_epoch(
        self,
        ctx: ClusterContext,
        clients: "list[ClientPlan]",
        hub: ReplicationHub,
        pump_nodes: "list[FollowerNode]",
        dispatcher_task: "asyncio.Task",
        crash_at: "float | None",
        followers_by_index: "dict[int, FollowerNode]",
    ) -> None:
        pumps_stop = asyncio.Event()
        pump_tasks = [
            asyncio.ensure_future(
                self._pump(hub, node, ctx.primary_node, pumps_stop)
            )
            for node in pump_nodes
        ]
        client_tasks = [
            asyncio.ensure_future(
                self._run_client(ctx, cplan, followers_by_index)
            )
            for cplan in clients
        ]
        clients_task = asyncio.ensure_future(
            asyncio.gather(*client_tasks, return_exceptions=False)
        )
        if crash_at is not None:
            killer = asyncio.ensure_future(
                self._killer(crash_at, dispatcher_task)
            )
            # The kill fires even if every client finished early: the
            # scenario's epoch boundary is a point in virtual time.
            await asyncio.wait(
                {dispatcher_task}, return_when=asyncio.FIRST_COMPLETED
            )
            killer.cancel()
            clients_task.cancel()
            for task in client_tasks:
                task.cancel()
            for pending in (killer, clients_task, *client_tasks):
                try:
                    await pending
                except asyncio.CancelledError:
                    pass
            await self._stop_pumps(pumps_stop, pump_tasks)
            try:
                await dispatcher_task
            except asyncio.CancelledError:
                pass
            ctx.crashed = True
            ctx.emit("crash", point="des.primary_kill")
            return
        await asyncio.wait(
            {dispatcher_task, clients_task},
            return_when=asyncio.FIRST_COMPLETED,
        )
        if dispatcher_task.done() and not clients_task.done():
            clients_task.cancel()
            for task in client_tasks:
                task.cancel()
            try:
                await clients_task
            except asyncio.CancelledError:
                pass
            await self._stop_pumps(pumps_stop, pump_tasks)
            exc = dispatcher_task.exception()
            if exc is not None:
                raise exc
            raise ReproError(
                "dispatcher exited without being stopped"
            )
        await clients_task
        await self._stop_pumps(pumps_stop, pump_tasks)
        ctx.drain_summary = await ctx.server.shutdown()
        await dispatcher_task

    @staticmethod
    async def _stop_pumps(
        stop: asyncio.Event, pump_tasks: "list[asyncio.Task]"
    ) -> None:
        stop.set()
        for task in pump_tasks:
            task.cancel()
        for task in pump_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass

    # -- the run ----------------------------------------------------------

    def run(self) -> dict[str, Any]:
        """Execute the scenario; returns the JSON report."""
        scenario = self.scenario
        loop = VirtualClockLoop(self.clock)
        registry1 = MetricsRegistry()
        primary_dir = self.base / "primary"
        manager1, _ = DurableTransactionManager.open(
            primary_dir,
            fuzz_database,
            flush_interval=scenario.flush_interval,
            checkpoint_every=scenario.checkpoint_every,
            retain=99,  # keep every segment: oracles read history
            registry=registry1,
            strict=scenario.strict,
        )
        server1 = TransactionServer(
            manager1.database,
            config=ServerConfig(
                queue_size=scenario.queue_size,
                request_timeout=scenario.request_timeout,
                drain_grace=scenario.drain_grace,
                strict=scenario.strict,
            ),
            registry=registry1,
            manager=manager1,
            clock=self.clock,
        )
        sync1 = min(scenario.sync_replicas, scenario.followers)
        hub1 = ReplicationHub(
            manager1,
            sync_replicas=sync1,
            registry=registry1,
            clock=self.clock,
            wall_clock=self.clock,
        )
        hub1.on_replicated = server1.dispatcher.on_replicated
        server1.dispatcher.replication = ReplicationContext(
            ROLE_PRIMARY, hub=hub1
        )
        self.followers = [
            FollowerNode(
                index, self.base / f"follower{index}", scenario, self.clock
            )
            for index in range(scenario.followers)
        ]
        # Registered (and snapshot-seeded) before the run: partitions
        # model links failing, not followers that never joined.
        for node in self.followers:
            self._register(hub1, node)
        clients1 = build_clients(scenario, phase="e1")
        self._plan1 = build_plan(
            scenario,
            clients=clients1,
            sync_replicas=sync1,
            partitions=self.partitions,
        )
        ctx1 = ClusterContext(
            scenario, self.clock, self.net, server1, "primary", epoch=1
        )
        self._ctx1 = ctx1
        self._manager1 = manager1
        self._registry1 = registry1
        self._hub1 = hub1
        self._primary_dir = primary_dir
        followers_by_index = {
            node.index: node for node in self.followers
        }
        try:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(
                    self._run_cluster(
                        ctx1, clients1, hub1, followers_by_index
                    )
                )
            except FuzzDeadlockError as error:
                self.deadlock = str(error)
                _cancel_pending(loop)
            finally:
                asyncio.set_event_loop(None)
            return self._finalize()
        finally:
            loop.close()
            if self._owns_workdir:
                shutil.rmtree(self.base, ignore_errors=True)

    async def _run_cluster(
        self,
        ctx1: ClusterContext,
        clients1: "list[ClientPlan]",
        hub1: ReplicationHub,
        followers_by_index: "dict[int, FollowerNode]",
    ) -> None:
        for node in self.followers:
            await node.start()
        dispatcher_task = asyncio.ensure_future(
            ctx1.server.dispatcher.run()
        )
        await self._run_epoch(
            ctx1,
            clients1,
            hub1,
            list(self.followers),
            dispatcher_task,
            self.scenario.crash_primary_at,
            followers_by_index,
        )
        if not ctx1.crashed:
            # Clean single-epoch end: heal, drain backlogs, retire.
            self._catch_up(hub1, self.followers)
            hub1.close()
            for node in self.followers:
                await node.stop()
            return
        # -- epoch boundary: survivor copy, election, promotion --------
        survivor = build_survivor_copy(
            self._primary_dir, self.base / "survivor", mode="kill"
        )
        wal = self._manager1.wal
        if wal is not None and not wal.closed:
            wal.close()
        self._survivor_dir = survivor
        self._replicas_at_crash = [
            _recover_entry(node) for node in self.followers
        ]
        self._samples_at_crash = list(self.samples)
        hub1.close()
        # Election is out-of-band over the FULL follower set (the
        # operator console reaches every node; partition windows model
        # the replication links): electing among a reachable minority
        # could pick a node missing acked commits.
        statuses = [
            dict(node.applier.status(), node=node.name, index=node.index)
            for node in self.followers
        ]
        choice = Promoter.choose(statuses)
        winner = followers_by_index[choice["index"]]
        await winner.stop()  # drains its read traffic, closes applier
        registry2 = MetricsRegistry()
        manager2, recovery2 = promote_in_place(
            winner.dir,
            flush_interval=self.scenario.flush_interval,
            checkpoint_every=self.scenario.checkpoint_every,
            retain=99,
            registry=registry2,
            strict=self.scenario.strict,
        )
        self._baseline_committed = list(recovery2.committed)
        self.promotion = {
            "winner": winner.name,
            "promoted_from_lsn": choice["applied_lsn"],
            "at": round(self.clock.now, 6),
            "baseline_committed": list(recovery2.committed),
            "verified": recovery2.verified,
        }
        remaining = [
            node for node in self.followers if node is not winner
        ]
        # -- epoch 2: the promoted winner serves ------------------------
        server2 = TransactionServer(
            manager2.database,
            config=ServerConfig(
                queue_size=self.scenario.queue_size,
                request_timeout=self.scenario.request_timeout,
                drain_grace=self.scenario.drain_grace,
                strict=self.scenario.strict,
            ),
            registry=registry2,
            manager=manager2,
            clock=self.clock,
        )
        sync2 = min(self.scenario.sync_replicas, len(remaining))
        hub2 = ReplicationHub(
            manager2,
            sync_replicas=sync2,
            registry=registry2,
            clock=self.clock,
            wall_clock=self.clock,
        )
        hub2.on_replicated = server2.dispatcher.on_replicated
        server2.dispatcher.replication = ReplicationContext(
            ROLE_PRIMARY, hub=hub2
        )
        for node in remaining:
            node.slot = None  # cursor belonged to the dead hub
            self._register(hub2, node)
        clients2 = build_clients(
            self.scenario,
            phase="e2",
            txns_per_client=self.scenario.post_crash_txns_per_client,
        )
        self._plan2 = build_plan(
            self.scenario,
            clients=clients2,
            replicas=len(remaining),
            sync_replicas=sync2,
            partitions=self.partitions,
        )
        ctx2 = ClusterContext(
            self.scenario,
            self.clock,
            self.net,
            server2,
            winner.name,
            epoch=2,
        )
        self._ctx2 = ctx2
        self._manager2 = manager2
        self._registry2 = registry2
        self._hub2 = hub2
        self._winner = winner
        self._remaining = remaining
        ctx2.emit(
            "promotion",
            winner=winner.name,
            applied_lsn=choice["applied_lsn"],
        )
        dispatcher2_task = asyncio.ensure_future(
            server2.dispatcher.run()
        )
        await self._run_epoch(
            ctx2,
            clients2,
            hub2,
            remaining,
            dispatcher2_task,
            None,
            followers_by_index,
        )
        # Clean epoch-2 end: heal, drain backlogs, retire followers.
        self._catch_up(hub2, remaining)
        hub2.close()
        for node in remaining:
            await node.stop()

    async def _shutdown_followers(self) -> None:
        for node in self.followers:
            await node.stop()

    # -- evidence and the report ------------------------------------------

    def _finalize(self) -> dict[str, Any]:
        scenario = self.scenario
        ctx1 = self._ctx1
        assert ctx1 is not None and self._plan1 is not None
        epochs: list[dict[str, Any]] = []
        evidences: list[Evidence] = []
        if not ctx1.crashed:
            evidence = self._epoch1_clean_evidence()
            oracles = run_oracles(evidence)
            epochs.append(
                {"epoch": 1, "evidence": evidence, "oracles": oracles}
            )
            evidences.append(evidence)
            final_records = evidence.records
            final_recovery = evidence.recovery
        else:
            ev1 = self._epoch1_crash_evidence()
            oracles1 = run_oracles(ev1)
            epochs.append(
                {"epoch": 1, "evidence": ev1, "oracles": oracles1}
            )
            evidences.append(ev1)
            final_records = ev1.records
            final_recovery = ev1.recovery
            if self._ctx2 is not None:
                ev2, oracles2 = self._epoch2_evidence()
                epochs.append(
                    {"epoch": 2, "evidence": ev2, "oracles": oracles2}
                )
                evidences.append(ev2)
                final_records = ev2.records
                final_recovery = ev2.recovery
        invariants = cluster_invariants(
            evidences,
            final_records=final_records,
            final_recovery=final_recovery,
            baseline_committed=self._baseline_committed,
        )
        return build_report(
            scenario,
            epochs,
            invariants,
            promotion=self.promotion,
            deadlock=self.deadlock,
            samples=self.samples,
            network=self.net,
            virtual_duration=round(self.clock.now, 6),
            partitions=self.partitions,
        )

    def _epoch1_clean_evidence(self) -> Evidence:
        ctx1 = self._ctx1
        assert ctx1 is not None and self._plan1 is not None
        evidence = Evidence(
            plan=self._plan1,
            events=ctx1.events,
            names=ctx1.names,
            acked_committed=ctx1.acked_committed,
            indeterminate_committed=ctx1.indeterminate_committed,
            requests=ctx1.requests,
            crashed=False,
            deadlock=self.deadlock,
            dispatcher=ctx1.server.dispatcher,
            drain_summary=ctx1.drain_summary,
            registry=self._registry1,
        )
        wal = self._manager1.wal
        if wal is not None and not wal.closed:
            wal.close()  # deadlocked run: shutdown() never completed
        try:
            evidence.recovery = recover(self._primary_dir, verify=True)
            evidence.records = list(
                scan_wal(self._primary_dir).records
            )
        except ReproError as error:
            evidence.recovery_error = f"{type(error).__name__}: {error}"
        if self.deadlock is None:
            # _run_cluster already caught up and retired the followers.
            evidence.manager = self._manager1
        else:
            self._hub1.close()
            for node in self.followers:
                if node.serving:
                    node.applier.close()
        evidence.replicas = [
            _recover_entry(node) for node in self.followers
        ]
        evidence.follower_samples = list(self.samples)
        return evidence

    def _epoch1_crash_evidence(self) -> Evidence:
        ctx1 = self._ctx1
        assert ctx1 is not None and self._plan1 is not None
        evidence = Evidence(
            plan=self._plan1,
            events=ctx1.events,
            names=ctx1.names,
            acked_committed=ctx1.acked_committed,
            indeterminate_committed=ctx1.indeterminate_committed,
            requests=ctx1.requests,
            crashed=True,
            crash_info={"point": "des.primary_kill", "at_hit": 1},
            deadlock=None,
            dispatcher=ctx1.server.dispatcher,
            drain_summary=None,
            registry=self._registry1,
            replicas=self._replicas_at_crash,
            follower_samples=self._samples_at_crash,
        )
        try:
            evidence.recovery = recover(self._survivor_dir, verify=True)
            evidence.records = list(
                scan_wal(self._survivor_dir).records
            )
        except ReproError as error:
            evidence.recovery_error = f"{type(error).__name__}: {error}"
        return evidence

    def _epoch2_evidence(
        self,
    ) -> "tuple[Evidence, list[Any]]":
        """Post-promotion evidence, judged through epoch-aware views.

        The oracles were written for a single-epoch fuzz run; after a
        promotion the epoch-1 history is *legitimately committed but
        never acked in this epoch*, which is exactly what the oracles'
        ``indeterminate_committed`` category accepts.  So view A folds
        the promotion baseline into the indeterminate set, while view
        B (the metrics oracle, whose counters are epoch-2-only) keeps
        the epoch-2 indeterminate list.  ``write_multiplicity`` does
        not transfer at all: acked writes of transactions that never
        committed may be legitimately absent from the winner's log
        (they were in flight on the dead primary) — epoch 1 already
        checked it against the survivor copy, and the cluster-level
        ``no_acked_write_lost`` invariant covers committed writes.
        """
        ctx2 = self._ctx2
        assert ctx2 is not None and self._plan2 is not None
        assert self._baseline_committed is not None
        baseline = self._baseline_committed
        evidence = Evidence(
            plan=self._plan2,
            events=ctx2.events,
            names=ctx2.names,
            acked_committed=ctx2.acked_committed,
            indeterminate_committed=(
                list(baseline)
                + [
                    txn
                    for txn in ctx2.indeterminate_committed
                    if txn not in baseline
                ]
            ),
            requests=ctx2.requests,
            crashed=False,
            deadlock=self.deadlock,
            dispatcher=ctx2.server.dispatcher,
            drain_summary=ctx2.drain_summary,
            registry=self._registry2,
        )
        winner_dir = self._winner.dir
        wal = self._manager2.wal
        if wal is not None and not wal.closed:
            wal.close()
        try:
            evidence.recovery = recover(winner_dir, verify=True)
            evidence.records = list(scan_wal(winner_dir).records)
        except ReproError as error:
            evidence.recovery_error = f"{type(error).__name__}: {error}"
        if self.deadlock is None:
            evidence.manager = self._manager2
        evidence.replicas = [
            _recover_entry(node) for node in self._remaining
        ]
        evidence.follower_samples = list(self.samples)
        oracles = list(run_oracles(evidence, names=EPOCH2_ORACLES))
        metrics_view = replace(
            evidence,
            indeterminate_committed=ctx2.indeterminate_committed,
        )
        oracles.extend(
            run_oracles(metrics_view, names=["metrics_consistent"])
        )
        return evidence, oracles


def _reply_code(reply: dict[str, Any]) -> "str | None":
    if reply.get("ok"):
        return None
    return (reply.get("error") or {}).get("code", "INTERNAL")


def _lsn_key(lsn: Any) -> int:
    """Sort key for ack ordering; unknown LSNs sort last, stably."""
    if isinstance(lsn, int) and not isinstance(lsn, bool):
        return lsn
    return 1 << 62


def _recover_entry(node: FollowerNode) -> dict[str, Any]:
    """One follower's ``recover --verify`` verdict (fuzz shape)."""
    entry: dict[str, Any] = {
        "replica": node.index,
        "applied_lsn": node.applier.applied_lsn,
        "snapshots_installed": node.applier.snapshots_installed,
        "records_applied": node.applier.records_applied,
        "error": None,
    }
    try:
        recovery = recover(node.dir, verify=True)
    except ReproError as error:
        entry["error"] = f"{type(error).__name__}: {error}"
    else:
        if recovery is None:
            entry["committed"] = []
            entry["verified"] = True
            entry["recovered_lsn"] = 0
        else:
            entry["committed"] = list(recovery.committed)
            entry["verified"] = recovery.verified
            entry["violations"] = list(recovery.violations)
            entry["recovered_lsn"] = recovery.summary()["last_lsn"]
    return entry


def _cancel_pending(loop: asyncio.AbstractEventLoop) -> None:
    """After a deadlock verdict: unwind whatever is still pending."""
    pending = [
        task for task in asyncio.all_tasks(loop) if not task.done()
    ]
    for task in pending:
        task.cancel()
    if pending:
        loop.run_until_complete(
            asyncio.gather(*pending, return_exceptions=True)
        )


def run_scenario(
    scenario: Scenario, workdir: "Path | str | None" = None
) -> dict[str, Any]:
    """Convenience: one scenario, one report."""
    return ClusterSim(scenario, workdir=workdir).run()
