"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single except clause while
still being able to discriminate finer failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """An entity, domain, or state violates the database schema."""


class DomainError(SchemaError):
    """A value assigned to an entity is outside the entity's domain."""


class UnknownEntityError(SchemaError):
    """An operation referenced an entity that is not in the schema."""


class PredicateError(ReproError):
    """A predicate is malformed or cannot be evaluated."""


class PredicateParseError(PredicateError):
    """The predicate mini-language parser rejected its input."""


class UnboundEntityError(PredicateError):
    """Predicate evaluation referenced an entity with no assigned value."""


class TransactionError(ReproError):
    """A transaction definition or operation is invalid."""


class InvalidNameError(TransactionError):
    """A hierarchical transaction name is malformed."""


class NestingError(TransactionError):
    """The nested-transaction tree structure is violated."""


class ExecutionError(ReproError):
    """An execution (R, X) violates the model's structural rules."""


class PartialOrderViolation(ExecutionError):
    """R contradicts the transitive closure of the partial order P."""


class ScheduleError(ReproError):
    """A schedule is malformed (bad operation sequence, unknown txn...)."""


class ProtocolError(ReproError):
    """The Section-5 protocol was driven through an illegal step."""


class LockProtocolError(ProtocolError):
    """A lock request violated the protocol's locking discipline."""


class TransactionAborted(ProtocolError):
    """Raised to/by a transaction that the scheduler aborted.

    Attributes
    ----------
    transaction:
        Name of the aborted transaction.
    reason:
        Human-readable abort cause (e.g. partial-order invalidation).
    """

    def __init__(self, transaction: str, reason: str) -> None:
        super().__init__(f"transaction {transaction} aborted: {reason}")
        self.transaction = transaction
        self.reason = reason


class ValidationFailure(ProtocolError):
    """No version assignment can satisfy a transaction's input constraint."""


class SimulationError(ReproError):
    """The discrete-event simulation engine was misused."""


class DurabilityError(ReproError):
    """The durability subsystem (WAL, checkpoints) hit an invalid state."""


class RecoveryError(DurabilityError):
    """Crash recovery failed or the recovered state failed verification."""
