"""Hierarchical transaction names (paper Section 2.2, Figure 1).

The paper names subtransactions by appending an index to the parent's
name: the root ``t`` has children ``t.0``, ``t.1``, …, whose children
are ``t.0.0``, ``t.1.1.2``, and so on.  Section 5.1 relies on this
scheme ("one method to name a transaction is to append a number to the
name of the parent"), and the re-eval procedure of Figure 4 compares
name *prefixes* to detect siblinghood.

:class:`TxnName` is an immutable dotted path with the operations the
protocol needs: parent, prefix, sibling and ancestor tests, child
generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from ..errors import InvalidNameError

ROOT_NAME = "t"
"""Default name of the root transaction of the whole system."""


@total_ordering
@dataclass(frozen=True)
class TxnName:
    """An immutable hierarchical transaction name such as ``t.1.0.2``.

    Ordering is lexicographic on path components (numeric components
    compare numerically), which matches the creation order used in
    Figure 1.
    """

    parts: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise InvalidNameError("a transaction name cannot be empty")
        for part in self.parts:
            if not part or "." in part:
                raise InvalidNameError(
                    f"invalid name component {part!r}"
                )

    @classmethod
    def parse(cls, text: str) -> "TxnName":
        """Parse a dotted name: ``TxnName.parse("t.1.0")``."""
        if not text:
            raise InvalidNameError("a transaction name cannot be empty")
        return cls(tuple(text.split(".")))

    @classmethod
    def root(cls, label: str = ROOT_NAME) -> "TxnName":
        """The root transaction's name (``t`` by default)."""
        return cls((label,))

    def child(self, index: int) -> "TxnName":
        """The name of this transaction's ``index``-th subtransaction."""
        if index < 0:
            raise InvalidNameError("child index must be non-negative")
        return TxnName(self.parts + (str(index),))

    @property
    def parent(self) -> "TxnName | None":
        """The parent's name, or ``None`` for the root."""
        if len(self.parts) == 1:
            return None
        return TxnName(self.parts[:-1])

    @property
    def prefix(self) -> "TxnName | None":
        """Figure 4's ``prefix``: all but the last component (= parent)."""
        return self.parent

    @property
    def depth(self) -> int:
        """Nesting depth; the root has depth 0."""
        return len(self.parts) - 1

    @property
    def leaf_index(self) -> str:
        """The final name component."""
        return self.parts[-1]

    def is_ancestor_of(self, other: "TxnName") -> bool:
        """Proper-ancestor test along the nesting tree."""
        return (
            len(self.parts) < len(other.parts)
            and other.parts[: len(self.parts)] == self.parts
        )

    def is_descendant_of(self, other: "TxnName") -> bool:
        return other.is_ancestor_of(self)

    def is_sibling_of(self, other: "TxnName") -> bool:
        """Same parent, different transaction (Figure 4's prefix check)."""
        return self != other and self.parent == other.parent

    def _key(self) -> tuple[tuple[int, int | str], ...]:
        return tuple(
            (0, int(part)) if part.isdigit() else (1, part)
            for part in self.parts
        )

    def __lt__(self, other: "TxnName") -> bool:
        if not isinstance(other, TxnName):
            return NotImplemented
        return self._key() < other._key()

    def __str__(self) -> str:
        return ".".join(self.parts)

    def __repr__(self) -> str:
        return f"TxnName({self})"
