"""Unique states, database states, and version states (Section 3.1).

The paper's three state notions map onto three classes:

* :class:`UniqueState` — a total assignment ``E → values``, the state
  notion of the *standard* model (``S^U``).
* :class:`DatabaseState` — a non-empty **set** of unique states (``S``);
  this is how the model represents multiple versions: every member
  contributes one retained version of each entity.
* :class:`VersionState` — an element of ``V_S``: a per-entity mix of
  values where each value is drawn from *some* member of ``S`` (the
  members may differ per entity).  Transactions read version states.

Key facts from the paper that are enforced/exposed here:

* every version state satisfies the definition of a unique state
  (it is a total assignment into the domains);
* if ``|S| = 1`` then ``V_S = S`` (the standard model is the
  single-version restriction);
* ``V_S`` can be exponentially larger than ``S`` — this drives the
  NP-completeness of version selection (Lemma 1) — so enumeration is
  exposed only as a generator.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, Mapping

from ..errors import SchemaError
from .entities import Schema


class _FrozenAssignment(Mapping[str, int]):
    """Shared immutable base for total entity → value assignments."""

    __slots__ = ("_schema", "_values", "_map", "_hash")

    def __init__(self, schema: Schema, assignment: Mapping[str, int]) -> None:
        schema.validate_assignment(assignment)
        self._schema = schema
        self._values: tuple[int, ...] = tuple(
            assignment[name] for name in schema.names
        )
        self._map: dict[str, int] = dict(zip(schema.names, self._values))
        self._hash: int | None = None

    @property
    def schema(self) -> Schema:
        return self._schema

    def __getitem__(self, name: str) -> int:
        try:
            return self._map[name]
        except KeyError:
            # Route through the schema so unknown names raise the
            # library's UnknownEntityError rather than a bare KeyError.
            self._schema[name]
            raise

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.names)

    def __len__(self) -> int:
        return len(self._schema)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._schema, self._values))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _FrozenAssignment):
            return NotImplemented
        return (
            self._schema == other._schema and self._values == other._values
        )

    def as_dict(self) -> dict[str, int]:
        """A plain mutable copy of the assignment."""
        return dict(zip(self._schema.names, self._values))

    def replace(self, **updates: int) -> "UniqueState":
        """A new unique state with some entities rebound.

        This is the natural way to express a transaction's effect: the
        written entities change, the fixed-point set is untouched.
        """
        values = self.as_dict()
        values.update(updates)
        return UniqueState(self._schema, values)

    def _body(self) -> str:
        return ", ".join(
            f"{name}={value}"
            for name, value in zip(self._schema.names, self._values)
        )


class UniqueState(_FrozenAssignment):
    """A unique state ``S^U``: one value per entity (Section 3.1).

    Immutable and hashable, so unique states can be collected into the
    sets that form :class:`DatabaseState`.
    """

    def __repr__(self) -> str:
        return f"UniqueState({self._body()})"


class VersionState(_FrozenAssignment):
    """A version state ``v ∈ V_S``: one *version* value per entity.

    Structurally identical to a unique state (the paper notes every
    version state satisfies the unique-state definition); the separate
    type records *provenance intent*: a version state is what a
    transaction is assigned to read, and it may mix values originating
    from different unique states.
    """

    def __repr__(self) -> str:
        return f"VersionState({self._body()})"

    def as_unique(self) -> UniqueState:
        """Reinterpret this version state as a unique state."""
        return UniqueState(self._schema, self.as_dict())


class DatabaseState:
    """A database state ``S``: a non-empty set of unique states.

    Each member of the set contributes one retained version of every
    entity; the *version state* set ``V_S`` (see :meth:`version_states`)
    contains every per-entity recombination of those versions.
    """

    __slots__ = ("_schema", "_states", "_hash")

    def __init__(self, states: Iterable[UniqueState]) -> None:
        state_set = frozenset(states)
        if not state_set:
            raise SchemaError("a database state must be non-empty")
        schemas = {state.schema for state in state_set}
        if len(schemas) != 1:
            raise SchemaError("all unique states must share one schema")
        self._schema = next(iter(schemas))
        self._states = state_set
        self._hash: int | None = None

    @classmethod
    def single(cls, state: UniqueState) -> "DatabaseState":
        """The standard-model restriction ``|S| = 1``."""
        return cls([state])

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def states(self) -> frozenset[UniqueState]:
        """The underlying set of unique states."""
        return self._states

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[UniqueState]:
        return iter(self._states)

    def __contains__(self, state: object) -> bool:
        return state in self._states

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._schema, self._states))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseState):
            return NotImplemented
        return self._states == other._states

    def __or__(self, other: "DatabaseState") -> "DatabaseState":
        """Union of database states (used for transaction *results*).

        The paper defines the result of applying transaction ``t`` to
        state ``S`` as ``S ∪ {t(S)}`` — old versions are retained.
        """
        if not isinstance(other, DatabaseState):
            return NotImplemented
        return DatabaseState(self._states | other._states)

    def __repr__(self) -> str:
        return f"DatabaseState(|S|={len(self._states)})"

    def add(self, state: UniqueState) -> "DatabaseState":
        """``S ∪ {state}`` — the post-state of a writing transaction."""
        return DatabaseState(self._states | {state})

    def versions_of(self, entity: str) -> frozenset[int]:
        """All retained values of ``entity`` across the unique states."""
        self._schema[entity]
        return frozenset(state[entity] for state in self._states)

    def version_state_count(self) -> int:
        """``|V_S|`` — the number of distinct version states.

        Computed without enumeration as the product of per-entity
        version counts; used to demonstrate the exponential blow-up
        underlying Lemma 1.
        """
        count = 1
        for name in self._schema.names:
            count *= len(self.versions_of(name))
        return count

    def version_states(self) -> Iterator[VersionState]:
        """Lazily enumerate ``V_S``.

        The enumeration order is deterministic (sorted values per
        entity, row-major), which keeps exhaustive searches and tests
        reproducible.  Beware: the set is exponential in ``|E|``.
        """
        names = self._schema.names
        choices = [sorted(self.versions_of(name)) for name in names]
        for combo in product(*choices):
            yield VersionState(self._schema, dict(zip(names, combo)))

    def contains_version_state(self, candidate: Mapping[str, int]) -> bool:
        """Does ``candidate`` belong to ``V_S``?

        Checks the defining condition: for every entity, some unique
        state in ``S`` assigns the candidate's value.
        """
        try:
            self._schema.validate_assignment(candidate)
        except SchemaError:
            return False
        return all(
            candidate[name] in self.versions_of(name)
            for name in self._schema.names
        )

    def is_unique(self) -> bool:
        """True when this is a standard-model (single-version) state."""
        return len(self._states) == 1
