"""CNF predicates over database states (Section 3.1).

The paper restricts consistency constraints, input constraints, and
output conditions to predicates in *conjunctive normal form*: a
conjunction of disjunctive clauses whose atoms are comparisons
``x θ y`` with ``θ ∈ {=, ≠, <, ≤, >, ≥}`` and ``x, y`` entities or
constants.

This module provides:

* :class:`Term`, :class:`Atom`, :class:`Clause`, :class:`Predicate` —
  the immutable CNF syntax tree;
* the paper's notion of an **object**: the set of entities mentioned by
  one conjunct (:meth:`Clause.object`, :meth:`Predicate.objects`) —
  objects drive predicate-wise serializability (Section 4.2);
* evaluation over any total entity → value mapping (unique states and
  version states both qualify);
* :func:`parse` — a tiny infix language (``"x > 0 & (y = 1 | z < 5)"``)
  so examples and tests stay readable;
* :meth:`Predicate.find_satisfying_version_state` — backtracking search
  for a ``v ∈ V_S`` with ``P(v)``, the computational heart of the
  transaction-validation phase (and of Lemma 1's NP-completeness).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..errors import (
    PredicateError,
    PredicateParseError,
    UnboundEntityError,
)
from .states import DatabaseState, VersionState

_COMPARATORS: dict[str, Callable[[int, int], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Term:
    """One side of a comparison atom: an entity reference or a constant."""

    entity: str | None = None
    constant: int | None = None

    def __post_init__(self) -> None:
        if (self.entity is None) == (self.constant is None):
            raise PredicateError(
                "a term is exactly one of an entity or a constant"
            )

    @classmethod
    def of(cls, value: "str | int | Term") -> "Term":
        """Coerce a bare name or integer into a term."""
        if isinstance(value, Term):
            return value
        if isinstance(value, bool):
            raise PredicateError("boolean constants are not permitted")
        if isinstance(value, int):
            return cls(constant=value)
        return cls(entity=value)

    @property
    def is_entity(self) -> bool:
        return self.entity is not None

    def value(self, state: Mapping[str, int]) -> int:
        """Resolve the term against a state."""
        if self.constant is not None:
            return self.constant
        assert self.entity is not None
        try:
            return state[self.entity]
        except KeyError:
            raise UnboundEntityError(
                f"entity {self.entity!r} has no value in this state"
            ) from None

    def __str__(self) -> str:
        if self.constant is not None:
            return str(self.constant)
        return str(self.entity)


@dataclass(frozen=True)
class Atom:
    """A comparison ``lhs θ rhs`` (the paper's atom)."""

    lhs: Term
    op: str
    rhs: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise PredicateError(f"unknown comparison operator {self.op!r}")

    @classmethod
    def of(cls, lhs: "str | int | Term", op: str, rhs: "str | int | Term") -> "Atom":
        """Build an atom, coercing bare names/ints into terms."""
        return cls(Term.of(lhs), "=" if op == "==" else op, Term.of(rhs))

    @property
    def entities(self) -> frozenset[str]:
        """Entities mentioned by this atom."""
        names = set()
        if self.lhs.entity is not None:
            names.add(self.lhs.entity)
        if self.rhs.entity is not None:
            names.add(self.rhs.entity)
        return frozenset(names)

    def evaluate(self, state: Mapping[str, int]) -> bool:
        """Truth value of the comparison in ``state``."""
        return _COMPARATORS[self.op](
            self.lhs.value(state), self.rhs.value(state)
        )

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


@dataclass(frozen=True)
class Clause:
    """A disjunctive clause — an ``or`` of atoms (one conjunct ``C_i``)."""

    atoms: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not self.atoms:
            raise PredicateError("a clause must contain at least one atom")

    @classmethod
    def of(cls, *atoms: Atom) -> "Clause":
        return cls(tuple(atoms))

    @property
    def object(self) -> frozenset[str]:
        """The paper's *object* ``x_i``: entities mentioned in the clause."""
        names: set[str] = set()
        for atom in self.atoms:
            names |= atom.entities
        return frozenset(names)

    def evaluate(self, state: Mapping[str, int]) -> bool:
        return any(atom.evaluate(state) for atom in self.atoms)

    def __str__(self) -> str:
        if len(self.atoms) == 1:
            return str(self.atoms[0])
        return "(" + " | ".join(str(atom) for atom in self.atoms) + ")"


class Predicate:
    """A CNF predicate — a conjunction of disjunctive clauses.

    The empty conjunction is the constant-true predicate
    (:meth:`Predicate.true`); the paper notes a database with an empty
    (trivially true) consistency constraint needs no concurrency control
    at all, and the class hierarchy code treats that case specially.
    """

    __slots__ = ("_clauses", "_hash")

    def __init__(self, clauses: Iterable[Clause]) -> None:
        self._clauses: tuple[Clause, ...] = tuple(clauses)
        self._hash: int | None = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def true(cls) -> "Predicate":
        """The constant-true predicate (empty conjunction)."""
        return cls(())

    @classmethod
    def of(cls, *clauses: Clause) -> "Predicate":
        return cls(clauses)

    @classmethod
    def atom(
        cls, lhs: "str | int | Term", op: str, rhs: "str | int | Term"
    ) -> "Predicate":
        """A single-atom predicate, e.g. ``Predicate.atom("x", ">", 0)``."""
        return cls((Clause.of(Atom.of(lhs, op, rhs)),))

    @classmethod
    def parse(cls, text: str) -> "Predicate":
        """Parse the mini-language; see :func:`parse`."""
        return parse(text)

    # -- structure ------------------------------------------------------

    @property
    def clauses(self) -> tuple[Clause, ...]:
        return self._clauses

    @property
    def is_true(self) -> bool:
        """Is this the trivially-true (empty) predicate?"""
        return not self._clauses

    def objects(self) -> tuple[frozenset[str], ...]:
        """The objects ``{x_0, …, x_{n-1}}`` — one entity set per conjunct.

        Duplicate objects are preserved positionally (each conjunct is
        one serialization group in PWSR); callers that want the distinct
        object *sets* can apply ``set()``.
        """
        return tuple(clause.object for clause in self._clauses)

    def entities(self) -> frozenset[str]:
        """All entities mentioned anywhere in the predicate."""
        names: set[str] = set()
        for clause in self._clauses:
            names |= clause.object
        return frozenset(names)

    def and_(self, other: "Predicate") -> "Predicate":
        """Conjunction of two CNF predicates (clause concatenation)."""
        return Predicate(self._clauses + other._clauses)

    def __and__(self, other: "Predicate") -> "Predicate":
        return self.and_(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return self._clauses == other._clauses

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._clauses)
        return self._hash

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __str__(self) -> str:
        if not self._clauses:
            return "true"
        return " & ".join(str(clause) for clause in self._clauses)

    def __repr__(self) -> str:
        return f"Predicate({self})"

    # -- evaluation -----------------------------------------------------

    def evaluate(self, state: Mapping[str, int]) -> bool:
        """Truth value over any total entity → value mapping."""
        return all(clause.evaluate(state) for clause in self._clauses)

    def __call__(self, state: Mapping[str, int]) -> bool:
        return self.evaluate(state)

    def holds_for_all(self, db_state: DatabaseState) -> bool:
        """``P`` holds on every unique state of a database state."""
        return all(self.evaluate(state) for state in db_state)

    def satisfiable_states(
        self, db_state: DatabaseState
    ) -> Iterator[VersionState]:
        """Lazily yield every ``v ∈ V_S`` with ``P(v)`` (may be huge)."""
        for version_state in db_state.version_states():
            if self.evaluate(version_state):
                yield version_state

    # -- version-state search (the Lemma-1 problem) ----------------------

    def iter_satisfying_assignments(
        self, candidates: Mapping[str, Sequence[int]]
    ) -> Iterator[dict[str, int]]:
        """Enumerate assignments from per-entity candidates satisfying P.

        ``candidates`` maps each entity the predicate mentions (at
        least) to the values it may take; entities absent from the
        predicate are ignored.  This is the generic search kernel behind
        both :meth:`find_satisfying_version_state` (candidates = the
        retained versions of a database state) and the protocol's
        validation phase (candidates = the D-set versions).

        The search is backtracking with most-constrained-variable
        ordering; a partial assignment is abandoned as soon as any
        clause whose entities are all bound evaluates false.  Solutions
        are yielded in a deterministic order.
        """
        relevant = sorted(self.entities())
        missing = [name for name in relevant if name not in candidates]
        if missing:
            raise PredicateError(
                f"no candidate values supplied for {missing}"
            )
        order = sorted(
            relevant, key=lambda name: (len(candidates[name]), name)
        )
        position = {name: index for index, name in enumerate(order)}

        # For each clause, the point in the assignment order at which
        # all of its entities are bound and it becomes checkable.
        checkable_at: list[list[Clause]] = [[] for _ in order]
        trivial_clauses: list[Clause] = []
        for clause in self._clauses:
            names = clause.object
            if not names:
                trivial_clauses.append(clause)
                continue
            last = max(position[name] for name in names)
            checkable_at[last].append(clause)

        empty: dict[str, int] = {}
        if any(not clause.evaluate(empty) for clause in trivial_clauses):
            return

        assignment: dict[str, int] = {}

        def extend(depth: int) -> Iterator[dict[str, int]]:
            if depth == len(order):
                yield dict(assignment)
                return
            name = order[depth]
            for value in candidates[name]:
                assignment[name] = value
                if all(
                    clause.evaluate(assignment)
                    for clause in checkable_at[depth]
                ):
                    yield from extend(depth + 1)
            assignment.pop(name, None)

        yield from extend(0)

    def find_satisfying_assignment(
        self, candidates: Mapping[str, Sequence[int]]
    ) -> dict[str, int] | None:
        """First satisfying assignment from per-entity candidates."""
        return next(self.iter_satisfying_assignments(candidates), None)

    def find_satisfying_version_state(
        self, db_state: DatabaseState
    ) -> VersionState | None:
        """Find some ``v ∈ V_S`` satisfying this predicate, or ``None``.

        This is exactly the *one transaction version correctness*
        problem of Lemma 1 — NP-complete in general.  Entities the
        predicate does not mention are bound to an arbitrary retained
        version, which cannot affect satisfaction.
        """
        schema = db_state.schema
        for name in sorted(self.entities()):
            schema[name]  # raises UnknownEntityError for bad predicates
        candidates = {
            name: sorted(db_state.versions_of(name))
            for name in self.entities()
        }
        partial = self.find_satisfying_assignment(candidates)
        if partial is None:
            return None
        full = {
            name: next(iter(db_state.versions_of(name)))
            for name in schema.names
        }
        full.update(partial)
        return VersionState(schema, full)

    def is_satisfiable_over(self, db_state: DatabaseState) -> bool:
        """Does any version state of ``db_state`` satisfy the predicate?"""
        return self.find_satisfying_version_state(db_state) is not None


# ---------------------------------------------------------------------------
# Mini-language parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<op>!=|<=|>=|==|=|<|>)"
    r"|(?P<and>&&?)"
    r"|(?P<or>\|\|?)"
    r"|(?P<lpar>\()"
    r"|(?P<rpar>\))"
    r"|(?P<int>-?\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9.]*))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None:
            if text[index:].strip():
                raise PredicateParseError(
                    f"unexpected character at {index}: {text[index:]!r}"
                )
            break
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
        index = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser for the CNF mini-language.

    Grammar (CNF is enforced syntactically — disjunctions may not
    contain conjunctions)::

        predicate := "true" | clause ("&" clause)*
        clause    := "(" disjunction ")" | atom
        disjunction := atom ("|" atom)*
        atom      := term op term
        term      := NAME | INT
    """

    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0

    def _peek(self) -> tuple[str, str] | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise PredicateParseError("unexpected end of predicate")
        self._index += 1
        return token

    def _expect(self, kind: str) -> str:
        token = self._next()
        if token[0] != kind:
            raise PredicateParseError(
                f"expected {kind}, found {token[1]!r}"
            )
        return token[1]

    def parse(self) -> Predicate:
        if (
            len(self._tokens) == 1
            and self._tokens[0] == ("name", "true")
        ):
            return Predicate.true()
        clauses = [self._clause()]
        while self._peek() is not None:
            token = self._next()
            if token[0] != "and":
                raise PredicateParseError(
                    f"expected '&' between clauses, found {token[1]!r}"
                )
            clauses.append(self._clause())
        return Predicate(clauses)

    def _clause(self) -> Clause:
        token = self._peek()
        if token is not None and token[0] == "lpar":
            self._next()
            atoms = [self._atom()]
            while True:
                token = self._next()
                if token[0] == "rpar":
                    break
                if token[0] != "or":
                    raise PredicateParseError(
                        f"expected '|' or ')', found {token[1]!r}"
                    )
                atoms.append(self._atom())
            return Clause(tuple(atoms))
        return Clause.of(self._atom())

    def _atom(self) -> Atom:
        lhs = self._term()
        op = self._expect("op")
        rhs = self._term()
        return Atom.of(lhs, op, rhs)

    def _term(self) -> Term:
        token = self._next()
        if token[0] == "int":
            return Term(constant=int(token[1]))
        if token[0] == "name":
            return Term(entity=token[1])
        raise PredicateParseError(
            f"expected entity or constant, found {token[1]!r}"
        )


def parse(text: str) -> Predicate:
    """Parse a CNF predicate from infix text.

    Examples
    --------
    >>> parse("x > 0")
    Predicate(x > 0)
    >>> parse("x = 1 & (y < 2 | z != 0)")
    Predicate(x = 1 & (y < 2 | z != 0))
    >>> parse("true").is_true
    True
    """
    return _Parser(text).parse()
