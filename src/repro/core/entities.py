"""Entities, domains, and database schemas (paper Section 3.1).

The paper starts from a set ``E`` of *entities*, each with a *domain*
``dom(e)`` of permissible values.  This module provides:

* :class:`Domain` — an immutable description of a value domain, either a
  finite enumeration or an integer interval.
* :class:`Entity` — a named entity bound to a domain.
* :class:`Schema` — the set ``E``: an immutable collection of entities,
  the universe over which states, predicates, and transactions operate.

Domains are deliberately first-class: the NP-completeness reduction of
Lemma 1 relies on binary domains ``{0, 1}``, while the CAD-style
examples use larger integer ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..errors import DomainError, SchemaError, UnknownEntityError

Value = int
"""Entity values are integers throughout the library.

The paper's model is agnostic to the value type; integers keep states
hashable and make predicate atoms (comparisons) total.  Design-style
payloads can be modelled as integer surrogate keys.
"""


@dataclass(frozen=True)
class Domain:
    """An immutable domain of permissible integer values.

    A domain is either a *finite enumeration* (``values`` is non-None)
    or an *interval* ``[low, high]`` (inclusive).  The classic boolean
    domain used by the SAT reduction is :meth:`Domain.boolean`.
    """

    low: int | None = None
    high: int | None = None
    values: frozenset[int] | None = None

    def __post_init__(self) -> None:
        if self.values is None:
            if self.low is None or self.high is None:
                raise DomainError("interval domain requires low and high")
            if self.low > self.high:
                raise DomainError(
                    f"empty interval domain [{self.low}, {self.high}]"
                )
        elif not self.values:
            raise DomainError("enumerated domain must be non-empty")

    @classmethod
    def boolean(cls) -> "Domain":
        """The two-valued domain {0, 1} used in the Lemma-1 reduction."""
        return cls(values=frozenset({0, 1}))

    @classmethod
    def interval(cls, low: int, high: int) -> "Domain":
        """All integers in ``[low, high]`` inclusive."""
        return cls(low=low, high=high)

    @classmethod
    def enumerated(cls, values: Iterable[int]) -> "Domain":
        """An explicit finite set of values."""
        return cls(values=frozenset(values))

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, int) or isinstance(value, bool):
            return False
        if self.values is not None:
            return value in self.values
        assert self.low is not None and self.high is not None
        return self.low <= value <= self.high

    def __len__(self) -> int:
        if self.values is not None:
            return len(self.values)
        assert self.low is not None and self.high is not None
        return self.high - self.low + 1

    def __iter__(self) -> Iterator[int]:
        if self.values is not None:
            return iter(sorted(self.values))
        assert self.low is not None and self.high is not None
        return iter(range(self.low, self.high + 1))

    def sample(self) -> int:
        """An arbitrary (smallest) member, useful as a default value."""
        return next(iter(self))


@dataclass(frozen=True)
class Entity:
    """A named database entity with its domain ``dom(e)``."""

    name: str
    domain: Domain = field(default_factory=Domain.boolean)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("entity name must be non-empty")

    def validate(self, value: int) -> None:
        """Raise :class:`DomainError` unless ``value`` is in the domain."""
        if value not in self.domain:
            raise DomainError(
                f"value {value!r} outside dom({self.name})"
            )


class Schema(Mapping[str, Entity]):
    """The entity universe ``E`` — an immutable name → entity mapping.

    A :class:`Schema` behaves as a read-only mapping from entity names
    to :class:`Entity` objects and is hashable, so it can key caches.

    Examples
    --------
    >>> schema = Schema.of("x", "y")          # boolean entities
    >>> schema = Schema([Entity("x", Domain.interval(0, 100))])
    """

    __slots__ = ("_entities", "_hash")

    def __init__(self, entities: Iterable[Entity]) -> None:
        by_name: dict[str, Entity] = {}
        for entity in entities:
            if entity.name in by_name:
                raise SchemaError(f"duplicate entity {entity.name!r}")
            by_name[entity.name] = entity
        if not by_name:
            raise SchemaError("schema must contain at least one entity")
        self._entities: dict[str, Entity] = dict(sorted(by_name.items()))
        self._hash: int | None = None

    @classmethod
    def of(cls, *names: str, domain: Domain | None = None) -> "Schema":
        """Build a schema of same-domain entities from bare names.

        The default domain is boolean, matching the paper's SAT
        reduction and the small worked examples.
        """
        dom = domain if domain is not None else Domain.boolean()
        return cls(Entity(name, dom) for name in names)

    def __getitem__(self, name: str) -> Entity:
        try:
            return self._entities[name]
        except KeyError:
            raise UnknownEntityError(f"unknown entity {name!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._entities)

    def __len__(self) -> int:
        return len(self._entities)

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(tuple(self._entities.items()))
            )
        assert self._hash is not None
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._entities == other._entities

    def __repr__(self) -> str:
        names = ", ".join(self._entities)
        return f"Schema({names})"

    @property
    def names(self) -> tuple[str, ...]:
        """Entity names in sorted order."""
        return tuple(self._entities)

    def validate_assignment(self, assignment: Mapping[str, int]) -> None:
        """Check a full entity → value assignment against the schema.

        Every entity must be present and every value must lie in its
        entity's domain; this is the well-formedness condition on
        unique states.
        """
        missing = set(self._entities) - set(assignment)
        if missing:
            raise SchemaError(f"missing entities: {sorted(missing)}")
        extra = set(assignment) - set(self._entities)
        if extra:
            raise UnknownEntityError(f"unknown entities: {sorted(extra)}")
        for name, value in assignment.items():
            self._entities[name].validate(value)

    def restrict(self, names: Iterable[str]) -> "Schema":
        """A sub-schema containing only the named entities."""
        return Schema(self[name] for name in names)
