"""Partial orders over hashable elements.

Both the implementation of a nested transaction (``(T, P)``, Section 3.1)
and the execution relation ``R`` are (partial) orders.  This module
provides a small, self-contained partial-order type with the operations
the model and the protocol need:

* transitive closure (``P+`` in the paper), computed once and cached;
* cycle detection (a valid partial order is a DAG of its covering pairs);
* consistency checks between two relations — the definition of an
  execution requires ``(t_i, t_j) ∈ P+ ⇒ (t_j, t_i) ∉ R+``;
* linearization enumeration (used by the exhaustive correctness and
  serializability testers) and topological sorting;
* path queries (Figure 4's ``path(a, b, c)`` helper).

Elements are kept generic; the library instantiates this with
:class:`~repro.core.naming.TxnName` and plain strings.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, TypeVar

from ..errors import PartialOrderViolation

T = TypeVar("T", bound=Hashable)


class PartialOrder(Generic[T]):
    """An immutable strict partial order, given by covering pairs.

    The constructor accepts any relation (not necessarily transitively
    closed); the transitive closure is computed eagerly and the result
    is checked to be irreflexive (acyclic).

    Parameters
    ----------
    elements:
        The ground set.  Pairs may only mention these elements.
    pairs:
        Ordered pairs ``(a, b)`` meaning ``a`` precedes ``b``.
    """

    __slots__ = ("_elements", "_pairs", "_closure", "_succ", "_pred")

    def __init__(
        self,
        elements: Iterable[T],
        pairs: Iterable[tuple[T, T]] = (),
    ) -> None:
        self._elements: frozenset[T] = frozenset(elements)
        pair_set = frozenset(pairs)
        for a, b in pair_set:
            if a not in self._elements or b not in self._elements:
                raise PartialOrderViolation(
                    f"pair ({a!r}, {b!r}) mentions unknown elements"
                )
        self._pairs: frozenset[tuple[T, T]] = pair_set
        self._succ: dict[T, set[T]] = {e: set() for e in self._elements}
        self._pred: dict[T, set[T]] = {e: set() for e in self._elements}
        for a, b in pair_set:
            self._succ[a].add(b)
            self._pred[b].add(a)
        self._closure = self._transitive_closure()
        for element in self._elements:
            if (element, element) in self._closure:
                raise PartialOrderViolation(
                    f"cycle through {element!r}: not a partial order"
                )

    @classmethod
    def empty(cls, elements: Iterable[T]) -> "PartialOrder[T]":
        """The empty order (all elements incomparable)."""
        return cls(elements, ())

    @classmethod
    def total(cls, sequence: Iterable[T]) -> "PartialOrder[T]":
        """The total order given by a sequence."""
        items = list(sequence)
        pairs = [
            (items[i], items[i + 1]) for i in range(len(items) - 1)
        ]
        return cls(items, pairs)

    @classmethod
    def chain_of_chains(
        cls, chains: Iterable[Iterable[T]]
    ) -> "PartialOrder[T]":
        """Parallel chains: elements ordered within each chain only.

        This is the natural shape of a nested transaction whose
        subtransactions run as independent sequential threads
        (Figure 1's interleaved execution).
        """
        elements: list[T] = []
        pairs: list[tuple[T, T]] = []
        for chain in chains:
            items = list(chain)
            elements.extend(items)
            pairs.extend(
                (items[i], items[i + 1]) for i in range(len(items) - 1)
            )
        return cls(elements, pairs)

    # -- basic structure -------------------------------------------------

    @property
    def elements(self) -> frozenset[T]:
        return self._elements

    @property
    def pairs(self) -> frozenset[tuple[T, T]]:
        """The covering pairs as given (not transitively closed)."""
        return self._pairs

    @property
    def closure(self) -> frozenset[tuple[T, T]]:
        """The transitive closure ``P+``."""
        return self._closure

    def _transitive_closure(self) -> frozenset[tuple[T, T]]:
        closed: set[tuple[T, T]] = set()
        for start in self._elements:
            stack = list(self._succ[start])
            seen: set[T] = set()
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                closed.add((start, node))
                stack.extend(self._succ[node])
        return frozenset(closed)

    def precedes(self, a: T, b: T) -> bool:
        """``a P+ b`` — does ``a`` strictly precede ``b``?"""
        return (a, b) in self._closure

    def has_path(self, a: T, b: T) -> bool:
        """Figure 4's ``path(P, a, b)``: reachability in the order."""
        return self.precedes(a, b)

    def comparable(self, a: T, b: T) -> bool:
        return self.precedes(a, b) or self.precedes(b, a)

    def predecessors(self, element: T) -> frozenset[T]:
        """All strict predecessors of ``element`` under ``P+``."""
        return frozenset(a for (a, b) in self._closure if b == element)

    def successors(self, element: T) -> frozenset[T]:
        """All strict successors of ``element`` under ``P+``."""
        return frozenset(b for (a, b) in self._closure if a == element)

    def immediate_predecessors(self, element: T) -> frozenset[T]:
        return frozenset(self._pred[element])

    def immediate_successors(self, element: T) -> frozenset[T]:
        return frozenset(self._succ[element])

    def minimal_elements(self) -> frozenset[T]:
        return frozenset(
            e for e in self._elements if not self._pred[e]
        )

    def maximal_elements(self) -> frozenset[T]:
        return frozenset(
            e for e in self._elements if not self._succ[e]
        )

    # -- combination and comparison ---------------------------------------

    def extend(self, pairs: Iterable[tuple[T, T]]) -> "PartialOrder[T]":
        """A new order with extra pairs (raises if a cycle appears)."""
        return PartialOrder(self._elements, self._pairs | set(pairs))

    def restrict(self, subset: Iterable[T]) -> "PartialOrder[T]":
        """The induced order on a subset of elements.

        The restriction keeps *closure* pairs between retained elements,
        so ordering constraints mediated by removed elements survive.
        This is the paper's ``R^{x_i}`` restriction by an object.
        """
        keep = frozenset(subset)
        missing = keep - self._elements
        if missing:
            raise PartialOrderViolation(
                f"cannot restrict to unknown elements {sorted(map(repr, missing))}"
            )
        pairs = [
            (a, b) for (a, b) in self._closure if a in keep and b in keep
        ]
        return PartialOrder(keep, pairs)

    def is_consistent_with(self, other: "PartialOrder[T]") -> bool:
        """No pair of this order is reversed in the other's closure.

        The definition of an execution requires exactly this between
        ``P`` and ``R``: ``(t_i, t_j) ∈ P+ ⇒ (t_j, t_i) ∉ R+``.
        """
        return all(
            (b, a) not in other.closure for (a, b) in self._closure
        )

    # -- linearizations ----------------------------------------------------

    def topological_order(self) -> list[T]:
        """One deterministic linearization (Kahn's algorithm).

        Ties are broken by ``repr`` so results are stable across runs.
        """
        in_degree = {e: len(self._pred[e]) for e in self._elements}
        ready = sorted(
            (e for e in self._elements if in_degree[e] == 0), key=repr
        )
        result: list[T] = []
        while ready:
            node = ready.pop(0)
            result.append(node)
            added = False
            for succ in self._succ[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
                    added = True
            if added:
                ready.sort(key=repr)
        return result

    def linearizations(self) -> Iterator[list[T]]:
        """Lazily enumerate every linear extension.

        Exponential in general; used only by exhaustive testers on the
        small instances where that is the point (Theorem 1).
        """
        in_degree = {e: len(self._pred[e]) for e in self._elements}
        chosen: list[T] = []

        def backtrack() -> Iterator[list[T]]:
            if len(chosen) == len(self._elements):
                yield list(chosen)
                return
            ready = sorted(
                (
                    e
                    for e in self._elements
                    if in_degree[e] == 0 and e not in chosen_set
                ),
                key=repr,
            )
            for node in ready:
                chosen.append(node)
                chosen_set.add(node)
                for succ in self._succ[node]:
                    in_degree[succ] -= 1
                yield from backtrack()
                for succ in self._succ[node]:
                    in_degree[succ] += 1
                chosen_set.remove(node)
                chosen.pop()

        chosen_set: set[T] = set()
        return backtrack()

    def is_linearized_by(self, sequence: Iterable[T]) -> bool:
        """Is ``sequence`` a linear extension of this order?"""
        items = list(sequence)
        if set(items) != set(self._elements) or len(items) != len(
            self._elements
        ):
            return False
        position = {item: index for index, item in enumerate(items)}
        return all(position[a] < position[b] for (a, b) in self._closure)

    def __contains__(self, pair: object) -> bool:
        return pair in self._closure

    def __len__(self) -> int:
        return len(self._elements)

    def __repr__(self) -> str:
        return (
            f"PartialOrder({len(self._elements)} elements, "
            f"{len(self._pairs)} pairs)"
        )
