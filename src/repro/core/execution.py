"""Executions ``(R, X)`` of nested transactions (Section 3.1).

An execution of ``t = (T, P, I_t, O_t)`` is a pair ``(R, X)`` where

* ``R ⊆ T × T`` is a relation constrained by
  ``(t_i, t_j) ∈ P+ ⇒ (t_j, t_i) ∉ R+`` — it records which
  subtransactions' results each subtransaction depends on (think
  "reads from"); and
* ``X`` maps every subtransaction to its *input version state*.

The paper adds two pseudo-transactions: ``t_0`` writes the initial
state and precedes everything; ``t_f`` reads every entity after
everything (its input state ``X(t_f)`` is the *final state*).  Here the
initial state is an explicit :class:`~repro.core.states.DatabaseState`
and the final state an explicit version state; ``R`` relates only the
real subtransactions.

Three checks matter (all implemented here):

* **validity** — the structural constraint between ``P+`` and ``R+``;
* **parent-based** — every entity value a subtransaction sees comes
  either from the parent's input state or from an ``R``-predecessor's
  output (Section 3.1's parent-based execution);
* **correctness** — every subtransaction's input constraint holds on
  its assigned state and the parent's output condition holds on the
  final state.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Union

from ..errors import ExecutionError
from .naming import TxnName
from .states import DatabaseState, UniqueState, VersionState
from .transactions import NestedTransaction

ParentSource = Union[VersionState, DatabaseState]
"""What the parent makes available to its children.

For a *nested* (non-root) execution this is the parent's own input
version state ``X(t)``.  For the *root* execution the parent is the
pseudo-transaction ``t_0``, whose update set is all of ``E`` and whose
output is the whole (possibly multi-version) initial database state —
so children of the root may read **any** retained initial version,
which is exactly what Theorem 1's two-state construction requires.
"""


def source_provides(source: ParentSource, entity: str, value: int) -> bool:
    """Does the parent source offer ``value`` for ``entity``?"""
    if isinstance(source, DatabaseState):
        return value in source.versions_of(entity)
    return source[entity] == value


def _relation_closure(
    pairs: frozenset[tuple[TxnName, TxnName]],
) -> frozenset[tuple[TxnName, TxnName]]:
    """Transitive closure of an arbitrary (possibly cyclic) relation."""
    succ: dict[TxnName, set[TxnName]] = {}
    for a, b in pairs:
        succ.setdefault(a, set()).add(b)
    closed: set[tuple[TxnName, TxnName]] = set()
    for start in succ:
        stack = list(succ[start])
        seen: set[TxnName] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            closed.add((start, node))
            stack.extend(succ.get(node, ()))
    return frozenset(closed)


class Execution:
    """A concrete execution ``(R, X)`` of one nested transaction.

    Parameters
    ----------
    transaction:
        The parent transaction ``t = (T, P, I_t, O_t)``.
    initial:
        The database state written by the pseudo-transaction ``t_0``.
    reads_from:
        The relation ``R`` over child names.
    assignment:
        ``X`` restricted to the children: child name → input version
        state.  Every child must be assigned.
    final_state:
        ``X(t_f)`` — the version state the final pseudo-transaction
        reads (all entities).
    """

    def __init__(
        self,
        transaction: NestedTransaction,
        initial: DatabaseState,
        reads_from: Iterable[tuple[TxnName, TxnName]],
        assignment: Mapping[TxnName, VersionState],
        final_state: VersionState,
    ) -> None:
        self._transaction = transaction
        self._initial = initial
        self._reads_from = frozenset(reads_from)
        self._assignment = dict(assignment)
        self._final_state = final_state

        children = set(transaction.child_names)
        for a, b in self._reads_from:
            if a not in children or b not in children:
                raise ExecutionError(
                    f"R pair ({a}, {b}) mentions a non-child transaction"
                )
        missing = children - set(self._assignment)
        if missing:
            raise ExecutionError(
                f"X does not assign a state to {sorted(map(str, missing))}"
            )
        self._closure = _relation_closure(self._reads_from)
        self._results: dict[TxnName, UniqueState] | None = None

    # -- accessors ---------------------------------------------------------

    @property
    def transaction(self) -> NestedTransaction:
        return self._transaction

    @property
    def initial(self) -> DatabaseState:
        return self._initial

    @property
    def reads_from(self) -> frozenset[tuple[TxnName, TxnName]]:
        """``R`` as given."""
        return self._reads_from

    @property
    def reads_from_closure(self) -> frozenset[tuple[TxnName, TxnName]]:
        """``R+``."""
        return self._closure

    @property
    def final_state(self) -> VersionState:
        """``X(t_f)`` — the final state of the execution."""
        return self._final_state

    def input_state(self, child: TxnName) -> VersionState:
        """``X(t_i)`` for a child."""
        try:
            return self._assignment[child]
        except KeyError:
            raise ExecutionError(f"{child} has no assigned state") from None

    def results(self) -> dict[TxnName, UniqueState]:
        """``t_i(X(t_i))`` for every child — each child's output state."""
        if self._results is None:
            self._results = {
                name: self._transaction.child(name).apply(state)
                for name, state in self._assignment.items()
            }
        return dict(self._results)

    def database_state_after(self) -> DatabaseState:
        """All versions after the execution: ``S ∪ {t_i(X(t_i)) …}``.

        The model's result-of-a-transaction rule applied to every
        child: old versions are retained, each child's output is added.
        """
        state = self._initial
        for result in self.results().values():
            state = state.add(result)
        return state

    # -- the three checks ----------------------------------------------------

    def is_valid(self) -> bool:
        """Structural validity: ``(t_i,t_j) ∈ P+ ⇒ (t_j,t_i) ∉ R+``."""
        order = self._transaction.order
        return all(
            (b, a) not in self._closure for (a, b) in order.closure
        )

    def parent_based_violations(
        self, parent_input: ParentSource
    ) -> list[tuple[TxnName, str]]:
        """Entities whose provenance breaks the parent-based rule.

        For every child ``t_i`` and entity ``e``, the value
        ``X(t_i)(e)`` must be offered by the parent source (see
        :data:`ParentSource`) or be the output value of some direct
        ``R``-predecessor.  Returns the offending (child, entity)
        pairs; empty means parent-based.
        """
        results = self.results()
        violations: list[tuple[TxnName, str]] = []
        for child, state in self._assignment.items():
            providers = [a for (a, b) in self._reads_from if b == child]
            for entity in state:
                value = state[entity]
                if source_provides(parent_input, entity, value):
                    continue
                if any(
                    results[provider][entity] == value
                    for provider in providers
                ):
                    continue
                violations.append((child, entity))
        return violations

    def is_parent_based(self, parent_input: ParentSource) -> bool:
        """Does every read trace to the parent or an R-predecessor?"""
        return not self.parent_based_violations(parent_input)

    def final_state_violations(
        self, parent_input: ParentSource
    ) -> list[str]:
        """Entities of the final state with no legal provenance.

        ``t_f`` follows every child in ``R+``, so it may read any
        parent-offered value or any child's output value.
        """
        results = self.results()
        bad: list[str] = []
        for entity in self._final_state:
            value = self._final_state[entity]
            if source_provides(parent_input, entity, value):
                continue
            if any(
                result[entity] == value for result in results.values()
            ):
                continue
            bad.append(entity)
        return bad

    def is_correct(self) -> bool:
        """The paper's correctness: ``∀t_i I_{t_i}(X(t_i)) ∧ O_t(X(t_f))``."""
        for child, state in self._assignment.items():
            constraint = self._transaction.child(child).input_constraint
            if not constraint.evaluate(state):
                return False
        return self._transaction.output_condition.evaluate(
            self._final_state
        )

    def incorrectness_witnesses(self) -> list[str]:
        """Human-readable reasons :meth:`is_correct` fails (empty if ok)."""
        reasons: list[str] = []
        for child in sorted(self._assignment):
            constraint = self._transaction.child(child).input_constraint
            if not constraint.evaluate(self._assignment[child]):
                reasons.append(
                    f"I_{child} fails on X({child}): {constraint}"
                )
        output = self._transaction.output_condition
        if not output.evaluate(self._final_state):
            reasons.append(f"O_t fails on the final state: {output}")
        return reasons

    def __repr__(self) -> str:
        return (
            f"Execution({self._transaction.name}, |R|="
            f"{len(self._reads_from)}, |X|={len(self._assignment)})"
        )
