"""Executable forms of the paper's complexity results (Section 3.2).

* :func:`lemma1_instance` — Lemma 1's reduction: a SAT formula becomes
  a one-transaction version-correctness instance (delegates to
  :mod:`repro.sat.reduction`).
* :func:`theorem1_instance` — Theorem 1's embedding: the Lemma-1
  instance is wrapped into an *execution correctness* instance with a
  single subtransaction ``T = {t_1}`` and ``O_t = true``, exactly the
  two steps of the paper's NP-hardness proof.
* :func:`verify_certificate` — the polynomial "Part 1" direction: a
  guessed ``X`` is checked in time linear in the predicate size.

These functions are exercised by experiment L1/T1 benchmarks, which
also chart how the honest exponential search scales against DPLL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .correctness import find_correct_execution
from .execution import Execution
from .naming import TxnName
from .predicates import Predicate
from .states import DatabaseState, VersionState
from .transactions import (
    Effect,
    LeafTransaction,
    NestedTransaction,
    Spec,
)

if TYPE_CHECKING:  # imported lazily at runtime to break the sat↔core cycle
    from ..sat.cnf import CNFFormula
    from ..sat.reduction import VersionCorrectnessInstance


def lemma1_instance(formula: "CNFFormula") -> "VersionCorrectnessInstance":
    """Lemma 1: SAT ≤p one-transaction version correctness."""
    from ..sat.reduction import sat_to_version_correctness

    return sat_to_version_correctness(formula)


@dataclass(frozen=True)
class ExecutionCorrectnessInstance:
    """An instance of Theorem 1's decision problem.

    *Given the root transaction ``t`` and initial state, does a correct
    execution ``(R, X)`` exist?*
    """

    transaction: NestedTransaction
    initial: DatabaseState

    def solve(self) -> Execution | None:
        """Honest exponential search (see Theorem 1).

        Root semantics: children may read any retained initial version
        (``t_0`` authored them all), matching the proof's two-state
        construction.
        """
        return find_correct_execution(self.transaction, self.initial)

    @property
    def has_correct_execution(self) -> bool:
        return self.solve() is not None


def theorem1_instance(
    formula: "CNFFormula",
) -> ExecutionCorrectnessInstance:
    """Theorem 1: embed the Lemma-1 instance into execution correctness.

    Following the proof verbatim: ``T = {t_1}`` where ``t_1`` carries
    the Lemma-1 input constraint, and ``O_t = true`` so correctness
    degenerates to ``I_{t_1}(X(t_1))`` being satisfiable.
    """
    lemma = lemma1_instance(formula)
    root_name = TxnName.root()
    child = LeafTransaction(
        root_name.child(0),
        lemma.schema,
        Spec(lemma.input_constraint, Predicate.true()),
        Effect({}),
        extra_reads=(),
    )
    root = NestedTransaction(
        root_name,
        lemma.schema,
        Spec(Predicate.true(), Predicate.true()),
        [child],
    )
    return ExecutionCorrectnessInstance(root, lemma.db_state)


def verify_certificate(
    instance: ExecutionCorrectnessInstance,
    assignment: dict[TxnName, VersionState],
    final_state: VersionState,
) -> bool:
    """Theorem 1, Part 1: checking a guessed ``X`` is polynomial.

    Evaluates each child's input constraint on its guessed state and
    the root's output condition on the guessed final state — no search.
    """
    transaction = instance.transaction
    for child_name in transaction.child_names:
        state = assignment.get(child_name)
        if state is None:
            return False
        child = transaction.child(child_name)
        if not child.input_constraint.evaluate(state):
            return False
    return transaction.output_condition.evaluate(final_state)
