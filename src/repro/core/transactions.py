"""Transactions, specifications, and implementations (Section 3.1).

A transaction in the paper is a four-tuple ``(T, P, I_t, O_t)``:

* ``(I_t, O_t)`` — the *specification*: CNF input constraint
  (precondition) and output condition (postcondition);
* ``(T, P)`` — the *implementation*: subtransactions and a partial
  order on them.

A transaction contains either database accesses or subtransactions,
never both (Section 2.2).  We model that dichotomy with two classes:

* :class:`LeafTransaction` — a deterministic mapping from version
  states to unique states, expressed by an :class:`Effect` (a set of
  entity := expression assignments evaluated against the input state);
* :class:`NestedTransaction` — subtransactions plus a partial order.

The module also computes the paper's derived sets: the input set
``N_t`` (entities in ``I_t``), update set ``U_t``, fixed-point set
``F_t = E − U_t``, and the object set (union of subtransaction output
objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from ..errors import NestingError, TransactionError
from .entities import Schema
from .naming import TxnName
from .orders import PartialOrder
from .predicates import Predicate
from .states import UniqueState, VersionState


# ---------------------------------------------------------------------------
# Effect expressions
# ---------------------------------------------------------------------------


class Expr:
    """A side-effect-free integer expression over entity values.

    Expressions form the right-hand sides of a leaf transaction's
    writes.  They read only the transaction's *input* version state, so
    a transaction is a pure mapping as the model requires.
    """

    def evaluate(self, state: Mapping[str, int]) -> int:
        raise NotImplementedError

    def references(self) -> frozenset[str]:
        """Entities this expression reads."""
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    """A constant value."""

    value: int

    def evaluate(self, state: Mapping[str, int]) -> int:
        return self.value

    def references(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Ref(Expr):
    """The current value of an entity (a read)."""

    entity: str

    def evaluate(self, state: Mapping[str, int]) -> int:
        return state[self.entity]

    def references(self) -> frozenset[str]:
        return frozenset({self.entity})

    def __str__(self) -> str:
        return self.entity


_BIN_OPS: dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "min": min,
    "max": max,
}


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic combination of two expressions."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BIN_OPS:
            raise TransactionError(f"unknown operator {self.op!r}")

    def evaluate(self, state: Mapping[str, int]) -> int:
        return _BIN_OPS[self.op](
            self.left.evaluate(state), self.right.evaluate(state)
        )

    def references(self) -> frozenset[str]:
        return self.left.references() | self.right.references()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def expr(value: "int | str | Expr") -> Expr:
    """Coerce an int (constant) or str (entity reference) to an Expr."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TransactionError("boolean effect values are not permitted")
    if isinstance(value, int):
        return Const(value)
    return Ref(value)


def increment(entity: str, amount: int = 1) -> Expr:
    """Convenience: ``entity + amount`` (the classic increment op)."""
    return BinOp("+", Ref(entity), Const(amount))


class Effect(Mapping[str, Expr]):
    """A leaf transaction's writes: entity := expression, atomically.

    All expressions are evaluated against the *input* version state, so
    writes never observe each other; this makes a leaf transaction a
    pure mapping from version states to unique states, exactly the
    paper's definition of a transaction.
    """

    __slots__ = ("_writes",)

    def __init__(self, writes: Mapping[str, "int | str | Expr"]) -> None:
        self._writes: dict[str, Expr] = {
            entity: expr(value) for entity, value in writes.items()
        }

    def __getitem__(self, entity: str) -> Expr:
        return self._writes[entity]

    def __iter__(self) -> Iterator[str]:
        return iter(self._writes)

    def __len__(self) -> int:
        return len(self._writes)

    @property
    def written_entities(self) -> frozenset[str]:
        """The update set contributed by this effect."""
        return frozenset(self._writes)

    @property
    def read_entities(self) -> frozenset[str]:
        """Entities read by any right-hand side."""
        names: set[str] = set()
        for expression in self._writes.values():
            names |= expression.references()
        return frozenset(names)

    def apply(self, state: VersionState) -> UniqueState:
        """The transaction mapping: input version state → unique state.

        Unwritten entities keep their input value (the fixed-point
        set); written entities take their expression's value.
        """
        values = state.as_dict()
        for entity, expression in self._writes.items():
            values[entity] = expression.evaluate(state)
        return UniqueState(state.schema, values)

    def __repr__(self) -> str:
        body = ", ".join(
            f"{entity}:={expression}"
            for entity, expression in self._writes.items()
        )
        return f"Effect({body})"


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Spec:
    """A transaction specification ``(I_t, O_t)`` (Section 3.1).

    ``input_constraint`` (``I_t``) must mention every entity the
    transaction reads; ``output_condition`` (``O_t``) describes the
    state after a solo run.
    """

    input_constraint: Predicate
    output_condition: Predicate

    @classmethod
    def trivial(cls) -> "Spec":
        """The always-true specification."""
        return cls(Predicate.true(), Predicate.true())

    @classmethod
    def invariant(cls, predicate: Predicate) -> "Spec":
        """Bancilhon-style invariant: the same predicate as I and O.

        Section 2.3 notes the model generalizes [Bancilhon et al. 1985]
        from an invariant to separate pre/postconditions.
        """
        return cls(predicate, predicate)


class Transaction:
    """Common base of leaf and nested transactions.

    Subclasses must provide :meth:`apply`, the transaction's mapping
    from version states to unique states, plus the paper's derived
    entity sets.
    """

    def __init__(self, name: TxnName, schema: Schema, spec: Spec) -> None:
        self._name = name
        self._schema = schema
        self._spec = spec
        unknown = spec.input_constraint.entities() - set(schema.names)
        unknown |= spec.output_condition.entities() - set(schema.names)
        if unknown:
            raise TransactionError(
                f"{name}: specification mentions unknown entities "
                f"{sorted(unknown)}"
            )

    @property
    def name(self) -> TxnName:
        return self._name

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def spec(self) -> Spec:
        return self._spec

    @property
    def input_constraint(self) -> Predicate:
        """``I_t`` — the precondition."""
        return self._spec.input_constraint

    @property
    def output_condition(self) -> Predicate:
        """``O_t`` — the postcondition."""
        return self._spec.output_condition

    @property
    def input_set(self) -> frozenset[str]:
        """``N_t`` — entities appearing in ``I_t``."""
        return self._spec.input_constraint.entities()

    @property
    def update_set(self) -> frozenset[str]:
        """``U_t`` — entities the transaction may change."""
        raise NotImplementedError

    @property
    def fixed_point_set(self) -> frozenset[str]:
        """``F_t = E − U_t`` — entities the transaction never changes."""
        return frozenset(self._schema.names) - self.update_set

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError

    def apply(self, state: VersionState) -> UniqueState:
        """The transaction as a mapping ``t(v)`` (run solo on ``v``)."""
        raise NotImplementedError

    def satisfies_specification(self, state: VersionState) -> bool:
        """Does a solo run from ``state`` meet the specification?

        Vacuously true when the input constraint fails (the spec only
        promises behaviour from states satisfying ``I_t``).
        """
        if not self.input_constraint.evaluate(state):
            return True
        return self.output_condition.evaluate(self.apply(state))

    def __repr__(self) -> str:
        kind = type(self).__name__
        return f"{kind}({self._name})"


class LeafTransaction(Transaction):
    """A transaction containing only database accesses.

    Reads are implied by the effect expressions and, per the paper's
    rule that "every entity read by t must appear in I_t", validated
    against the input constraint.
    """

    def __init__(
        self,
        name: TxnName,
        schema: Schema,
        spec: Spec,
        effect: Effect,
        extra_reads: Iterable[str] = (),
    ) -> None:
        super().__init__(name, schema, spec)
        for entity in effect.written_entities | effect.read_entities:
            schema[entity]
        self._effect = effect
        self._extra_reads = frozenset(extra_reads)
        for entity in self._extra_reads:
            schema[entity]
        undeclared = self.read_set - spec.input_constraint.entities()
        if undeclared and not spec.input_constraint.is_true:
            raise TransactionError(
                f"{name}: reads {sorted(undeclared)} not mentioned in I_t "
                "(the paper requires every entity read to appear in I_t)"
            )

    @property
    def effect(self) -> Effect:
        return self._effect

    @property
    def read_set(self) -> frozenset[str]:
        """Entities actually read (effect reads plus declared reads)."""
        return self._effect.read_entities | self._extra_reads

    @property
    def update_set(self) -> frozenset[str]:
        return self._effect.written_entities

    @property
    def is_leaf(self) -> bool:
        return True

    def apply(self, state: VersionState) -> UniqueState:
        return self._effect.apply(state)


class NestedTransaction(Transaction):
    """A transaction implemented by subtransactions ``(T, P)``.

    ``P`` is a partial order on the children (by name).  Per Section
    2.2 a nested transaction performs no database accesses itself; its
    solo-run semantics (:meth:`apply`) executes the children in a
    deterministic linearization of ``P``, each child reading the state
    produced so far — the natural "run by itself" interpretation used
    when checking specifications.
    """

    def __init__(
        self,
        name: TxnName,
        schema: Schema,
        spec: Spec,
        children: Iterable[Transaction],
        order: PartialOrder[TxnName] | None = None,
    ) -> None:
        super().__init__(name, schema, spec)
        self._children: dict[TxnName, Transaction] = {}
        for child in children:
            if child.name.parent != name:
                raise NestingError(
                    f"{child.name} is not a direct child of {name}"
                )
            if child.schema != schema:
                raise NestingError(
                    f"{child.name}: child schema differs from parent's"
                )
            if child.name in self._children:
                raise NestingError(f"duplicate child {child.name}")
            self._children[child.name] = child
        if order is None:
            order = PartialOrder.empty(self._children)
        if order.elements != frozenset(self._children):
            raise NestingError(
                f"{name}: partial order elements do not match children"
            )
        self._order = order

    # -- construction helpers --------------------------------------------

    @classmethod
    def build(
        cls,
        name: TxnName,
        schema: Schema,
        spec: Spec,
        children: Iterable[Transaction],
        order_pairs: Iterable[tuple[TxnName, TxnName]] = (),
    ) -> "NestedTransaction":
        """Build from children plus explicit order pairs."""
        kids = list(children)
        order = PartialOrder(
            [child.name for child in kids], order_pairs
        )
        return cls(name, schema, spec, kids, order)

    # -- structure ---------------------------------------------------------

    @property
    def children(self) -> tuple[Transaction, ...]:
        """Subtransactions in name order."""
        return tuple(
            self._children[key] for key in sorted(self._children)
        )

    @property
    def child_names(self) -> tuple[TxnName, ...]:
        return tuple(sorted(self._children))

    @property
    def order(self) -> PartialOrder[TxnName]:
        """``P`` — the partial order on subtransactions."""
        return self._order

    def child(self, name: TxnName) -> Transaction:
        try:
            return self._children[name]
        except KeyError:
            raise NestingError(
                f"{name} is not a child of {self._name}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._children

    def __len__(self) -> int:
        return len(self._children)

    def descendants(self) -> Iterator[Transaction]:
        """All transactions strictly below this one, preorder."""
        for child in self.children:
            yield child
            if isinstance(child, NestedTransaction):
                yield from child.descendants()

    def leaves(self) -> Iterator[LeafTransaction]:
        """All leaf transactions in the subtree."""
        for node in self.descendants():
            if isinstance(node, LeafTransaction):
                yield node

    @property
    def update_set(self) -> frozenset[str]:
        names: set[str] = set()
        for child in self._children.values():
            names |= child.update_set
        return frozenset(names)

    @property
    def object_set(self) -> frozenset[frozenset[str]]:
        """The paper's object set: union of children's output objects."""
        objects: set[frozenset[str]] = set()
        for child in self._children.values():
            objects |= set(child.output_condition.objects())
        return frozenset(objects)

    @property
    def is_leaf(self) -> bool:
        return False

    def apply(self, state: VersionState) -> UniqueState:
        """Solo-run semantics: children applied serially along ``P``."""
        current = state
        result: UniqueState | None = None
        for child_name in self._order.topological_order():
            result = self._children[child_name].apply(current)
            current = VersionState(result.schema, result.as_dict())
        if result is None:  # no children: identity mapping
            return UniqueState(state.schema, state.as_dict())
        return result
