"""Deciding and constructing correct executions (Sections 3.1–3.2).

Two problems from the paper live here:

* **checking** — given a complete execution ``(R, X)``, is it valid,
  parent-based, and correct?  (Polynomial; see
  :func:`check_execution`.)
* **searching** — given a transaction and an initial state, does a
  correct ``(R, X)`` *exist*?  Theorem 1 proves this NP-complete, and
  :func:`find_correct_execution` is the honest exponential search:
  it enumerates linearizations of the children consistent with ``P``
  and, along each, backtracks over version assignments satisfying each
  child's input constraint.

The search maintains a *version pool*: for each entity, the values
available so far (the parent's input value plus the outputs of the
children already placed), with the authoring children recorded so the
resulting ``R`` edges witness parent-basedness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from .execution import Execution, ParentSource, source_provides
from .naming import TxnName
from .states import DatabaseState, UniqueState, VersionState
from .transactions import NestedTransaction


@dataclass(frozen=True)
class CheckReport:
    """Outcome of checking one execution against the model's rules."""

    valid: bool
    parent_based: bool
    correct: bool
    reasons: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """All three properties hold."""
        return self.valid and self.parent_based and self.correct


def check_execution(
    execution: Execution, parent_input: ParentSource
) -> CheckReport:
    """Check validity, parent-basedness, and correctness in one pass.

    This is the polynomial *verification* side of Theorem 1: a given
    ``(R, X)`` certificate is easy to check even though finding one is
    NP-complete.
    """
    reasons: list[str] = []
    valid = execution.is_valid()
    if not valid:
        reasons.append("R reverses a pair of P+ (invalid execution)")
    violations = execution.parent_based_violations(parent_input)
    parent_based = not violations
    for child, entity in violations:
        reasons.append(
            f"X({child})({entity}) comes from neither the parent "
            "nor an R-predecessor"
        )
    final_bad = execution.final_state_violations(parent_input)
    if final_bad:
        parent_based = False
        reasons.append(
            f"final state entities {sorted(final_bad)} have no provenance"
        )
    correct = execution.is_correct()
    reasons.extend(execution.incorrectness_witnesses())
    return CheckReport(valid, parent_based, correct, tuple(reasons))


class _VersionPool:
    """Per-entity available values with their authors, during search.

    The pool is seeded from the parent source: a single version state
    for nested executions, or every retained initial version for the
    root (the pseudo-transaction ``t_0`` authors them all).
    """

    def __init__(self, source: ParentSource) -> None:
        # entity -> value -> list of authoring children (None = parent)
        self._authors: dict[str, dict[int, list[TxnName | None]]] = {}
        if isinstance(source, DatabaseState):
            for entity in source.schema.names:
                self._authors[entity] = {
                    value: [None] for value in source.versions_of(entity)
                }
        else:
            for entity in source:
                self._authors[entity] = {source[entity]: [None]}

    def candidates(self, entity: str) -> list[int]:
        return sorted(self._authors[entity])

    def authors_of(self, entity: str, value: int) -> list[TxnName | None]:
        return list(self._authors[entity].get(value, ()))

    def add_result(self, child: TxnName, result: UniqueState) -> None:
        for entity in result:
            self._authors[entity].setdefault(result[entity], []).append(
                child
            )

    def remove_result(self, child: TxnName, result: UniqueState) -> None:
        for entity in result:
            authors = self._authors[entity][result[entity]]
            authors.remove(child)
            if not authors:
                del self._authors[entity][result[entity]]

    def candidate_map(
        self, entities: Sequence[str]
    ) -> dict[str, list[int]]:
        return {entity: self.candidates(entity) for entity in entities}


def _reads_from_edges(
    child: TxnName,
    state: VersionState,
    source: ParentSource,
    pool: _VersionPool,
) -> set[tuple[TxnName, TxnName]]:
    """R edges witnessing that ``child``'s state is parent-based."""
    edges: set[tuple[TxnName, TxnName]] = set()
    for entity in state:
        value = state[entity]
        if source_provides(source, entity, value):
            continue
        authors = [
            author
            for author in pool.authors_of(entity, value)
            if author is not None
        ]
        # The pool only ever offers parent or prior-child values, so a
        # non-parent value always has at least one child author.
        edges.add((authors[0], child))
    return edges


def iter_correct_executions(
    transaction: NestedTransaction,
    initial: DatabaseState,
    parent_input: VersionState | None = None,
) -> Iterator[Execution]:
    """Enumerate correct, parent-based executions (exponential search).

    For every linearization of the children consistent with ``P``, the
    search assigns each child a version state drawn from the current
    version pool and satisfying its input constraint, backtracking over
    the (possibly many) satisfying assignments.  After placing all
    children it looks for a final state satisfying ``O_t``.

    When ``parent_input`` is ``None`` the transaction is treated as the
    **root**: children may read any retained version of ``initial``
    (the pseudo-transaction ``t_0`` is everyone's R-predecessor).  Pass
    an explicit parent version state when embedding this execution
    under a larger one.
    """
    schema = transaction.schema
    source: ParentSource
    if parent_input is None:
        if not transaction.input_constraint.is_satisfiable_over(initial):
            return
        source = initial
    else:
        source = parent_input

    def default_value(name: str) -> int:
        if isinstance(source, DatabaseState):
            return min(source.versions_of(name))
        return source[name]

    children = list(transaction.child_names)
    entity_names = list(schema.names)

    for linearization in transaction.order.linearizations():
        pool = _VersionPool(source)
        assignment: dict[TxnName, VersionState] = {}
        edges: dict[TxnName, set[tuple[TxnName, TxnName]]] = {}
        results: dict[TxnName, UniqueState] = {}

        def place(index: int) -> Iterator[Execution]:
            if index == len(children):
                yield from finish()
                return
            child_name = linearization[index]
            child = transaction.child(child_name)
            relevant = sorted(child.input_constraint.entities())
            candidates = pool.candidate_map(relevant)
            for partial in child.input_constraint.iter_satisfying_assignments(
                candidates
            ):
                # Entities the input constraint does not mention read
                # a parent-provided value, which is always available
                # and trivially parent-based.
                values = {
                    name: default_value(name) for name in entity_names
                }
                values.update(partial)
                state = VersionState(schema, values)
                assignment[child_name] = state
                edges[child_name] = _reads_from_edges(
                    child_name, state, source, pool
                )
                result = child.apply(state)
                results[child_name] = result
                pool.add_result(child_name, result)
                yield from place(index + 1)
                pool.remove_result(child_name, result)
                del results[child_name]
                del edges[child_name]
                del assignment[child_name]

        def finish() -> Iterator[Execution]:
            output_entities = sorted(
                transaction.output_condition.entities()
            )
            final_partial = (
                transaction.output_condition.find_satisfying_assignment(
                    pool.candidate_map(output_entities)
                )
            )
            if final_partial is None:
                return
            final_values = {
                name: default_value(name) for name in entity_names
            }
            final_values.update(final_partial)
            final_state = VersionState(schema, final_values)
            reads_from: set[tuple[TxnName, TxnName]] = set()
            for edge_set in edges.values():
                reads_from |= edge_set
            yield Execution(
                transaction,
                initial,
                reads_from,
                dict(assignment),
                final_state,
            )

        yield from place(0)


def find_correct_execution(
    transaction: NestedTransaction,
    initial: DatabaseState,
    parent_input: VersionState | None = None,
) -> Execution | None:
    """First correct execution found, or ``None`` (Theorem 1 search)."""
    return next(
        iter_correct_executions(transaction, initial, parent_input), None
    )


def has_correct_execution(
    transaction: NestedTransaction,
    initial: DatabaseState,
    parent_input: VersionState | None = None,
) -> bool:
    """Decision form of the Theorem-1 problem."""
    return (
        find_correct_execution(transaction, initial, parent_input)
        is not None
    )
