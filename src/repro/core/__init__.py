"""The paper's formal model (Section 3) — the primary contribution.

Public surface: entities and schemas, the three state notions, CNF
predicates with objects, hierarchical names, partial orders, nested
transactions with specifications, executions ``(R, X)``, correctness
checking/searching, and the NP-completeness constructions.
"""

from .complexity import (
    ExecutionCorrectnessInstance,
    lemma1_instance,
    theorem1_instance,
    verify_certificate,
)
from .correctness import (
    CheckReport,
    check_execution,
    find_correct_execution,
    has_correct_execution,
    iter_correct_executions,
)
from .entities import Domain, Entity, Schema
from .execution import Execution, ParentSource, source_provides
from .naming import ROOT_NAME, TxnName
from .orders import PartialOrder
from .predicates import Atom, Clause, Predicate, Term, parse
from .states import DatabaseState, UniqueState, VersionState
from .transactions import (
    BinOp,
    Const,
    Effect,
    Expr,
    LeafTransaction,
    NestedTransaction,
    Ref,
    Spec,
    Transaction,
    expr,
    increment,
)

__all__ = [
    "Atom",
    "BinOp",
    "CheckReport",
    "Clause",
    "Const",
    "DatabaseState",
    "Domain",
    "Effect",
    "Entity",
    "Execution",
    "ExecutionCorrectnessInstance",
    "Expr",
    "LeafTransaction",
    "NestedTransaction",
    "ParentSource",
    "PartialOrder",
    "Predicate",
    "ROOT_NAME",
    "Ref",
    "Schema",
    "Spec",
    "Term",
    "Transaction",
    "TxnName",
    "UniqueState",
    "VersionState",
    "check_execution",
    "expr",
    "find_correct_execution",
    "has_correct_execution",
    "increment",
    "iter_correct_executions",
    "lemma1_instance",
    "parse",
    "source_provides",
    "theorem1_instance",
    "verify_certificate",
]
