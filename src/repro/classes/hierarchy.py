"""The class lattice and the Figure-2 region classifier (Section 4.3).

:func:`classify` computes one schedule's membership in every class the
paper discusses, given the consistency constraint's conjunct structure;
:func:`figure2_region` maps a membership vector to the numbered region
of Figure 2; :func:`containment_violations` checks the lattice's
inclusion laws (used as a property test and by the census).

Inclusions enforced (all from Section 4 or classical theory):

* ``CSR ⊆ SR ⊆ MVSR`` and ``CSR ⊆ MVCSR ⊆ MVSR``
* ``CSR ⊆ PWCSR ⊆ CPC`` and ``SR ⊆ PWSR ⊆ PC`` (projections of a
  serializable schedule are serializable)
* ``MVCSR ⊆ CPC``, ``MVSR ⊆ PC``, ``PWCSR ⊆ PWSR``, ``CPC ⊆ PC``

**The staged fast path.**  By default :func:`classify` evaluates the
four polynomial tests first (CSR, MVCSR, PWCSR, CPC — all graph
acyclicity checks) and then uses the lattice in both directions to
avoid the exponential searches wherever a cheap verdict already
decides them: ``CSR`` alone proves membership in all eight classes,
``MVCSR ⇒ MVSR``, ``¬MVSR ⇒ ¬SR``, ``SR ∨ PWCSR ⇒ PWSR``, and
``MVSR ∨ CPC ∨ PWSR ⇒ PC``.  Pass ``exact=True`` to run every tester
unconditionally — the mode the containment property tests use, since
the fast path satisfies the inclusion laws *by construction*.  Both
modes return identical vectors; the differential tests in
``tests/classes/test_fastpath.py`` enforce that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..core.predicates import Predicate
from ..obs.trace import NULL_TRACER, Tracer
from ..schedules.schedule import Schedule
from .conflict import is_conflict_serializable
from .multiversion import (
    is_mv_conflict_serializable,
    is_mv_view_serializable,
)
from .predicate_correct import (
    is_conflict_predicate_correct,
    is_predicate_correct,
)
from .predicatewise import (
    is_predicatewise_conflict_serializable,
    is_predicatewise_serializable,
    normalize_objects,
)
from .view import is_view_serializable

Constraint = "Predicate | Iterable[Iterable[str]]"


@dataclass(frozen=True)
class ClassMembership:
    """One schedule's membership in every Section-4 class."""

    csr: bool
    vsr: bool
    mvcsr: bool
    mvsr: bool
    pwcsr: bool
    pwsr: bool
    cpc: bool
    pc: bool

    def as_dict(self) -> dict[str, bool]:
        return {
            "CSR": self.csr,
            "SR": self.vsr,
            "MVCSR": self.mvcsr,
            "MVSR": self.mvsr,
            "PWCSR": self.pwcsr,
            "PWSR": self.pwsr,
            "CPC": self.cpc,
            "PC": self.pc,
        }

    def member_classes(self) -> tuple[str, ...]:
        return tuple(
            name for name, member in self.as_dict().items() if member
        )

    def __str__(self) -> str:
        body = ", ".join(
            f"{name}={'✓' if member else '✗'}"
            for name, member in self.as_dict().items()
        )
        return f"ClassMembership({body})"


def classify(
    schedule: Schedule,
    constraint: "Predicate | Iterable[Iterable[str]] | None" = None,
    tracer: Tracer = NULL_TRACER,
    *,
    exact: bool = False,
) -> ClassMembership:
    """Membership of ``schedule`` in every class of Section 4.

    ``constraint`` supplies the conjunct structure for the
    predicate-wise classes; ``None`` means a single conjunct covering
    every entity the schedule touches (under which the predicate-wise
    classes collapse onto their base classes).

    By default the evaluation is *staged*: the polynomial tests run
    first and the Section-4 lattice fills in every membership they
    already decide, so the NP-complete searches (SR, MVSR, PWSR, PC)
    only run when no cheap verdict settles them.  ``exact=True``
    evaluates all eight testers unconditionally — same vector, no
    short-circuiting — which is what the containment property tests
    need (the fast path satisfies the inclusion laws by construction,
    so only exact mode can falsify a broken tester).

    With a recording ``tracer``, each class test that actually *runs*
    is wrapped in a ``class.check`` span (attrs: the class name and
    verdict) so census-style sweeps can see where classification time
    goes; lattice-derived memberships produce no span.
    """
    if constraint is None:
        objects: "Predicate | Iterable[Iterable[str]]" = [
            set(schedule.entities)
        ]
    else:
        objects = constraint
    normalized = normalize_objects(objects)
    label = f"schedule:{len(schedule)}ops"

    def check(name: str, test: "Callable[[], bool]") -> bool:
        if not tracer.enabled:
            return test()
        span = tracer.start("class.check", label, cls=name)
        member = test()
        tracer.end(span, member=member)
        return member

    if exact:
        return ClassMembership(
            csr=check(
                "CSR", lambda: is_conflict_serializable(schedule)
            ),
            vsr=check("SR", lambda: is_view_serializable(schedule)),
            mvcsr=check(
                "MVCSR", lambda: is_mv_conflict_serializable(schedule)
            ),
            mvsr=check(
                "MVSR", lambda: is_mv_view_serializable(schedule)
            ),
            pwcsr=check(
                "PWCSR",
                lambda: is_predicatewise_conflict_serializable(
                    schedule, normalized
                ),
            ),
            pwsr=check(
                "PWSR",
                lambda: is_predicatewise_serializable(
                    schedule, normalized
                ),
            ),
            cpc=check(
                "CPC",
                lambda: is_conflict_predicate_correct(
                    schedule, normalized
                ),
            ),
            pc=check(
                "PC", lambda: is_predicate_correct(schedule, normalized)
            ),
        )

    # Stage 1 — polynomial tests.  CSR ⊆ every other class, so a CSR
    # verdict classifies the schedule completely on its own.
    csr = check("CSR", lambda: is_conflict_serializable(schedule))
    if csr:
        return ClassMembership(
            csr=True,
            vsr=True,
            mvcsr=True,
            mvsr=True,
            pwcsr=True,
            pwsr=True,
            cpc=True,
            pc=True,
        )
    mvcsr = check(
        "MVCSR", lambda: is_mv_conflict_serializable(schedule)
    )
    pwcsr = check(
        "PWCSR",
        lambda: is_predicatewise_conflict_serializable(
            schedule, normalized
        ),
    )
    cpc = check(
        "CPC",
        lambda: is_conflict_predicate_correct(schedule, normalized),
    )

    # Stage 2 — exponential searches, each skipped when the lattice
    # already decides it.  MVSR runs before SR so ¬MVSR ⇒ ¬SR can
    # spare the SR search; PWSR/PC run last, feeding on everything.
    mvsr = mvcsr or check(
        "MVSR", lambda: is_mv_view_serializable(schedule)
    )
    vsr = mvsr and check(
        "SR", lambda: is_view_serializable(schedule)
    )
    pwsr = (
        vsr
        or pwcsr
        or check(
            "PWSR",
            lambda: is_predicatewise_serializable(schedule, normalized),
        )
    )
    pc = (
        mvsr
        or cpc
        or pwsr
        or check(
            "PC", lambda: is_predicate_correct(schedule, normalized)
        )
    )
    return ClassMembership(
        csr=csr,
        vsr=vsr,
        mvcsr=mvcsr,
        mvsr=mvsr,
        pwcsr=pwcsr,
        pwsr=pwsr,
        cpc=cpc,
        pc=pc,
    )


_CONTAINMENTS: tuple[tuple[str, str], ...] = (
    ("csr", "vsr"),
    ("vsr", "mvsr"),
    ("csr", "mvcsr"),
    ("mvcsr", "mvsr"),
    ("csr", "pwcsr"),
    ("pwcsr", "cpc"),
    ("vsr", "pwsr"),
    ("pwsr", "pc"),
    ("mvcsr", "cpc"),
    ("mvsr", "pc"),
    ("pwcsr", "pwsr"),
    ("cpc", "pc"),
)


def containment_violations(
    membership: ClassMembership,
) -> list[tuple[str, str]]:
    """Inclusion laws violated by a membership vector (should be none).

    Returns pairs ``(smaller, larger)`` where the schedule is in the
    smaller class but not the larger — impossible if the testers are
    correct, which is exactly what the property tests assert.
    """
    violations: list[tuple[str, str]] = []
    values = {
        "csr": membership.csr,
        "vsr": membership.vsr,
        "mvcsr": membership.mvcsr,
        "mvsr": membership.mvsr,
        "pwcsr": membership.pwcsr,
        "pwsr": membership.pwsr,
        "cpc": membership.cpc,
        "pc": membership.pc,
    }
    for smaller, larger in _CONTAINMENTS:
        if values[smaller] and not values[larger]:
            violations.append((smaller, larger))
    return violations


def figure2_region(membership: ClassMembership) -> int:
    """The Figure-2 region (1–9) a membership vector falls in.

    The figure partitions schedules by {CSR, SR, MVCSR, PWCSR, CPC}
    membership; precedence below makes the nine regions total and
    disjoint:

    9. CSR
    8. (SR ∩ MVCSR ∩ PWCSR) − CSR
    5. (SR ∩ MVCSR) − PWCSR
    6. SR − MVCSR
    4. (PWCSR ∩ MVCSR) − SR
    3. PWCSR − (MVCSR ∪ SR)
    7. MVCSR − (PWCSR ∪ SR)
    2. CPC − (PWCSR ∪ MVCSR ∪ SR)
    1. outside CPC
    """
    if membership.csr:
        return 9
    if membership.vsr and membership.mvcsr and membership.pwcsr:
        return 8
    if membership.vsr and membership.mvcsr:
        return 5
    if membership.vsr:
        return 6
    if membership.pwcsr and membership.mvcsr:
        return 4
    if membership.pwcsr:
        return 3
    if membership.mvcsr:
        return 7
    if membership.cpc:
        return 2
    return 1


REGION_LABELS: dict[int, str] = {
    1: "non-CPC",
    2: "CPC − (PWCSR ∪ MVCSR ∪ SR)",
    3: "PWCSR − (MVCSR ∪ SR)",
    4: "(PWCSR ∩ MVCSR) − SR",
    5: "(SR ∩ MVCSR) − PWCSR",
    6: "SR − MVCSR",
    7: "MVCSR − (PWCSR ∪ SR)",
    8: "(SR ∩ MVCSR ∩ PWCSR) − CSR",
    9: "CSR",
}
"""Labels matching :func:`figure2_region`'s precedence exactly.

These are *not* verbatim the paper's captions: the paper also draws
≺CSR, which :func:`classify` does not compute, and its shorthand for
regions 5/7/8 leaves the by-precedence exclusions implicit.  Census
reports key on these labels, so each one spells out precisely the set
its region number denotes.
"""
