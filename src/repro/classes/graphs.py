"""Small directed-graph helpers shared by the class testers.

Every polynomial tester in Section 4 reduces to acyclicity of some
transaction-level precedence graph; this module keeps the graph code in
one place (adjacency as ``dict[str, set[str]]``).
"""

from __future__ import annotations

from typing import Iterator, Mapping


def has_cycle(adjacency: Mapping[str, set[str]]) -> bool:
    """Does the directed graph contain a cycle?  Iterative DFS."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in adjacency}
    for root in adjacency:
        if color[root] != WHITE:
            continue
        stack: list[tuple[str, Iterator[str]]] = [
            (root, iter(sorted(adjacency[root])))
        ]
        color[root] = GRAY
        while stack:
            node, neighbours = stack[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in color:
                    continue
                if color[neighbour] == GRAY:
                    return True
                if color[neighbour] == WHITE:
                    color[neighbour] = GRAY
                    stack.append(
                        (neighbour, iter(sorted(adjacency[neighbour])))
                    )
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return False


def topological_order(
    adjacency: Mapping[str, set[str]]
) -> list[str] | None:
    """A topological order, or ``None`` if the graph is cyclic."""
    in_degree = {node: 0 for node in adjacency}
    for node in adjacency:
        for neighbour in adjacency[node]:
            if neighbour in in_degree:
                in_degree[neighbour] += 1
    ready = sorted(
        node for node, degree in in_degree.items() if degree == 0
    )
    result: list[str] = []
    while ready:
        node = ready.pop(0)
        result.append(node)
        changed = False
        for neighbour in sorted(adjacency[node]):
            if neighbour not in in_degree:
                continue
            in_degree[neighbour] -= 1
            if in_degree[neighbour] == 0:
                ready.append(neighbour)
                changed = True
        if changed:
            ready.sort()
    if len(result) != len(adjacency):
        return None
    return result
