"""The paper's example schedules (Section 4), machine-checkable.

Every worked example from the paper is encoded as a
:class:`PaperExample`: the schedule (exact interleaving), the
consistency constraint's conjunct structure, and the claimed Figure-2
region / class memberships.  The test suite and the Figure-2 benchmark
verify each claim with the Section-4 testers.

Two sources are lightly reconstructed, and say so in their notes:

* the paper's layout figures give each transaction's row but leave the
  exact column alignment to the reader — we fix interleavings that
  realize the paper's stated reads-from facts;
* the region-6 and region-8 examples are garbled in the available
  scan; region 6 keeps the paper's transaction programs with a
  verified interleaving, and region 8 is a constructed schedule with
  exactly the region's defining membership vector
  ``(SR ∩ MVCSR ∩ PWCSR) − CSR``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..schedules.schedule import Schedule
from .hierarchy import ClassMembership, classify, figure2_region


@dataclass(frozen=True)
class PaperExample:
    """One example schedule with its claims from the paper."""

    name: str
    schedule: Schedule
    objects: tuple[frozenset[str], ...]
    claimed_region: int | None
    claims: dict[str, bool]
    notes: str

    def membership(self) -> ClassMembership:
        """Actual membership, computed with the Section-4 testers."""
        return classify(self.schedule, self.objects)

    def region(self) -> int:
        return figure2_region(self.membership())

    def check(self) -> list[str]:
        """Claims the computed membership fails to satisfy (empty = ok)."""
        failures: list[str] = []
        actual = self.membership().as_dict()
        for class_name, expected in self.claims.items():
            if actual[class_name] != expected:
                failures.append(
                    f"{self.name}: expected {class_name}="
                    f"{expected}, computed {actual[class_name]}"
                )
        if (
            self.claimed_region is not None
            and self.region() != self.claimed_region
        ):
            failures.append(
                f"{self.name}: expected region {self.claimed_region}, "
                f"computed {self.region()}"
            )
        return failures


def _objects(*groups: str) -> tuple[frozenset[str], ...]:
    return tuple(frozenset(group.split()) for group in groups)


EXAMPLE_1 = PaperExample(
    name="Example 1 (§4.2, MVSR − SR)",
    schedule=Schedule.parse(
        "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)"
    ),
    objects=_objects("x y"),
    claimed_region=None,
    claims={"SR": False, "MVSR": True, "CSR": False},
    notes=(
        "t1 reads y from t2 and t2 reads x from t1, so neither serial "
        "order is view-equivalent; the version function can hand t2 the "
        "initial state and t1 the state after t2, giving MVSR."
    ),
)

EXAMPLE_2 = PaperExample(
    name="Example 2 (§4.2, PWSR − SR)",
    schedule=Schedule.parse(
        "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)"
    ),
    objects=_objects("x", "y"),
    claimed_region=None,
    claims={"SR": False, "PWSR": True, "PWCSR": True},
    notes=(
        "The same schedule as Example 1 with x and y in different "
        "conjuncts; the projections (Examples 3.a/3.b) are serial."
    ),
)

REGION_1 = PaperExample(
    name="Figure 2 region 1 (non-CPC)",
    schedule=Schedule.parse("r1(x) r2(x) w1(x) w2(x)"),
    objects=_objects("x"),
    claimed_region=1,
    claims={"CPC": False, "PC": False, "MVSR": False, "SR": False},
    notes=(
        "In any serial order one transaction must read the other's "
        "write of x, but both read before either writes — no version "
        "function helps, for any conjunct decomposition."
    ),
)

REGION_2 = PaperExample(
    name="Figure 2 region 2 (CPC only)",
    schedule=Schedule.parse(
        "r1(y) r2(x) w1(x) w2(x) w2(y) w1(y)"
    ),
    objects=_objects("x", "y"),
    claimed_region=2,
    claims={
        "CPC": True,
        "PWCSR": False,
        "MVCSR": False,
        "SR": False,
        "MVSR": False,
    },
    notes=(
        "Per-conjunct read-before-write graphs are acyclic (t2→t1 on x, "
        "t1→t2 on y live in different graphs), but every stronger "
        "tester sees the combined cycle."
    ),
)

REGION_3 = PaperExample(
    name="Figure 2 region 3 (PWCSR only)",
    schedule=Schedule.parse(
        "r1(x) w1(x) r2(x) w2(x) r2(y) w2(y) r1(y) w1(y)"
    ),
    objects=_objects("x", "y"),
    claimed_region=3,
    claims={
        "PWCSR": True,
        "MVCSR": False,
        "SR": False,
        "CPC": True,
    },
    notes=(
        "The x-projection serializes t1 before t2 and the y-projection "
        "t2 before t1; the serialization orders per conjunct need not "
        "agree — exactly the PWSR selling point."
    ),
)

REGION_4 = PaperExample(
    name="Figure 2 region 4 ((PWCSR ∩ MVCSR) − SR)",
    schedule=Schedule.parse(
        "r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)"
    ),
    objects=_objects("x", "y"),
    claimed_region=4,
    claims={"PWCSR": True, "MVCSR": True, "SR": False, "MVSR": True},
    notes=(
        "Example 1's schedule with x and y in different conjuncts — "
        "the paper notes the MVSR/PWSR arguments carry over to the "
        "conflict versions."
    ),
)

REGION_5 = PaperExample(
    name="Figure 2 region 5 ((SR ∩ MVCSR) − PWCSR)",
    schedule=Schedule.parse("r1(x) w2(x) w1(x) w3(x)"),
    objects=_objects("x"),
    claimed_region=5,
    claims={"SR": True, "CSR": False, "PWCSR": False, "MVCSR": True},
    notes=(
        "View-equivalent to t1,t2,t3 thanks to blind writes, but not "
        "conflict serializable, and no non-empty predicate decomposes "
        "a single-entity schedule."
    ),
)

REGION_6 = PaperExample(
    name="Figure 2 region 6 (SR − MVCSR)",
    schedule=Schedule.parse(
        "r1(x) w2(y) r2(y) w1(y) w2(x) w2(y) r3(x) w3(x) w3(y)"
    ),
    objects=_objects("x y"),
    claimed_region=6,
    claims={"SR": True, "MVCSR": False, "CSR": False},
    notes=(
        "View-equivalent to t1,t2,t3; the read-before-write cycle "
        "(t1 reads x before t2 writes it, t2 reads y before t1 writes "
        "it) keeps it out of MVCSR.  Interleaving reconstructed from "
        "the paper's programs (the scan's column alignment is "
        "unreadable; the paper attributes the blocking conflict to "
        "t1/t3 where this interleaving realizes it between t1/t2 — the "
        "membership vector is the region's)."
    ),
)

REGION_7 = PaperExample(
    name="Figure 2 region 7 (MVCSR − (PWCSR ∪ SR))",
    schedule=Schedule.parse("r1(x) w2(x) w1(x)"),
    objects=_objects("x"),
    claimed_region=7,
    claims={"MVCSR": True, "PWCSR": False, "SR": False, "MVSR": True},
    notes=(
        "Unserializable for every non-empty predicate (t2 cannot move "
        "past t1 by swaps), but if the final read takes t2's version "
        "the schedule is multiversion-equivalent to t1,t2."
    ),
)

REGION_8 = PaperExample(
    name="Figure 2 region 8 ((SR ∩ MVCSR) − CSR)",
    schedule=Schedule.parse(
        "r1(x) w2(y) w1(x) w1(y) w2(x) w3(y)"
    ),
    objects=_objects("x", "y"),
    claimed_region=8,
    claims={
        "SR": True,
        "MVCSR": True,
        "PWCSR": True,
        "CSR": False,
    },
    notes=(
        "Constructed replacement (the scan's example is garbled, and "
        "its literal programs admit no interleaving realizing the "
        "region): view-equivalent to t1,t2,t3, the only read is served "
        "compatibly with multiversioning, each conjunct's conflicts are "
        "one-directional, yet the cross-conjunct ww/rw cycle t1⇄t2 "
        "defeats plain conflict serializability."
    ),
)

REGION_9 = PaperExample(
    name="Figure 2 region 9 (CSR)",
    schedule=Schedule.parse(
        "r1(x) w1(x) r2(x) r1(y) w1(y) r2(y) w2(y)"
    ),
    objects=_objects("x y"),
    claimed_region=9,
    claims={"CSR": True, "SR": True, "MVCSR": True, "CPC": True},
    notes="All conflicts resolve t1 before t2 on both x and y.",
)

FIGURE2_EXAMPLES: tuple[PaperExample, ...] = (
    REGION_1,
    REGION_2,
    REGION_3,
    REGION_4,
    REGION_5,
    REGION_6,
    REGION_7,
    REGION_8,
    REGION_9,
)

ALL_EXAMPLES: tuple[PaperExample, ...] = (
    EXAMPLE_1,
    EXAMPLE_2,
) + FIGURE2_EXAMPLES


def verify_all() -> dict[str, list[str]]:
    """Check every example's claims; maps name → failures (all empty
    when the reproduction is faithful)."""
    return {example.name: example.check() for example in ALL_EXAMPLES}
