"""Graphviz (DOT) export of the theory's graphs.

Renders the objects the paper reasons about — conflict graphs,
read-before-write (multiversion) graphs, the per-conjunct CPC graphs,
and nested transaction trees — as DOT source for inspection with any
Graphviz viewer.  Pure string generation; no external dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..core.predicates import Predicate
from ..core.transactions import NestedTransaction, Transaction
from ..schedules.schedule import Schedule
from .conflict import conflict_graph
from .multiversion import mv_conflict_graph
from .predicate_correct import cpc_graphs


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def _digraph(
    name: str,
    adjacency: Mapping[str, set[str]],
    label: str | None = None,
) -> str:
    lines = [f"digraph {_quote(name)} {{"]
    if label:
        lines.append(f"  label={_quote(label)};")
        lines.append("  labelloc=t;")
    lines.append("  node [shape=circle];")
    for node in sorted(adjacency):
        lines.append(f"  {_quote('t' + node)};")
    for node in sorted(adjacency):
        for target in sorted(adjacency[node]):
            lines.append(
                f"  {_quote('t' + node)} -> {_quote('t' + target)};"
            )
    lines.append("}")
    return "\n".join(lines)


def conflict_graph_dot(schedule: Schedule) -> str:
    """The classical precedence graph as DOT."""
    return _digraph(
        "conflict_graph",
        conflict_graph(schedule),
        label=f"conflict graph of {schedule}",
    )


def mv_conflict_graph_dot(schedule: Schedule) -> str:
    """The read-before-write (MVCSR) graph as DOT."""
    return _digraph(
        "mv_conflict_graph",
        mv_conflict_graph(schedule),
        label=f"read-before-write graph of {schedule}",
    )


def cpc_graphs_dot(
    schedule: Schedule,
    constraint: "Predicate | Iterable[Iterable[str]]",
) -> str:
    """The per-conjunct CPC graphs as one DOT file with clusters."""
    graphs = cpc_graphs(schedule, constraint)
    lines = ['digraph "cpc_graphs" {', "  node [shape=circle];"]
    for index, (obj, adjacency) in enumerate(
        sorted(graphs.items(), key=lambda item: sorted(item[0]))
    ):
        obj_label = "{" + ", ".join(sorted(obj)) + "}"
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote('conjunct ' + obj_label)};")
        for node in sorted(adjacency):
            lines.append(f"    {_quote(f'c{index}_t{node}')} "
                         f"[label={_quote('t' + node)}];")
        for node in sorted(adjacency):
            for target in sorted(adjacency[node]):
                lines.append(
                    f"    {_quote(f'c{index}_t{node}')} -> "
                    f"{_quote(f'c{index}_t{target}')};"
                )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def transaction_tree_dot(root: Transaction) -> str:
    """A nested transaction tree (Figure 1) as DOT."""
    lines = ['digraph "transaction_tree" {', "  node [shape=box];"]

    def walk(node: Transaction) -> None:
        shape = "ellipse" if node.is_leaf else "box"
        lines.append(
            f"  {_quote(str(node.name))} [shape={shape}];"
        )
        if isinstance(node, NestedTransaction):
            for child in node.children:
                lines.append(
                    f"  {_quote(str(node.name))} -> "
                    f"{_quote(str(child.name))};"
                )
                walk(child)
            for before, after in node.order.pairs:
                lines.append(
                    f"  {_quote(str(before))} -> {_quote(str(after))} "
                    "[style=dashed, constraint=false, "
                    'label="P"];'
                )

    walk(root)
    lines.append("}")
    return "\n".join(lines)
