"""Multiversion serializability — MVSR and MVCSR (Sections 4.2, 4.3).

**MVSR.**  With multiple versions, a read may be served *any* retained
version, so a mono-version schedule belongs to MVSR when some serial
order π can be realized by a version function: every read of ``e`` by
``t`` is served the version the serial schedule π would give it — the
last π-predecessor writer of ``e`` (or ``t``'s own latest earlier
write, or the initial version) — **provided that version already exists
when the read occurs**.  The final state needs no check: all versions
are retained, so the final read simply selects the serial order's last
version (the paper's region-7 note — "if the final read is of the
version created by t₂ …" — relies on exactly this).

Recognition is NP-complete, but the search is pruned backtracking over
serial orders, not a sweep of all ``n!`` permutations: a read's
required version depends only on the transactions placed *before* its
reader, so every prefix whose most recent writer cannot serve some
read is cut immediately.  :func:`brute_force_mv_view_serialization_order`
keeps the all-permutations sweep as the differential-testing oracle.

**MVCSR.**  The paper (following [Papadimitriou 1986]) notes the only
remaining conflicts under multiple versions are *reads before writes*
on the same item.  The test is acyclicity of the read-before-write
graph; a transaction's reads of its own later-written entities impose
no inter-transaction edge.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterator

from ..schedules.schedule import Schedule
from .graphs import has_cycle, topological_order


def mv_conflict_graph(schedule: Schedule) -> dict[str, set[str]]:
    """Read-before-write graph: edge ``A → B`` when ``A`` reads ``e``
    and ``B`` later writes ``e`` (``A ≠ B``).  Memoized per schedule."""

    def build() -> dict[str, set[str]]:
        adjacency: dict[str, set[str]] = {
            txn: set() for txn in schedule.transactions
        }
        ops = schedule.operations
        for i, first in enumerate(ops):
            if not first.is_read:
                continue
            for j in range(i + 1, len(ops)):
                second = ops[j]
                if (
                    second.is_write
                    and second.entity == first.entity
                    and second.txn != first.txn
                ):
                    adjacency[first.txn].add(second.txn)
        return adjacency

    return schedule.memo("mv_conflict_graph", build)


def is_mv_conflict_serializable(schedule: Schedule) -> bool:
    """MVCSR membership: the read-before-write graph is acyclic."""
    return not has_cycle(mv_conflict_graph(schedule))


def mv_conflict_serialization_order(
    schedule: Schedule,
) -> tuple[str, ...] | None:
    """A serial order witnessing MVCSR membership, or ``None``."""
    order = topological_order(mv_conflict_graph(schedule))
    if order is None:
        return None
    return tuple(order)


def _serial_read_ok(
    schedule: Schedule,
    order_position: dict[str, int],
    read_index: int,
) -> bool:
    """Can the read at ``read_index`` be served its serial version?

    The serial order is given by ``order_position``.  The required
    *writer* is: the reader itself if it wrote the entity earlier;
    otherwise the reader's closest serial predecessor writing the
    entity; otherwise the initial pseudo-transaction.  Availability
    means **some** version authored by that writer already exists when
    the read occurs — view equivalence is at transaction granularity
    (a read "from t₁" may observe any of t₁'s versions of the item),
    so the version function may serve any retained one.
    """
    ops = schedule.operations
    read = ops[read_index]
    # Own earlier write?  Serial semantics read it; it trivially exists.
    for i in range(read_index - 1, -1, -1):
        op = ops[i]
        if op.txn == read.txn and op.is_write and op.entity == read.entity:
            return True
    # Closest serial predecessor writing the entity.
    reader_pos = order_position[read.txn]
    best_txn: str | None = None
    best_pos = -1
    for txn, pos in order_position.items():
        if txn == read.txn or pos >= reader_pos:
            continue
        if any(
            op.is_write and op.entity == read.entity
            for op in schedule.program(txn)
        ):
            if pos > best_pos:
                best_pos = pos
                best_txn = txn
    if best_txn is None:
        return True  # initial version, always available
    # Some version by the required writer must exist by read time.
    return any(
        op.txn == best_txn and op.is_write and op.entity == read.entity
        for op in ops[:read_index]
    )


def brute_force_mv_view_serialization_order(
    schedule: Schedule,
) -> tuple[str, ...] | None:
    """The literal all-permutations MVSR test (differential oracle)."""
    ops = schedule.operations
    read_indices = [i for i, op in enumerate(ops) if op.is_read]
    for order in permutations(schedule.transactions):
        order_position = {txn: pos for pos, txn in enumerate(order)}
        if all(
            _serial_read_ok(schedule, order_position, index)
            for index in read_indices
        ):
            return order
    return None


def _mv_witness_orders(schedule: Schedule) -> Iterator[tuple[str, ...]]:
    """Yield every MVSR witness order, pruned.

    A read's required writer is the most recently *placed* transaction
    whose program writes the entity (or the reader's own earlier write,
    or the initial version), so each transaction's reads can be checked
    the moment it is placed: the required writer's first version of the
    entity must exist before the read occurs in the actual schedule.
    Enumerates exactly the witnesses of the brute-force sweep, in the
    same order.
    """
    ops = schedule.operations
    txns = schedule.transactions
    programs = schedule.programs()

    # Reads not shadowed by the reader's own earlier write, and the
    # schedule position of every transaction's first write per entity.
    external: dict[str, list[tuple[int, str]]] = {
        txn: [] for txn in txns
    }
    written: dict[str, set[str]] = {txn: set() for txn in txns}
    first_write: dict[tuple[str, str], int] = {}
    for index, op in enumerate(ops):
        if op.is_read:
            if op.entity not in written[op.txn]:
                external[op.txn].append((index, op.entity))
        else:
            written[op.txn].add(op.entity)
            first_write.setdefault((op.txn, op.entity), index)

    writes_of = {
        txn: {op.entity for op in programs[txn] if op.is_write}
        for txn in txns
    }

    placed: set[str] = set()
    order: list[str] = []
    last_writer: dict[str, str] = {}

    def placeable(txn: str) -> bool:
        for read_index, entity in external[txn]:
            writer = last_writer.get(entity)
            if writer is None:
                continue  # initial version, always available
            if first_write[(writer, entity)] >= read_index:
                return False
        return True

    def backtrack() -> Iterator[tuple[str, ...]]:
        if len(order) == len(txns):
            yield tuple(order)
            return
        for txn in txns:
            if txn in placed or not placeable(txn):
                continue
            placed.add(txn)
            order.append(txn)
            undo = [
                (entity, last_writer.get(entity))
                for entity in writes_of[txn]
            ]
            for entity in writes_of[txn]:
                last_writer[entity] = txn
            yield from backtrack()
            for entity, previous in undo:
                if previous is None:
                    del last_writer[entity]
                else:
                    last_writer[entity] = previous
            order.pop()
            placed.discard(txn)

    yield from backtrack()


def mv_view_serialization_order(
    schedule: Schedule,
) -> tuple[str, ...] | None:
    """A serial order realizable by some version function, or ``None``.

    Pruned backtracking over serial orders (the polynomial test for
    general MVSR does not exist unless P = NP; recognition is
    NP-complete, so the worst case stays exponential).
    """
    for order in _mv_witness_orders(schedule):
        return order
    return None


def is_mv_view_serializable(schedule: Schedule) -> bool:
    """MVSR membership (pruned exhaustive search)."""
    return mv_view_serialization_order(schedule) is not None
