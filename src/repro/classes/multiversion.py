"""Multiversion serializability — MVSR and MVCSR (Sections 4.2, 4.3).

**MVSR.**  With multiple versions, a read may be served *any* retained
version, so a mono-version schedule belongs to MVSR when some serial
order π can be realized by a version function: every read of ``e`` by
``t`` is served the version the serial schedule π would give it — the
last π-predecessor writer of ``e`` (or ``t``'s own latest earlier
write, or the initial version) — **provided that version already exists
when the read occurs**.  The final state needs no check: all versions
are retained, so the final read simply selects the serial order's last
version (the paper's region-7 note — "if the final read is of the
version created by t₂ …" — relies on exactly this).

**MVCSR.**  The paper (following [Papadimitriou 1986]) notes the only
remaining conflicts under multiple versions are *reads before writes*
on the same item.  The test is acyclicity of the read-before-write
graph; a transaction's reads of its own later-written entities impose
no inter-transaction edge.
"""

from __future__ import annotations

from itertools import permutations

from ..schedules.schedule import Schedule
from .graphs import has_cycle, topological_order


def mv_conflict_graph(schedule: Schedule) -> dict[str, set[str]]:
    """Read-before-write graph: edge ``A → B`` when ``A`` reads ``e``
    and ``B`` later writes ``e`` (``A ≠ B``)."""
    adjacency: dict[str, set[str]] = {
        txn: set() for txn in schedule.transactions
    }
    ops = schedule.operations
    for i, first in enumerate(ops):
        if not first.is_read:
            continue
        for j in range(i + 1, len(ops)):
            second = ops[j]
            if (
                second.is_write
                and second.entity == first.entity
                and second.txn != first.txn
            ):
                adjacency[first.txn].add(second.txn)
    return adjacency


def is_mv_conflict_serializable(schedule: Schedule) -> bool:
    """MVCSR membership: the read-before-write graph is acyclic."""
    return not has_cycle(mv_conflict_graph(schedule))


def mv_conflict_serialization_order(
    schedule: Schedule,
) -> tuple[str, ...] | None:
    """A serial order witnessing MVCSR membership, or ``None``."""
    order = topological_order(mv_conflict_graph(schedule))
    if order is None:
        return None
    return tuple(order)


def _serial_read_ok(
    schedule: Schedule,
    order_position: dict[str, int],
    read_index: int,
) -> bool:
    """Can the read at ``read_index`` be served its serial version?

    The serial order is given by ``order_position``.  The required
    *writer* is: the reader itself if it wrote the entity earlier;
    otherwise the reader's closest serial predecessor writing the
    entity; otherwise the initial pseudo-transaction.  Availability
    means **some** version authored by that writer already exists when
    the read occurs — view equivalence is at transaction granularity
    (a read "from t₁" may observe any of t₁'s versions of the item),
    so the version function may serve any retained one.
    """
    ops = schedule.operations
    read = ops[read_index]
    # Own earlier write?  Serial semantics read it; it trivially exists.
    for i in range(read_index - 1, -1, -1):
        op = ops[i]
        if op.txn == read.txn and op.is_write and op.entity == read.entity:
            return True
    # Closest serial predecessor writing the entity.
    reader_pos = order_position[read.txn]
    best_txn: str | None = None
    best_pos = -1
    for txn, pos in order_position.items():
        if txn == read.txn or pos >= reader_pos:
            continue
        if any(
            op.is_write and op.entity == read.entity
            for op in schedule.program(txn)
        ):
            if pos > best_pos:
                best_pos = pos
                best_txn = txn
    if best_txn is None:
        return True  # initial version, always available
    # Some version by the required writer must exist by read time.
    return any(
        op.txn == best_txn and op.is_write and op.entity == read.entity
        for op in ops[:read_index]
    )


def mv_view_serialization_order(
    schedule: Schedule,
) -> tuple[str, ...] | None:
    """A serial order realizable by some version function, or ``None``.

    Exhaustive over serial orders (the polynomial test for general
    MVSR does not exist unless P = NP; recognition is NP-complete).
    """
    ops = schedule.operations
    read_indices = [i for i, op in enumerate(ops) if op.is_read]
    for order in permutations(schedule.transactions):
        order_position = {txn: pos for pos, txn in enumerate(order)}
        if all(
            _serial_read_ok(schedule, order_position, index)
            for index in read_indices
        ):
            return order
    return None


def is_mv_view_serializable(schedule: Schedule) -> bool:
    """MVSR membership (exhaustive)."""
    return mv_view_serialization_order(schedule) is not None
