"""Correctness classes for schedules (Section 4)."""

from .conflict import (
    conflict_graph,
    conflict_serialization_order,
    is_conflict_serializable,
)
from .examples import (
    ALL_EXAMPLES,
    EXAMPLE_1,
    EXAMPLE_2,
    FIGURE2_EXAMPLES,
    PaperExample,
    verify_all,
)
from .hierarchy import (
    REGION_LABELS,
    ClassMembership,
    classify,
    containment_violations,
    figure2_region,
)
from .export import (
    conflict_graph_dot,
    cpc_graphs_dot,
    mv_conflict_graph_dot,
    transaction_tree_dot,
)
from .multilevel import (
    ancestry_at_level,
    concurrency_gap,
    is_multilevel_conflict_serializable,
    is_multilevel_view_serializable,
    lift_schedule,
)
from .multiversion import (
    is_mv_conflict_serializable,
    is_mv_view_serializable,
    mv_conflict_graph,
    mv_conflict_serialization_order,
    mv_view_serialization_order,
)
from .partial_order import (
    PartialOrderProgram,
    admissibility_gain,
    admissible_interleavings,
    is_partial_order_conflict_serializable,
    is_partial_order_view_serializable,
    observed_linearizes,
)
from .predicate_correct import (
    cpc_graphs,
    is_conflict_predicate_correct,
    is_predicate_correct,
)
from .predicatewise import (
    conjunct_projections,
    is_predicatewise_conflict_serializable,
    is_predicatewise_serializable,
    normalize_objects,
)
from .view import (
    count_view_serial_orders,
    execution_is_view_serializable,
    is_view_serializable,
    lemma3_view_serialization,
    view_serialization_order,
)

__all__ = [
    "ALL_EXAMPLES",
    "ClassMembership",
    "EXAMPLE_1",
    "EXAMPLE_2",
    "FIGURE2_EXAMPLES",
    "PaperExample",
    "PartialOrderProgram",
    "REGION_LABELS",
    "admissibility_gain",
    "ancestry_at_level",
    "admissible_interleavings",
    "classify",
    "conflict_graph",
    "conflict_serialization_order",
    "conjunct_projections",
    "concurrency_gap",
    "conflict_graph_dot",
    "containment_violations",
    "cpc_graphs_dot",
    "count_view_serial_orders",
    "cpc_graphs",
    "execution_is_view_serializable",
    "figure2_region",
    "is_conflict_predicate_correct",
    "is_conflict_serializable",
    "is_mv_conflict_serializable",
    "is_multilevel_conflict_serializable",
    "is_multilevel_view_serializable",
    "is_mv_view_serializable",
    "is_partial_order_conflict_serializable",
    "is_partial_order_view_serializable",
    "is_predicate_correct",
    "is_predicatewise_conflict_serializable",
    "is_predicatewise_serializable",
    "lemma3_view_serialization",
    "lift_schedule",
    "mv_conflict_graph_dot",
    "mv_conflict_graph",
    "mv_conflict_serialization_order",
    "mv_view_serialization_order",
    "normalize_objects",
    "observed_linearizes",
    "transaction_tree_dot",
    "verify_all",
]
