"""Predicate-wise serializability — PWSR and PWCSR (Sections 4.2, 4.3).

If the database consistency constraint is in CNF, consistency is
preserved by enforcing serializability **only among data items sharing
a conjunct** — the serialization orders of different conjuncts need not
agree (the paper's Example 2 / 3.a / 3.b).  Formally, for each object
``x_i`` (the entity set of one conjunct), project the schedule onto
operations on ``x_i`` and require the projection to be serializable:
view serializability for PWSR, conflict serializability for PWCSR.

Entities mentioned by no conjunct are unconstrained: the consistency
constraint says nothing about them, so operations on them are dropped.
The paper explicitly assumes a non-empty constraint ("for such a
database, any schedule would preserve consistency").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.predicates import Predicate
from ..errors import ScheduleError
from ..schedules.schedule import Schedule
from .conflict import is_conflict_serializable
from .view import is_view_serializable

Objects = Sequence[frozenset[str]]
"""The constraint's objects: one entity set per conjunct."""


def normalize_objects(
    constraint: "Predicate | Iterable[Iterable[str]]",
) -> tuple[frozenset[str], ...]:
    """Extract objects from a predicate or raw entity-set collection.

    Accepts either a CNF :class:`Predicate` (objects are its conjunct
    entity sets) or an explicit iterable of entity sets, which is
    convenient in tests and the census where only the *shape* of the
    constraint matters.
    """
    if isinstance(constraint, Predicate):
        objects = tuple(
            obj for obj in constraint.objects() if obj
        )
    else:
        objects = tuple(frozenset(group) for group in constraint)
    if not objects:
        raise ScheduleError(
            "predicate-wise classes need a non-empty constraint "
            "(the paper assumes every database has one)"
        )
    return objects


def conjunct_projections(
    schedule: Schedule,
    constraint: "Predicate | Iterable[Iterable[str]]",
) -> list[tuple[frozenset[str], Schedule]]:
    """The per-conjunct projections of a schedule (Examples 3.a/3.b)."""
    projections: list[tuple[frozenset[str], Schedule]] = []
    for obj in normalize_objects(constraint):
        projected = schedule.project_entities(obj)
        if projected is not None:
            projections.append((obj, projected))
    return projections


def is_predicatewise_serializable(
    schedule: Schedule,
    constraint: "Predicate | Iterable[Iterable[str]]",
) -> bool:
    """PWSR: every conjunct projection is view serializable.

    Exponential per projection (view serializability is NP-complete);
    the polynomial workhorse is :func:`is_predicatewise_conflict_serializable`.
    """
    return all(
        is_view_serializable(projected)
        for _, projected in conjunct_projections(schedule, constraint)
    )


def is_predicatewise_conflict_serializable(
    schedule: Schedule,
    constraint: "Predicate | Iterable[Iterable[str]]",
) -> bool:
    """PWCSR: every conjunct projection is conflict serializable."""
    return all(
        is_conflict_serializable(projected)
        for _, projected in conjunct_projections(schedule, constraint)
    )
