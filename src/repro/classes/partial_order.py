"""Partial-order serializability — ≺SR and ≺CSR (Section 4.2).

In the standard model each transaction is a *total* order of
operations.  Partial-order serializability lets a transaction's
implementation be a partial order on its operations: the transaction
executes correctly under **any** linearization of that order, so the
transaction manager may choose among linearizations (e.g. touch an
unlocked item first).

Two consequences matter, both implemented here:

* **Membership of an observed schedule.**  An observed (totally
  ordered) schedule is in ≺CSR iff it is conflict equivalent to a
  serial schedule whose per-transaction operation orders linearize the
  declared partial orders.  Since the observed schedule already ran
  each transaction in one such linearization, over totally-ordered
  observations ≺CSR coincides with CSR — the class is *larger as a set
  of partial-order schedules*, not as a filter on a fixed interleaving.
  :func:`is_partial_order_conflict_serializable` checks both the
  conflict-graph condition and that the observation really linearizes
  the declared orders.

* **The concurrency gain.**  The enlargement is the set of
  *admissible* interleavings: each transaction contributes every
  linearization of its DAG.  :func:`admissible_interleavings` and
  :func:`admissibility_gain` quantify this (used by the ≺SR census
  benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import factorial
from typing import Iterator, Mapping, Sequence

from ..core.orders import PartialOrder
from ..errors import ScheduleError
from ..schedules.generator import interleavings
from ..schedules.operations import Operation
from ..schedules.schedule import Schedule
from .conflict import is_conflict_serializable
from .view import is_view_serializable


@dataclass(frozen=True)
class PartialOrderProgram:
    """A transaction whose operations form a DAG, not a sequence.

    ``order`` relates operation *indices* into ``operations``.
    """

    txn: str
    operations: tuple[Operation, ...]
    order: PartialOrder[int]

    def __post_init__(self) -> None:
        if not self.operations:
            raise ScheduleError(f"transaction {self.txn} has no operations")
        if self.order.elements != frozenset(range(len(self.operations))):
            raise ScheduleError(
                f"transaction {self.txn}: order must cover exactly the "
                "operation indices"
            )
        for op in self.operations:
            if op.txn != self.txn:
                raise ScheduleError(
                    f"operation {op} does not belong to {self.txn}"
                )

    @classmethod
    def sequential(
        cls, txn: str, operations: Sequence[Operation]
    ) -> "PartialOrderProgram":
        """A standard totally-ordered program."""
        ops = tuple(operations)
        return cls(txn, ops, PartialOrder.total(range(len(ops))))

    @classmethod
    def unordered(
        cls, txn: str, operations: Sequence[Operation]
    ) -> "PartialOrderProgram":
        """A fully parallel program (empty order)."""
        ops = tuple(operations)
        return cls(txn, ops, PartialOrder.empty(range(len(ops))))

    def linearizations(self) -> Iterator[tuple[Operation, ...]]:
        """All admissible sequential forms of this transaction."""
        for indices in self.order.linearizations():
            yield tuple(self.operations[i] for i in indices)

    def linearization_count(self) -> int:
        return sum(1 for _ in self.order.linearizations())

    def admits(self, sequence: Sequence[Operation]) -> bool:
        """Is ``sequence`` a linearization of this program?

        Handles repeated identical operations by matching positions
        greedily.
        """
        if len(sequence) != len(self.operations):
            return False
        used: set[int] = set()
        chosen: list[int] = []
        for op in sequence:
            match = next(
                (
                    i
                    for i, candidate in enumerate(self.operations)
                    if i not in used and candidate == op
                ),
                None,
            )
            if match is None:
                return False
            used.add(match)
            chosen.append(match)
        return self.order.is_linearized_by(chosen)


def observed_linearizes(
    schedule: Schedule, programs: Mapping[str, PartialOrderProgram]
) -> bool:
    """Does the observed schedule run each txn in an admissible order?"""
    for txn in schedule.transactions:
        program = programs.get(txn)
        if program is None:
            return False
        if not program.admits(schedule.program(txn)):
            return False
    return True


def is_partial_order_conflict_serializable(
    schedule: Schedule, programs: Mapping[str, PartialOrderProgram]
) -> bool:
    """≺CSR membership of an observed schedule.

    The observation must linearize every declared partial order, and
    its transaction-level conflict graph must be acyclic.
    """
    return observed_linearizes(schedule, programs) and (
        is_conflict_serializable(schedule)
    )


def is_partial_order_view_serializable(
    schedule: Schedule, programs: Mapping[str, PartialOrderProgram]
) -> bool:
    """≺SR membership of an observed schedule (exhaustive)."""
    return observed_linearizes(schedule, programs) and (
        is_view_serializable(schedule)
    )


def admissible_interleavings(
    programs: Mapping[str, PartialOrderProgram],
) -> Iterator[Schedule]:
    """Every interleaving of every linearization combination.

    This is the admissible-schedule set of a partial-order transaction
    system — the quantity ≺SR enlarges relative to the standard model.
    Exponential; intended for census-scale inputs.
    """
    txns = sorted(programs)

    def expand(index: int, chosen: dict[str, tuple[Operation, ...]]) -> Iterator[Schedule]:
        if index == len(txns):
            yield from interleavings(dict(chosen))
            return
        txn = txns[index]
        for linear in programs[txn].linearizations():
            chosen[txn] = linear
            yield from expand(index + 1, chosen)
            del chosen[txn]

    return expand(0, {})


def admissibility_gain(
    programs: Mapping[str, PartialOrderProgram],
) -> tuple[int, int]:
    """(partial-order admissible count, totally-ordered count).

    The totally-ordered count fixes each transaction to one arbitrary
    linearization — the standard model's view of the same workload.
    The ratio is the concurrency enlargement ≺SR provides.
    """
    total_ops = sum(len(p.operations) for p in programs.values())
    base = factorial(total_ops)
    for program in programs.values():
        base //= factorial(len(program.operations))
    combos = 1
    for program in programs.values():
        combos *= program.linearization_count()
    return combos * base, base
