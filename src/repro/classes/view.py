"""View serializability — the class SR (Sections 4 and 4.1).

A schedule is view serializable when it is view equivalent to some
serial schedule: same transactions, every read observes the same
writer, and every entity has the same final writer.  Recognition is
NP-complete [Papadimitriou 1979], and the implementation here is the
honest exhaustive test over all serial orders — fine for the ≤ 8
transaction schedules the paper's examples and our census use.

The module also implements Lemma 3: the four conditions under which an
execution ``(R, X)`` of the paper's model is view serializable.
"""

from __future__ import annotations

from itertools import permutations

from ..core.execution import Execution
from ..core.states import VersionState
from ..schedules.schedule import Schedule


def is_view_serializable(schedule: Schedule) -> bool:
    """SR membership by exhaustive comparison with serial schedules."""
    return view_serialization_order(schedule) is not None


def view_serialization_order(
    schedule: Schedule,
) -> tuple[str, ...] | None:
    """A serial order the schedule is view equivalent to, or ``None``."""
    for order, serial in schedule.serializations():
        if schedule.view_equivalent(serial):
            return order
    return None


def count_view_serial_orders(schedule: Schedule) -> int:
    """How many serial orders the schedule is view equivalent to.

    Used by the census to distinguish "rigid" schedules (exactly one
    witnessing order) from flexible ones.
    """
    return sum(
        1
        for _, serial in schedule.serializations()
        if schedule.view_equivalent(serial)
    )


# ---------------------------------------------------------------------------
# Lemma 3 — view serializability of model executions
# ---------------------------------------------------------------------------


def lemma3_view_serialization(
    execution: Execution,
) -> tuple[str, ...] | None:
    """Find a Lemma-3 witness order for an execution, or ``None``.

    Lemma 3's conditions, checked literally:

    1. the database system conforms to the standard model — callers are
       responsible for building standard-model executions (the function
       itself only needs conditions 2–4);
    2. every transaction participates in ``R`` (has some successor and
       some predecessor);
    3. there is a bijection ``f : T → {0, …, |T|−1}`` such that
       ``f(t_i) < f(t_j)`` implies ``(t_j, t_i) ∉ R``;
    4. consecutive transactions chain their states:
       ``f(t_i) = f(t_j) + 1`` implies ``X(t_i) = t_j(X(t_j))``.

    Returns the witnessing order of transaction names.
    """
    children = list(execution.transaction.child_names)
    relation = execution.reads_from

    # Condition 2: no isolated transactions.
    for child in children:
        has_successor = any(a == child for (a, b) in relation)
        has_predecessor = any(b == child for (a, b) in relation)
        if not (has_successor or has_predecessor) and len(children) > 1:
            return None

    results = execution.results()
    for order in permutations(children):
        # Condition 3: f must not order any R pair backwards.
        position = {name: index for index, name in enumerate(order)}
        if any(
            position[a] > position[b]
            for (a, b) in relation
            if a in position and b in position
        ):
            continue
        # Condition 4: consecutive chaining of version states.
        chained = True
        for index in range(len(order) - 1):
            previous, current = order[index], order[index + 1]
            expected = results[previous]
            actual: VersionState = execution.input_state(current)
            if actual.as_dict() != expected.as_dict():
                chained = False
                break
        if chained:
            return tuple(str(name) for name in order)
    return None


def execution_is_view_serializable(execution: Execution) -> bool:
    """Does the execution satisfy Lemma 3's conditions for some ``f``?"""
    return lemma3_view_serialization(execution) is not None
