"""View serializability — the class SR (Sections 4 and 4.1).

A schedule is view serializable when it is view equivalent to some
serial schedule: same transactions, every read observes the same
writer, and every entity has the same final writer.  Recognition is
NP-complete [Papadimitriou 1979]; nothing beats exponential worst
cases, but the search here is a *pruned backtracking* over serial
orders rather than a sweep of all ``n!`` permutations: transactions
are placed one at a time, and a prefix is abandoned as soon as a
placed transaction's reads-from or an entity's final writer can no
longer match the schedule's.  A placed transaction's view is fully
determined by its predecessors, so every cut is sound; the first
witness found is the same one the permutation sweep would return.
:func:`brute_force_view_serialization_order` keeps the literal
all-permutations test as the differential-testing oracle.

The module also implements Lemma 3: the four conditions under which an
execution ``(R, X)`` of the paper's model is view serializable.
"""

from __future__ import annotations

from typing import Iterator

from ..core.execution import Execution, source_provides
from ..core.states import VersionState
from ..schedules.schedule import Schedule


def is_view_serializable(schedule: Schedule) -> bool:
    """SR membership via the pruned serial-order search."""
    return view_serialization_order(schedule) is not None


def view_serialization_order(
    schedule: Schedule,
) -> tuple[str, ...] | None:
    """A serial order the schedule is view equivalent to, or ``None``."""
    for order in _view_witness_orders(schedule):
        return order
    return None


def count_view_serial_orders(schedule: Schedule) -> int:
    """How many serial orders the schedule is view equivalent to.

    Used by the census to distinguish "rigid" schedules (exactly one
    witnessing order) from flexible ones.
    """
    return sum(1 for _ in _view_witness_orders(schedule))


def brute_force_view_serialization_order(
    schedule: Schedule,
) -> tuple[str, ...] | None:
    """The literal all-permutations SR test (differential oracle).

    Compares the schedule against every serial schedule with
    :meth:`Schedule.view_equivalent` — the definition, executable.  The
    pruned search must agree with this on every input.
    """
    for order, serial in schedule.serializations():
        if schedule.view_equivalent(serial):
            return order
    return None


def _view_witness_orders(
    schedule: Schedule,
) -> Iterator[tuple[str, ...]]:
    """Yield every view-equivalence witness order, pruned.

    Once a transaction is placed, its serial-schedule view is fixed:
    each of its reads observes its own earlier write (if its program
    has one) or the most recently placed writer of the entity.  A
    write may not be placed after the entity's required final writer.
    Checking both at placement time prunes whole permutation subtrees
    while enumerating exactly the witnesses the brute-force sweep
    finds, in the same order.
    """
    txns = schedule.transactions
    programs = schedule.programs()
    sources = schedule.read_sources()
    finals = schedule.final_writers()

    # Per-transaction serial read requirements.  A read shadowed by the
    # transaction's own earlier write observes that write in *every*
    # serial schedule: if the interleaving disagrees, no witness exists.
    external: dict[str, tuple[tuple[str, str | None], ...]] = {}
    for txn, ops in programs.items():
        written: set[str] = set()
        occurrence: dict[str, int] = {}
        requirements: dict[tuple[str, str | None], None] = {}
        for op in ops:
            if op.is_read:
                index = occurrence.get(op.entity, 0)
                occurrence[op.entity] = index + 1
                required = sources[(txn, op.entity, index)]
                if op.entity in written:
                    if required != txn:
                        return
                else:
                    requirements[(op.entity, required)] = None
            if op.is_write:
                written.add(op.entity)
        external[txn] = tuple(requirements)

    writes_of = {
        txn: {op.entity for op in ops if op.is_write}
        for txn, ops in programs.items()
    }

    placed: set[str] = set()
    order: list[str] = []
    last_writer: dict[str, str] = {}

    def placeable(txn: str) -> bool:
        for entity, required in external[txn]:
            if last_writer.get(entity) != required:
                return False
        for entity in writes_of[txn]:
            final = finals[entity]
            if final != txn and final in placed:
                return False
        return True

    def backtrack() -> Iterator[tuple[str, ...]]:
        if len(order) == len(txns):
            yield tuple(order)
            return
        for txn in txns:
            if txn in placed or not placeable(txn):
                continue
            placed.add(txn)
            order.append(txn)
            undo = [
                (entity, last_writer.get(entity))
                for entity in writes_of[txn]
            ]
            for entity in writes_of[txn]:
                last_writer[entity] = txn
            yield from backtrack()
            for entity, previous in undo:
                if previous is None:
                    del last_writer[entity]
                else:
                    last_writer[entity] = previous
            order.pop()
            placed.discard(txn)

    yield from backtrack()


# ---------------------------------------------------------------------------
# Lemma 3 — view serializability of model executions
# ---------------------------------------------------------------------------


def lemma3_view_serialization(
    execution: Execution,
) -> tuple[str, ...] | None:
    """Find a Lemma-3 witness order for an execution, or ``None``.

    Lemma 3's conditions, checked literally:

    1. the database system conforms to the standard model — callers are
       responsible for building standard-model executions (the function
       itself only needs conditions 2–4);
    2. every transaction participates in ``R`` (has some successor
       *and* some predecessor).  The paper's ``R`` includes the
       pseudo-transactions: ``t_0`` precedes a transaction whose input
       state the initial database offers, and ``t_f`` succeeds a
       transaction whose result is the final state — so chain endpoints
       participate through ``t_0``/``t_f`` even though the repository's
       ``R`` relates only real subtransactions;
    3. there is a bijection ``f : T → {0, …, |T|−1}`` such that
       ``f(t_i) < f(t_j)`` implies ``(t_j, t_i) ∉ R``;
    4. consecutive transactions chain their states:
       ``f(t_i) = f(t_j) + 1`` implies ``X(t_i) = t_j(X(t_j))``.

    Returns the witnessing order of transaction names.
    """
    children = list(execution.transaction.child_names)
    relation = execution.reads_from
    results = execution.results()

    # Condition 2: every transaction participates in R, counting the
    # implicit t_0 (initial-state supplier) and t_f (final-state
    # reader) edges.  A transaction with no successor — real or t_f —
    # cannot sit inside the chain conditions 3–4 build, and likewise
    # for predecessors.
    if len(children) > 1:
        final = execution.final_state.as_dict()
        for child in children:
            has_successor = any(
                a == child for (a, b) in relation
            ) or results[child].as_dict() == final
            if not has_successor:
                return None
            state = execution.input_state(child)
            has_predecessor = any(
                b == child for (a, b) in relation
            ) or all(
                source_provides(execution.initial, entity, state[entity])
                for entity in state
            )
            if not has_predecessor:
                return None

    for order in _lemma3_orders(children, relation):
        # Condition 4: consecutive chaining of version states.
        chained = True
        for index in range(len(order) - 1):
            previous, current = order[index], order[index + 1]
            expected = results[previous]
            actual: VersionState = execution.input_state(current)
            if actual.as_dict() != expected.as_dict():
                chained = False
                break
        if chained:
            return tuple(str(name) for name in order)
    return None


def _lemma3_orders(children, relation) -> Iterator[tuple]:
    """Orders satisfying condition 3, by pruned backtracking.

    Placing transactions left to right, a candidate is admissible only
    when no *unplaced* transaction must precede it — i.e. appending it
    cannot order an ``R`` pair backwards.  This enumerates exactly the
    permutations the old ``itertools.permutations`` filter accepted,
    in the same order, without visiting doomed prefixes.
    """
    predecessors: dict[object, set[object]] = {
        child: set() for child in children
    }
    for a, b in relation:
        if a != b and a in predecessors and b in predecessors:
            predecessors[b].add(a)

    placed: set[object] = set()
    order: list[object] = []

    def backtrack() -> Iterator[tuple]:
        if len(order) == len(children):
            yield tuple(order)
            return
        for child in children:
            if child in placed or predecessors[child] - placed:
                continue
            placed.add(child)
            order.append(child)
            yield from backtrack()
            order.pop()
            placed.discard(child)

    yield from backtrack()


def execution_is_view_serializable(execution: Execution) -> bool:
    """Does the execution satisfy Lemma 3's conditions for some ``f``?"""
    return lemma3_view_serialization(execution) is not None
