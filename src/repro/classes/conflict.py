"""Conflict serializability — the class CSR (Section 4.3).

Two schedules are conflict equivalent when their conflicting steps
(same entity, different transactions, at least one write) are in the
same order; a schedule is conflict serializable when it is conflict
equivalent to some serial schedule.  The polynomial test is acyclicity
of the transaction precedence graph.
"""

from __future__ import annotations

from ..schedules.fastsched import fast_of
from ..schedules.schedule import Schedule
from .graphs import has_cycle, topological_order


def conflict_graph(schedule: Schedule) -> dict[str, set[str]]:
    """The precedence graph: edge ``A → B`` when a step of ``A``
    conflicts with and precedes a step of ``B``.  Memoized per
    schedule (the classifier, the census, and the DOT exporter all ask
    for the same graph).

    Served by the array-encoded path, which carries per-entity
    reader/writer sets in one pass instead of comparing every step
    pair; :func:`conflict_graph_reference` transcribes the definition
    directly and is held against this in the differential tests."""

    return schedule.memo(
        "conflict_graph", lambda: fast_of(schedule).conflict_graph()
    )


def conflict_graph_reference(schedule: Schedule) -> dict[str, set[str]]:
    """The quadratic definition of the precedence graph (oracle)."""
    adjacency: dict[str, set[str]] = {
        txn: set() for txn in schedule.transactions
    }
    ops = schedule.operations
    for i, first in enumerate(ops):
        for j in range(i + 1, len(ops)):
            second = ops[j]
            if first.conflicts_with(second):
                adjacency[first.txn].add(second.txn)
    return adjacency


def is_conflict_serializable(schedule: Schedule) -> bool:
    """CSR membership: the conflict graph is acyclic."""
    return not has_cycle(conflict_graph(schedule))


def conflict_serialization_order(
    schedule: Schedule,
) -> tuple[str, ...] | None:
    """A serial order witnessing CSR membership, or ``None``."""
    order = topological_order(conflict_graph(schedule))
    if order is None:
        return None
    return tuple(order)
