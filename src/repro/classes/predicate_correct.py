"""The combined classes PC and CPC (Sections 4.2, 4.3).

**CPC (conflict predicate correct)** combines every extension at the
*conflict* level: multiple versions shrink conflicts to
read-before-write pairs, and the predicate decomposes the schedule per
conjunct.  The paper's efficient test, implemented literally: build one
read-before-write graph per conjunct (an arc ``A → B`` only when the
shared item is in that conjunct) and require all graphs acyclic —
"testing for acyclicity is efficient for 1 graph, it remains efficient
for n graphs".

**PC (predicate correct)** is the view-level analogue: every conjunct
projection must be multiversion *view* serializable.  Its recognition
problem is NP-complete (the paper notes this), and the implementation
is accordingly exhaustive per conjunct.
"""

from __future__ import annotations

from typing import Iterable

from ..core.predicates import Predicate
from ..schedules.schedule import Schedule
from .graphs import has_cycle
from .multiversion import is_mv_view_serializable
from .predicatewise import conjunct_projections, normalize_objects


def cpc_graphs(
    schedule: Schedule,
    constraint: "Predicate | Iterable[Iterable[str]]",
) -> dict[frozenset[str], dict[str, set[str]]]:
    """One read-before-write graph per conjunct (the CPC test graphs).

    Nodes are all transactions of the schedule; an arc ``A → B`` is
    drawn when ``A`` reads an item, ``B`` later writes that item, and
    the item belongs to the conjunct.
    """
    normalized = normalize_objects(constraint)

    def build() -> dict[frozenset[str], dict[str, set[str]]]:
        graphs: dict[frozenset[str], dict[str, set[str]]] = {}
        ops = schedule.operations
        for obj in normalized:
            adjacency: dict[str, set[str]] = {
                txn: set() for txn in schedule.transactions
            }
            for i, first in enumerate(ops):
                if not first.is_read or first.entity not in obj:
                    continue
                for j in range(i + 1, len(ops)):
                    second = ops[j]
                    if (
                        second.is_write
                        and second.entity == first.entity
                        and second.txn != first.txn
                    ):
                        adjacency[first.txn].add(second.txn)
            graphs[obj] = adjacency
        return graphs

    return schedule.memo(("cpc_graphs", normalized), build)


def is_conflict_predicate_correct(
    schedule: Schedule,
    constraint: "Predicate | Iterable[Iterable[str]]",
) -> bool:
    """CPC membership: every per-conjunct rw-graph is acyclic.

    This is the paper's polynomial recognition procedure for its
    broadest efficient class.
    """
    return all(
        not has_cycle(adjacency)
        for adjacency in cpc_graphs(schedule, constraint).values()
    )


def is_predicate_correct(
    schedule: Schedule,
    constraint: "Predicate | Iterable[Iterable[str]]",
) -> bool:
    """PC membership: every conjunct projection is in MVSR.

    NP-complete in general — exhaustive over serial orders per
    conjunct, usable on paper-scale schedules only (which is the
    point; CPC is the efficient restriction).
    """
    return all(
        is_mv_view_serializable(projected)
        for _, projected in conjunct_projections(schedule, constraint)
    )
