"""Multilevel serializability (Sections 2.2 and 4.2, after Beeri et al.).

The paper: "greater concurrency can be achieved with nested
transactions by allowing subtransactions to execute in parallel and by
allowing schedules which are non-serializable at one level but are
equivalent to some serial schedule at a higher level."

This module makes that testable.  A leaf-level schedule's operations
are *lifted* along the nesting tree: every operation is re-attributed
to its ancestor at the chosen level, and the lifted schedule is tested
with the ordinary Section-4 machinery.  A schedule can then be
non-CSR among the leaves while perfectly serializable among the
top-level transactions — the nested-transaction concurrency gain.
"""

from __future__ import annotations

from typing import Mapping

from ..core.naming import TxnName
from ..core.transactions import NestedTransaction
from ..errors import ScheduleError
from ..schedules.operations import Operation
from ..schedules.schedule import Schedule
from .conflict import is_conflict_serializable
from .view import is_view_serializable


def ancestry_at_level(
    root: NestedTransaction, level: int
) -> dict[str, str]:
    """Map every descendant's name to its ancestor at ``level``.

    Level 1 is the root's direct children (the paper's *top-level
    transactions*); deeper levels follow the tree.  Descendants at or
    above the level map to themselves.
    """
    if level < 1:
        raise ScheduleError("level must be >= 1")
    mapping: dict[str, str] = {}
    for node in root.descendants():
        name = node.name
        if name.depth <= level:
            mapping[str(name)] = str(name)
        else:
            ancestor = TxnName(name.parts[: level + 1])
            mapping[str(name)] = str(ancestor)
    return mapping


def lift_schedule(
    schedule: Schedule, ancestry: Mapping[str, str]
) -> Schedule:
    """Re-attribute each operation to its ancestor transaction.

    Operations of descendants of one ancestor merge into a single
    (interleaved) higher-level transaction whose program order is the
    schedule order — exactly how a parent "contains" its
    subtransactions' work.
    """
    ops = []
    for op in schedule.operations:
        try:
            owner = ancestry[op.txn]
        except KeyError:
            raise ScheduleError(
                f"operation {op} has no ancestry mapping"
            ) from None
        ops.append(Operation(owner, op.kind, op.entity))
    return Schedule(ops)


def is_multilevel_conflict_serializable(
    schedule: Schedule, ancestry: Mapping[str, str]
) -> bool:
    """CSR of the lifted schedule (top-level serializability)."""
    return is_conflict_serializable(lift_schedule(schedule, ancestry))


def is_multilevel_view_serializable(
    schedule: Schedule, ancestry: Mapping[str, str]
) -> bool:
    """SR of the lifted schedule."""
    return is_view_serializable(lift_schedule(schedule, ancestry))


def concurrency_gap(
    schedule: Schedule, ancestry: Mapping[str, str]
) -> tuple[bool, bool]:
    """(leaf-level CSR, lifted CSR) — the §2.2 gap is (False, True)."""
    return (
        is_conflict_serializable(schedule),
        is_multilevel_conflict_serializable(schedule, ancestry),
    )
