"""Follower-side replication: continuous replay plus the link client.

A follower owns its WAL directory exclusively: shipped records are
appended **verbatim** (the canonical record encoding is deterministic,
so the follower's log is byte-identical to the primary's for the
shipped range) and replayed incrementally through the same
:class:`~repro.durability.state.LogicalState` redo the recovery path
uses.  The follower therefore *is* a primary crash image at LSN
``applied_lsn`` at all times — which is exactly why promotion can run
the stock ``recover --verify`` gate over the follower directory and
why bounded-stale follower reads are formally correct: the view served
at ``applied_lsn`` is a committed prefix the paper's version functions
are allowed to read.

Acks are sent only after fsync, so an acked LSN survives a follower
kill; with ``sync_replicas >= 1`` on the primary this is what makes
every acked commit survive promotion.
"""

from __future__ import annotations

import asyncio
import random
import time
import zlib
from pathlib import Path
from typing import Any, Callable

from ..durability.snapshot import CheckpointStore
from ..durability.state import LogicalState
from ..durability.wal import (
    WriteAheadLog,
    list_segments,
    scan_wal,
    truncate_torn_tail,
)
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from .messages import (
    KIND_RECORDS,
    KIND_SNAPSHOT,
    REPL_MAX_FRAME_BYTES,
    ReplicationError,
    ack_message,
    decode_message,
    encode_message,
    hello_message,
    records_from_payload,
)

#: The follower WAL never group-commits on its own schedule: the
#: applier fsyncs explicitly once per shipped batch, before acking.
_NEVER_FLUSH = 1e18


class FollowerApplier:
    """Continuous replay of shipped records into a follower WAL dir."""

    def __init__(
        self,
        wal_dir: "Path | str",
        *,
        segment_bytes: int = 0,
        retain: int = 3,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: "Callable[[], float] | None" = None,
    ) -> None:
        self._dir = Path(wal_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self._checkpoints = CheckpointStore(
            self._dir, retain=retain, registry=registry
        )
        self._registry = registry
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock
        self._wall = wall_clock if wall_clock is not None else time.time
        self.state: LogicalState | None = None
        self.wal: WriteAheadLog | None = None
        self.applied_lsn = 0
        self.primary_durable_lsn = 0
        self.lag_ms = 0.0
        self.snapshots_installed = 0
        self.records_applied = 0
        self.load_existing()

    # -- startup -----------------------------------------------------------

    def load_existing(self) -> None:
        """Resume from what the directory already holds, if anything.

        A follower directory is always checkpoint-seeded (snapshot
        install) before any record lands, so segments without a usable
        checkpoint mean an interrupted install — wipe and start fresh
        (``applied_lsn = 0`` makes the handshake ask for a snapshot).
        """
        loaded = self._checkpoints.load_newest()
        if loaded is None:
            if list_segments(self._dir):
                self._wipe()
            return
        scan = scan_wal(self._dir)
        truncate_torn_tail(scan)
        state_dict, checkpoint_lsn = loaded
        state = LogicalState.from_dict(state_dict)
        applied = checkpoint_lsn
        for record in scan.records:
            if record.lsn <= checkpoint_lsn:
                continue
            if record.lsn != applied + 1:
                raise ReplicationError(
                    f"follower log gap: checkpoint {checkpoint_lsn}, "
                    f"next record {record.lsn}"
                )
            state.apply(record)
            applied = record.lsn
        self.state = state
        self.applied_lsn = applied
        self.primary_durable_lsn = max(
            self.primary_durable_lsn, applied
        )
        self._open_wal()
        self._publish_gauges()

    def _wipe(self) -> None:
        if self.wal is not None and not self.wal.closed:
            self.wal.close()
        self.wal = None
        for path in list_segments(self._dir):
            path.unlink()
        for path in self._checkpoints.checkpoints():
            path.unlink()
        for leftover in self._dir.glob("*.tmp"):
            leftover.unlink()

    def _open_wal(self) -> None:
        self.wal = WriteAheadLog(
            self._dir,
            next_lsn=self.applied_lsn + 1,
            flush_interval=_NEVER_FLUSH,
            segment_bytes=self.segment_bytes,
            registry=self._registry,
            clock=self._clock,
        )

    # -- the two message handlers -----------------------------------------

    def install_snapshot(
        self, state_dict: dict[str, Any], last_lsn: int
    ) -> None:
        """Replace local history with a shipped checkpoint state."""
        started = self._clock()
        self._wipe()
        self._checkpoints.write(state_dict, last_lsn)
        self.state = LogicalState.from_dict(state_dict)
        self.applied_lsn = last_lsn
        self.primary_durable_lsn = max(
            self.primary_durable_lsn, last_lsn
        )
        self.snapshots_installed += 1
        self._open_wal()
        self._tracer.record(
            "repl.apply",
            "snapshot",
            start=started,
            end=self._clock(),
            last_lsn=last_lsn,
        )
        if self._registry is not None:
            self._registry.counter("repl.apply.snapshots").inc()
        self._publish_gauges()

    def apply_records(self, payload: dict[str, Any]) -> int:
        """Apply one ``records`` message; fsync; return records applied.

        Records must extend ``applied_lsn`` contiguously (already-seen
        LSNs are skipped — resends after a reconnect are harmless); a
        gap is a protocol violation and the link must re-handshake.
        """
        if self.state is None or self.wal is None:
            raise ReplicationError(
                "follower has no base state: snapshot required"
            )
        records = records_from_payload(payload)
        started = self._clock()
        applied = 0
        for record in records:
            if record.lsn <= self.applied_lsn:
                continue
            if record.lsn != self.applied_lsn + 1:
                raise ReplicationError(
                    f"ship gap: applied {self.applied_lsn}, "
                    f"received {record.lsn}"
                )
            self.state.apply(record)
            written = self.wal.append(record.op, record.txn, record.data)
            assert written.lsn == record.lsn
            self.applied_lsn = record.lsn
            applied += 1
        if applied:
            self.wal.flush()
            self.records_applied += applied
            self._tracer.record(
                "repl.apply",
                "records",
                start=started,
                end=self._clock(),
                records=applied,
                applied_lsn=self.applied_lsn,
            )
            if self._registry is not None:
                self._registry.counter("repl.apply.records").inc(applied)
        horizon = int(payload.get("durable_lsn", self.applied_lsn))
        self.primary_durable_lsn = max(self.primary_durable_lsn, horizon)
        sent_at = payload.get("sent_at")
        if isinstance(sent_at, (int, float)):
            self.lag_ms = max(0.0, (self._wall() - sent_at) * 1000.0)
        self._publish_gauges()
        return applied

    # -- views and introspection ------------------------------------------

    @property
    def lag_lsn(self) -> int:
        return max(0, self.primary_durable_lsn - self.applied_lsn)

    def read_view(self) -> "tuple[int, dict[str, int]]":
        """``(applied_lsn, committed root view)`` — the stale read."""
        if self.state is None:
            raise ReplicationError(
                "follower has no state yet (no snapshot installed)"
            )
        return self.applied_lsn, self.state.root_view()

    def status(self) -> dict[str, Any]:
        return {
            "role": "follower",
            "applied_lsn": self.applied_lsn,
            "primary_durable_lsn": self.primary_durable_lsn,
            "lag_lsn": self.lag_lsn,
            "lag_ms": round(self.lag_ms, 3),
            "snapshots_installed": self.snapshots_installed,
            "records_applied": self.records_applied,
        }

    def _publish_gauges(self) -> None:
        if self._registry is None:
            return
        self._registry.gauge("repl.applied_lsn").set(self.applied_lsn)
        self._registry.gauge("repl.lag_lsn").set(self.lag_lsn)
        self._registry.gauge("repl.lag_ms").set(round(self.lag_ms, 3))

    def close(self) -> None:
        if self.wal is not None and not self.wal.closed:
            self.wal.close()


class ReconnectBackoff:
    """Capped, jittered exponential backoff for reconnect loops.

    The jitter stream is an explicit :class:`random.Random` seeded at
    construction, never the global RNG: under the virtual clock two
    runs with the same seed sleep for exactly the same sequence of
    delays, so reconnect storms stay reproducible (in the DES and the
    fuzzer both).  Each failed attempt doubles the delay up to ``cap``;
    jitter subtracts up to ``jitter`` fraction of it, de-synchronizing
    a herd of followers that all lost the same primary at once.
    """

    def __init__(
        self,
        *,
        base: float = 0.2,
        cap: float = 5.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.base = base
        self.cap = cap
        self.multiplier = multiplier
        self.jitter = jitter
        self.attempt = 0
        self._rng = random.Random(seed)

    def next_delay(self) -> float:
        """The next sleep, growing exponentially until ``cap``."""
        raw = min(self.cap, self.base * self.multiplier**self.attempt)
        self.attempt += 1
        return raw * (1.0 - self.jitter * self._rng.random())

    def reset(self) -> None:
        """A successful (re)connection: start the ramp over."""
        self.attempt = 0


def _node_seed(node: str) -> int:
    """Deterministic per-node jitter seed (stable across processes)."""
    return zlib.crc32(node.encode("utf-8"))


class FollowerLink:
    """The follower's connection to the primary, with reconnect."""

    def __init__(
        self,
        applier: FollowerApplier,
        host: str,
        port: int,
        *,
        node: str = "follower",
        retry_delay: float = 0.2,
        retry_cap: float = 5.0,
        backoff: ReconnectBackoff | None = None,
    ) -> None:
        self._applier = applier
        self.host = host
        self.port = port
        self.node = node
        self.retry_delay = retry_delay
        self.backoff = (
            backoff
            if backoff is not None
            else ReconnectBackoff(
                base=retry_delay,
                cap=retry_cap,
                seed=_node_seed(node),
            )
        )
        self.connected = False
        self._stopped = False

    def stop(self) -> None:
        self._stopped = True

    async def run(self) -> None:
        """Connect, stream, reconnect — until cancelled or stopped."""
        while not self._stopped:
            try:
                reader, writer = await asyncio.open_connection(
                    self.host,
                    self.port,
                    limit=REPL_MAX_FRAME_BYTES + 2,
                )
            except OSError:
                await asyncio.sleep(self.backoff.next_delay())
                continue
            try:
                await self._stream(reader, writer)
            except (
                ReplicationError,
                ConnectionError,
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
            ):
                pass
            finally:
                self.connected = False
                writer.close()
                try:
                    await writer.wait_closed()
                except ConnectionError:
                    pass
            if not self._stopped:
                await asyncio.sleep(self.backoff.next_delay())

    async def _stream(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        writer.write(
            encode_message(
                hello_message(self._applier.applied_lsn, self.node)
            )
        )
        await writer.drain()
        self.connected = True
        self.backoff.reset()
        while not self._stopped:
            line = await reader.readline()
            if not line:
                return
            message = decode_message(line)
            kind = message.get("kind")
            if kind == KIND_SNAPSHOT:
                self._applier.install_snapshot(
                    message["state"], int(message["last_lsn"])
                )
            elif kind == KIND_RECORDS:
                self._applier.apply_records(message)
            else:
                raise ReplicationError(
                    f"unexpected message kind {kind!r} from primary"
                )
            writer.write(
                encode_message(ack_message(self._applier.applied_lsn))
            )
            await writer.drain()
