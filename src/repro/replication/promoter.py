"""Failover: choosing the winner and promoting a follower in place.

The promotion protocol is deliberately small enough to state as rules
(and the fuzzer's ``acked_commits_survive_promotion`` oracle checks
the invariant they exist to protect):

1. **Candidates** are followers whose directories hold a usable
   checkpoint (they have been snapshot-seeded at least once).
2. **The winner is the highest ``applied_lsn``.**  Acks are sent only
   after fsync, so with ``sync_replicas = k`` every *acked* commit LSN
   is ≤ at least k followers' applied LSNs — the max over any k-subset
   of survivors is ≥ every acked commit, so the winner's log contains
   every acked commit.
3. **The gate is the stock ``recover --verify``** over the winner's
   directory (checkpoint + verbatim WAL suffix — a primary crash image
   by construction).  A follower that fails the gate must not serve;
   promotion raises and the caller tries the next candidate.
4. The promoted node re-anchors (checkpoint + fresh segment, done by
   ``DurableTransactionManager.open``) and only then flips its role to
   primary and starts accepting writes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..durability.manager import DurableTransactionManager
from ..durability.recovery import RecoveryResult
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from .messages import ReplicationError


class Promoter:
    """Pure decision logic for failover (no I/O)."""

    @staticmethod
    def choose(statuses: "list[dict[str, Any]]") -> "dict[str, Any]":
        """Pick the winner among peer ``repl_status`` payloads.

        Followers only; the highest ``applied_lsn`` wins, with the
        peer's listing order breaking ties (stable, so a deterministic
        fuzz run always elects the same node).
        """
        candidates = [
            status
            for status in statuses
            if status.get("role") == "follower"
            and isinstance(status.get("applied_lsn"), int)
        ]
        if not candidates:
            raise ReplicationError(
                "no promotable follower among peers"
            )
        return max(candidates, key=lambda s: s["applied_lsn"])


def promote_in_place(
    wal_dir: "Path | str",
    *,
    flush_interval: float = 0.0,
    checkpoint_every: int = 0,
    segment_bytes: int = 0,
    retain: int = 3,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    strict: bool = False,
) -> "tuple[DurableTransactionManager, RecoveryResult]":
    """Run the promotion gate over a follower directory.

    ``DurableTransactionManager.open`` *is* the ``recover --verify``
    gate: it replays checkpoint + WAL suffix, verifies the recovered
    state against the Section-5 predicates (raising
    :class:`~repro.errors.RecoveryError` on any violation — the
    follower must not serve), and re-anchors the directory.  Returns
    the live manager and the recovery evidence for the caller's
    promotion report.
    """
    manager, recovery = DurableTransactionManager.open(
        wal_dir,
        flush_interval=flush_interval,
        checkpoint_every=checkpoint_every,
        segment_bytes=segment_bytes,
        retain=retain,
        registry=registry,
        tracer=tracer,
        strict=strict,
        verify=True,
    )
    if recovery is None:
        manager.close()
        raise ReplicationError(
            f"{wal_dir} has no replicated history to promote"
        )
    return manager, recovery
