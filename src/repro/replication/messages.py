"""Replication stream messages: handshake, snapshot, records, acks.

The replication link reuses the server's JSON-lines framing idea (one
JSON object per newline-terminated line) but with its own, larger frame
bound — a snapshot message carries a whole checkpoint state, which the
64 KiB request frames were never meant to hold.

Message kinds, primary ← follower handshake first:

* ``hello`` (follower → primary)::

      {"kind": "hello", "from_lsn": 1041, "node": "follower-1"}

  ``from_lsn`` is the follower's ``applied_lsn`` — the primary ships
  records strictly after it, or a snapshot when the follower is fresh
  (``from_lsn == 0``) or the primary's checkpoint retention has already
  dropped that part of history (the cursor is *lost*).

* ``snapshot`` (primary → follower)::

      {"kind": "snapshot", "state": {…}, "last_lsn": 1200}

  A full checkpoint state; the follower wipes its directory, installs
  it as its own checkpoint, and continues from ``last_lsn``.

* ``records`` (primary → follower)::

      {"kind": "records", "records": [{lsn,op,txn,data}, …],
       "durable_lsn": 1260, "sent_at": 171.25}

  Ship batches are **group-commit aligned**: only records at or below
  the primary's fsync horizon (``durable_lsn``) are ever shipped, so a
  follower can never be *ahead* of what the primary would itself
  recover.  An empty ``records`` list is a heartbeat carrying the lag
  metadata.

* ``ack`` (follower → primary)::

      {"kind": "ack", "applied_lsn": 1260}

  Sent after the batch is applied *and fsynced* on the follower —
  an acked LSN survives a follower kill, which is what makes
  sync-replicated commits survive promotion.
"""

from __future__ import annotations

import json
from typing import Any

from ..durability.records import WalRecord
from ..errors import ReproError

#: Replication frames may carry whole checkpoint snapshots.
REPL_MAX_FRAME_BYTES = 16 * 1024 * 1024

KIND_HELLO = "hello"
KIND_SNAPSHOT = "snapshot"
KIND_RECORDS = "records"
KIND_ACK = "ack"


class ReplicationError(ReproError):
    """A replication-stream protocol violation (framing, order, kind)."""


def encode_message(payload: dict[str, Any]) -> bytes:
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    data += b"\n"
    if len(data) > REPL_MAX_FRAME_BYTES:
        raise ReplicationError(
            f"replication frame of {len(data)} bytes exceeds "
            f"{REPL_MAX_FRAME_BYTES}"
        )
    return data


def decode_message(line: bytes) -> dict[str, Any]:
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        raise ReplicationError(
            f"undecodable replication frame: {error}"
        ) from None
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ReplicationError("replication frame has no 'kind'")
    return payload


def hello_message(from_lsn: int, node: str) -> dict[str, Any]:
    return {"kind": KIND_HELLO, "from_lsn": from_lsn, "node": node}


def snapshot_message(
    state: dict[str, Any], last_lsn: int
) -> dict[str, Any]:
    return {"kind": KIND_SNAPSHOT, "state": state, "last_lsn": last_lsn}


def records_message(
    records: "list[WalRecord]",
    durable_lsn: int,
    sent_at: float,
) -> dict[str, Any]:
    return {
        "kind": KIND_RECORDS,
        "records": [
            {"lsn": r.lsn, "op": r.op, "txn": r.txn, "data": r.data}
            for r in records
        ],
        "durable_lsn": durable_lsn,
        "sent_at": sent_at,
    }


def ack_message(applied_lsn: int) -> dict[str, Any]:
    return {"kind": KIND_ACK, "applied_lsn": applied_lsn}


def records_from_payload(payload: dict[str, Any]) -> "list[WalRecord]":
    """Rebuild :class:`WalRecord` objects from a ``records`` message.

    The WAL's canonical encoding is deterministic, so the follower can
    re-append ``record.encode()`` bytes and end up byte-identical to
    the primary's log for the shipped range.
    """
    try:
        return [
            WalRecord(
                lsn=entry["lsn"],
                op=entry["op"],
                txn=entry["txn"],
                data=entry["data"],
            )
            for entry in payload["records"]
        ]
    except (KeyError, TypeError) as error:
        raise ReplicationError(
            f"malformed records payload: {error}"
        ) from None
