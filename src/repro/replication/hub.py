"""Primary-side replication: the hub, ship cursors, and the listener.

The hub is transport-agnostic on purpose: the deterministic fuzzer
drives :meth:`ReplicationHub.register` / :meth:`next_batch` /
:meth:`ack` directly with coroutine followers on the virtual-clock
loop, while production wraps the same core in
:class:`ReplicationListener` (a TCP acceptor) and one
:class:`WalShipper` per connection.

Ship batches are read from the segment *files* on disk
(:func:`repro.durability.wal.read_batch`), never from the live
appender, so shipping adds zero work to the dispatcher's single
thread.  The only coupling to the write path is the WAL's ``on_flush``
hook: every group-commit fsync advances the ship horizon and wakes the
shippers — records are shipped exactly when they became durable on the
primary, never earlier (a follower can never hold history the primary
itself would lose in a crash).

Sync replication: with ``sync_replicas = k``, a commit's reply is
withheld (parked by the dispatcher) until at least ``k`` followers
have acked its commit LSN; :attr:`replicated_lsn` is the k-th highest
follower ack and :attr:`on_replicated` tells the dispatcher when it
advances.  Checkpoint retention may delete a lagging follower's next
segment; the hub then falls back to snapshot shipping automatically
(the cursor is *lost*, not an error).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..durability.manager import DurableTransactionManager
from ..durability.wal import read_batch
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from .messages import (
    KIND_ACK,
    KIND_HELLO,
    REPL_MAX_FRAME_BYTES,
    ReplicationError,
    decode_message,
    encode_message,
    records_message,
    snapshot_message,
)

#: Idle shippers emit an empty records frame this often so follower
#: lag gauges stay fresh even on a quiet primary.
HEARTBEAT_INTERVAL = 0.5


@dataclass
class FollowerSlot:
    """One registered follower's ship cursor and ack state."""

    slot_id: int
    node: str
    cursor_lsn: int
    acked_lsn: int = 0
    wake: asyncio.Event = field(default_factory=asyncio.Event)
    snapshots_sent: int = 0
    batches_sent: int = 0
    records_sent: int = 0


class ReplicationHub:
    """Fan-out of the primary's durable WAL suffix to N followers."""

    def __init__(
        self,
        manager: DurableTransactionManager,
        *,
        sync_replicas: int = 0,
        batch_records: int = 512,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: "Callable[[], float] | None" = None,
    ) -> None:
        if manager.wal is None or manager.checkpoints is None:
            raise ReplicationError(
                "replication requires a WAL-backed manager"
            )
        self._manager = manager
        self._wal_dir = manager.wal.directory
        self._checkpoints = manager.checkpoints
        self.sync_replicas = sync_replicas
        self.batch_records = batch_records
        self._registry = registry
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock
        # ``sent_at`` stamps cross a process boundary, so they come
        # from wall time (comparable between processes on one host);
        # the fuzzer overrides both clocks with the shared virtual one.
        self._wall = wall_clock if wall_clock is not None else time.time
        self._slots: dict[int, FollowerSlot] = {}
        self._next_slot = 1
        self._replicated_lsn = 0
        #: Dispatcher hook: called with the new replicated LSN whenever
        #: it advances, so sync-commit waiters can be released.
        self.on_replicated: Callable[[int], None] | None = None
        manager.wal.on_flush = self.notify_durable

    # -- write-path hook ---------------------------------------------------

    @property
    def durable_lsn(self) -> int:
        wal = self._manager.wal
        return wal.durable_lsn if wal is not None else 0

    def notify_durable(self, lsn: int) -> None:
        """The WAL fsynced up to ``lsn``: wake every shipper."""
        for slot in self._slots.values():
            slot.wake.set()
        if self._registry is not None:
            self._registry.gauge("repl.durable_lsn").set(lsn)
        if self.sync_replicas == 0 and self.on_replicated is not None:
            # Nothing parks on replication acks; durability is the bar.
            self.on_replicated(lsn)

    # -- follower registration --------------------------------------------

    def register(
        self, from_lsn: int, node: str
    ) -> "tuple[FollowerSlot, dict[str, Any] | None]":
        """Admit a follower at ``from_lsn``.

        Returns the slot plus an initial snapshot message when the
        follower is fresh (``from_lsn == 0``) — a follower can only
        recover from a checkpoint, so it must be seeded with one.
        """
        slot = FollowerSlot(
            slot_id=self._next_slot, node=node, cursor_lsn=from_lsn
        )
        self._next_slot += 1
        initial: dict[str, Any] | None = None
        if from_lsn == 0:
            initial = self._snapshot_for(slot)
        self._slots[slot.slot_id] = slot
        self._gauge_followers()
        return slot, initial

    def unregister(self, slot: FollowerSlot) -> None:
        self._slots.pop(slot.slot_id, None)
        self._gauge_followers()
        self._advance_replicated()

    def _gauge_followers(self) -> None:
        if self._registry is not None:
            self._registry.gauge("repl.followers").set(len(self._slots))

    def _snapshot_for(self, slot: FollowerSlot) -> dict[str, Any]:
        loaded = self._checkpoints.load_newest()
        if loaded is None:  # pragma: no cover — open() always anchors
            raise ReplicationError(
                "primary has no usable checkpoint to ship"
            )
        state, last_lsn = loaded
        slot.cursor_lsn = last_lsn
        slot.snapshots_sent += 1
        if self._registry is not None:
            self._registry.counter("repl.ship.snapshots").inc()
        return snapshot_message(state, last_lsn)

    # -- shipping ----------------------------------------------------------

    def next_batch(self, slot: FollowerSlot) -> "dict[str, Any] | None":
        """The next message for ``slot``, or ``None`` when caught up.

        Returns a ``records`` message for the durable suffix past the
        slot's cursor, or a ``snapshot`` message when retention has
        dropped the cursor's segment (self-healing resync).
        """
        horizon = self.durable_lsn
        if slot.cursor_lsn >= horizon:
            return None
        started = self._clock()
        batch = read_batch(
            self._wal_dir,
            slot.cursor_lsn,
            up_to_lsn=horizon,
            max_records=self.batch_records,
        )
        if batch is None:
            return self._snapshot_for(slot)
        if not batch:
            return None
        slot.cursor_lsn = batch[-1].lsn
        slot.batches_sent += 1
        slot.records_sent += len(batch)
        if self._registry is not None:
            self._registry.counter("repl.ship.batches").inc()
            self._registry.counter("repl.ship.records").inc(len(batch))
        self._tracer.record(
            "repl.ship",
            slot.node,
            start=started,
            end=self._clock(),
            records=len(batch),
            to_lsn=slot.cursor_lsn,
        )
        return records_message(batch, horizon, self._wall())

    def heartbeat(self) -> dict[str, Any]:
        """An empty records frame carrying the current ship horizon."""
        return records_message([], self.durable_lsn, self._wall())

    # -- acks and the replicated horizon -----------------------------------

    def ack(self, slot: FollowerSlot, applied_lsn: int) -> None:
        if applied_lsn > slot.acked_lsn:
            slot.acked_lsn = applied_lsn
            self._advance_replicated()

    @property
    def replicated_lsn(self) -> int:
        return self._replicated_lsn

    def _advance_replicated(self) -> None:
        if self.sync_replicas <= 0:
            return
        acks = sorted(
            (slot.acked_lsn for slot in self._slots.values()),
            reverse=True,
        )
        level = (
            acks[self.sync_replicas - 1]
            if len(acks) >= self.sync_replicas
            else 0
        )
        if level > self._replicated_lsn:
            self._replicated_lsn = level
            if self._registry is not None:
                self._registry.gauge("repl.replicated_lsn").set(level)
            if self.on_replicated is not None:
                self.on_replicated(level)

    # -- introspection -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        return {
            "role": "primary",
            "sync_replicas": self.sync_replicas,
            "durable_lsn": self.durable_lsn,
            "replicated_lsn": self._replicated_lsn,
            "followers": [
                {
                    "node": slot.node,
                    "cursor_lsn": slot.cursor_lsn,
                    "acked_lsn": slot.acked_lsn,
                    "snapshots_sent": slot.snapshots_sent,
                    "records_sent": slot.records_sent,
                }
                for slot in self._slots.values()
            ],
        }

    def close(self) -> None:
        wal = self._manager.wal
        if wal is not None and wal.on_flush == self.notify_durable:
            wal.on_flush = None
        self._slots.clear()


class WalShipper:
    """One connection's ship loop: tail the hub, push, heartbeat."""

    def __init__(
        self,
        hub: ReplicationHub,
        slot: FollowerSlot,
        writer: asyncio.StreamWriter,
        *,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
    ) -> None:
        self._hub = hub
        self._slot = slot
        self._writer = writer
        self._heartbeat = heartbeat_interval

    async def run(self) -> None:
        while True:
            # Clear before reading: a flush landing mid-read leaves the
            # event set, so the next iteration re-reads instead of
            # sleeping through it.
            self._slot.wake.clear()
            message = self._hub.next_batch(self._slot)
            if message is None:
                try:
                    await asyncio.wait_for(
                        self._slot.wake.wait(), self._heartbeat
                    )
                except asyncio.TimeoutError:
                    message = self._hub.heartbeat()
                else:
                    continue
            self._writer.write(encode_message(message))
            await self._writer.drain()


class ReplicationListener:
    """TCP acceptor for follower links on the primary."""

    def __init__(
        self,
        hub: ReplicationHub,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._hub = hub
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle,
            self._host,
            self._port,
            limit=REPL_MAX_FRAME_BYTES + 2,
        )

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        slot: FollowerSlot | None = None
        shipper_task: asyncio.Task | None = None
        try:
            line = await reader.readline()
            if not line:
                return
            hello = decode_message(line)
            if hello.get("kind") != KIND_HELLO:
                raise ReplicationError(
                    f"expected hello, got {hello.get('kind')!r}"
                )
            slot, initial = self._hub.register(
                int(hello.get("from_lsn", 0)),
                str(hello.get("node", "follower")),
            )
            if initial is not None:
                writer.write(encode_message(initial))
                await writer.drain()
            shipper_task = asyncio.ensure_future(
                WalShipper(self._hub, slot, writer).run()
            )
            while True:
                line = await reader.readline()
                if not line:
                    break
                message = decode_message(line)
                if message.get("kind") == KIND_ACK:
                    self._hub.ack(slot, int(message["applied_lsn"]))
        except (
            ReplicationError,
            ConnectionError,
            asyncio.IncompleteReadError,
        ):
            pass
        except asyncio.CancelledError:
            # Shutdown cancelled this handler mid-read; finish the
            # cleanup below and end the task cleanly (a task left in
            # the cancelled state makes asyncio's stream machinery
            # log a spurious error on close).
            pass
        finally:
            if shipper_task is not None:
                shipper_task.cancel()
                try:
                    await shipper_task
                except (asyncio.CancelledError, ConnectionError):
                    pass
            if slot is not None:
                self._hub.unregister(slot)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
