"""WAL-shipping replication: primary hub, follower applier, failover.

The subsystem streams the primary's segmented WAL to N followers
(group-commit aligned — only fsynced records ship), replays it on each
follower through the recovery path's redo, serves bounded-stale reads
off follower state, and promotes the highest-applied follower through
the stock ``recover --verify`` gate on primary death.

See ``docs/replication.md`` for the protocol, the promotion rules,
and why the paper's version-function semantics make follower reads
formally correct rather than a consistency compromise.
"""

from .context import ROLE_FOLLOWER, ROLE_PRIMARY, ReplicationContext
from .follower import FollowerApplier, FollowerLink, ReconnectBackoff
from .hub import (
    FollowerSlot,
    ReplicationHub,
    ReplicationListener,
    WalShipper,
)
from .messages import (
    REPL_MAX_FRAME_BYTES,
    ReplicationError,
    ack_message,
    decode_message,
    encode_message,
    hello_message,
    records_from_payload,
    records_message,
    snapshot_message,
)
from .promoter import Promoter, promote_in_place

__all__ = [
    "FollowerApplier",
    "FollowerLink",
    "FollowerSlot",
    "Promoter",
    "REPL_MAX_FRAME_BYTES",
    "ROLE_FOLLOWER",
    "ROLE_PRIMARY",
    "ReplicationContext",
    "ReplicationError",
    "ReconnectBackoff",
    "ReplicationHub",
    "ReplicationListener",
    "WalShipper",
    "ack_message",
    "decode_message",
    "encode_message",
    "hello_message",
    "promote_in_place",
    "records_from_payload",
    "records_message",
    "snapshot_message",
]
