"""The server's view of its replication role and machinery.

One :class:`ReplicationContext` hangs off the dispatcher (duck-typed —
the session layer never imports replication classes) and answers the
questions the request path asks: *am I the primary?  where is it?
what's my lag?  does this commit need a replication ack before its
reply?*
"""

from __future__ import annotations

from typing import Any, Callable

from .follower import FollowerApplier, FollowerLink
from .hub import ReplicationHub

ROLE_PRIMARY = "primary"
ROLE_FOLLOWER = "follower"


class ReplicationContext:
    """Role + the live replication objects for one server."""

    def __init__(
        self,
        role: str,
        *,
        hub: ReplicationHub | None = None,
        applier: FollowerApplier | None = None,
        link: FollowerLink | None = None,
        primary_host: str | None = None,
        primary_port: int | None = None,
    ) -> None:
        self.role = role
        self.hub = hub
        self.applier = applier
        self.link = link
        self.primary_host = primary_host
        self.primary_port = primary_port
        #: Installed by the server: synchronous in-place promotion,
        #: returns the promotion report dict.
        self.promote: Callable[..., dict[str, Any]] | None = None

    @property
    def is_follower(self) -> bool:
        return self.role == ROLE_FOLLOWER

    def wants_sync_ack(self) -> bool:
        """Must commit replies wait for follower acks?"""
        return (
            self.role == ROLE_PRIMARY
            and self.hub is not None
            and self.hub.sync_replicas > 0
        )

    def status(self) -> dict[str, Any]:
        if self.role == ROLE_PRIMARY and self.hub is not None:
            return self.hub.status()
        if self.applier is not None:
            payload = self.applier.status()
            payload["role"] = self.role
            payload["primary"] = {
                "host": self.primary_host,
                "port": self.primary_port,
            }
            payload["connected"] = (
                self.link.connected if self.link is not None else False
            )
            return payload
        return {"role": self.role}

    def health(self) -> dict[str, Any]:
        """The /healthz payload: role plus lag, cheap to compute."""
        payload: dict[str, Any] = {"role": self.role}
        if self.applier is not None and self.is_follower:
            payload["applied_lsn"] = self.applier.applied_lsn
            payload["lag_lsn"] = self.applier.lag_lsn
            payload["lag_ms"] = round(self.applier.lag_ms, 3)
        elif self.hub is not None:
            payload["durable_lsn"] = self.hub.durable_lsn
            payload["replicated_lsn"] = self.hub.replicated_lsn
            payload["followers"] = len(self.hub.status()["followers"])
        return payload
