"""Basic timestamp ordering — the abort-happy comparator (Section 2.4).

The paper: "Alternatives to two-phase locking based on timestamps lead
either to long-duration delays (conservative TO) or to aborts of
transactions.  Aborts are undesirable when transactions are of long
duration since a substantial amount of work is undone."

Two variants:

* :class:`TimestampOrdering` — basic TO: every entity carries a read
  and a write timestamp; accesses arriving "too late" abort the
  transaction immediately (no blocking, many aborts under contention);
* :class:`ConservativeTimestampOrdering` — never aborts, but an access
  must wait until no older active transaction could still access the
  entity — modelled by blocking any access while an older transaction
  is active on a conflicting plan entity (long-duration delays).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..storage.database import Database
from .base import AccessResult, ConcurrencyControl, PlannedAccess


@dataclass
class _Stamps:
    read_ts: int = 0
    write_ts: int = 0


class TimestampOrdering(ConcurrencyControl):
    """Basic TO: late reads/writes abort, nothing ever blocks."""

    name = "to"

    def __init__(self, database: Database) -> None:
        self._db = database
        self._clock = itertools.count(1)
        self._timestamps: dict[str, int] = {}
        self._stamps: dict[str, _Stamps] = {}

    def _stamp(self, entity: str) -> _Stamps:
        return self._stamps.setdefault(entity, _Stamps())

    def begin(
        self, txn: str, plan: Sequence[PlannedAccess] | None = None
    ) -> AccessResult:
        self._timestamps[txn] = next(self._clock)
        return AccessResult.ok()

    def read(self, txn: str, entity: str) -> AccessResult:
        ts = self._timestamps[txn]
        stamp = self._stamp(entity)
        if ts < stamp.write_ts:
            return self._too_late(txn, "read", entity)
        stamp.read_ts = max(stamp.read_ts, ts)
        return AccessResult.ok(self._db.store.latest(entity).value)

    def write(self, txn: str, entity: str, value: int) -> AccessResult:
        ts = self._timestamps[txn]
        stamp = self._stamp(entity)
        if ts < stamp.read_ts or ts < stamp.write_ts:
            return self._too_late(txn, "write", entity)
        stamp.write_ts = ts
        self._db.write(entity, value, txn)
        return AccessResult.ok(value)

    def _too_late(self, txn: str, kind: str, entity: str) -> AccessResult:
        self.abort(txn, reason=f"late {kind} of {entity}")
        return AccessResult.abort(f"late {kind} of {entity}")

    def commit(self, txn: str) -> AccessResult:
        self._timestamps.pop(txn, None)
        return AccessResult.ok()

    def abort(self, txn: str, reason: str = "requested") -> AccessResult:
        self._db.store.expunge_author(txn)
        self._timestamps.pop(txn, None)
        return AccessResult(status=AccessResult.ok().status, reason=reason)


class ConservativeTimestampOrdering(ConcurrencyControl):
    """Conservative TO: no aborts, long waits.

    An access by transaction ``t`` must wait while any *older* active
    transaction's declared plan still conflicts on the entity — the
    scheduler refuses to act out of timestamp order.  This models the
    long-duration-delay horn of the paper's dilemma.
    """

    name = "conservative-to"

    def __init__(self, database: Database) -> None:
        self._db = database
        self._clock = itertools.count(1)
        self._timestamps: dict[str, int] = {}
        self._plans: dict[str, dict[str, bool]] = {}  # entity -> writes?
        self._waiters: dict[str, str] = {}  # txn -> entity

    def begin(
        self, txn: str, plan: Sequence[PlannedAccess] | None = None
    ) -> AccessResult:
        self._timestamps[txn] = next(self._clock)
        remaining: dict[str, bool] = {}
        for access in plan or ():
            remaining[access.entity] = (
                remaining.get(access.entity, False) or access.is_write
            )
        self._plans[txn] = remaining
        return AccessResult.ok()

    def _older_conflict(self, txn: str, entity: str, writing: bool) -> bool:
        ts = self._timestamps[txn]
        for other, other_ts in self._timestamps.items():
            if other == txn or other_ts >= ts:
                continue
            plan = self._plans.get(other, {})
            if entity in plan and (writing or plan[entity]):
                return True
        return False

    def read(self, txn: str, entity: str) -> AccessResult:
        if self._older_conflict(txn, entity, writing=False):
            self._waiters[txn] = entity
            return AccessResult.blocked(entity)
        self._waiters.pop(txn, None)
        return AccessResult.ok(self._db.store.latest(entity).value)

    def write(self, txn: str, entity: str, value: int) -> AccessResult:
        if self._older_conflict(txn, entity, writing=True):
            self._waiters[txn] = entity
            return AccessResult.blocked(entity)
        self._waiters.pop(txn, None)
        self._db.write(entity, value, txn)
        plan = self._plans.get(txn)
        if plan is not None and entity in plan:
            # One fewer pending conflicting access (approximation: a
            # write retires the entity from the declared plan).
            del plan[entity]
        return AccessResult.ok(value)

    def _release(self, txn: str) -> list[str]:
        self._timestamps.pop(txn, None)
        self._plans.pop(txn, None)
        self._waiters.pop(txn, None)
        return sorted(self._waiters)

    def commit(self, txn: str) -> AccessResult:
        result = AccessResult.ok()
        result.unblocked = self._release(txn)
        return result

    def abort(self, txn: str, reason: str = "requested") -> AccessResult:
        self._db.store.expunge_author(txn)
        result = AccessResult(status=AccessResult.ok().status, reason=reason)
        result.unblocked = self._release(txn)
        return result
