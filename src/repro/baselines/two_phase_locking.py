"""Strict two-phase locking — the classical comparator (Sections 1, 2.4).

The paper's motivation: Yannakakis showed that without structural
assumptions 2PL is *necessary* for serializability, and 2PL "imposes
long duration waiting" because locks are held for a substantial
fraction of the transaction — under the strict variant implemented
here, until commit.

Features:

* shared/exclusive entity locks with upgrade;
* FIFO wait queues;
* waits-for-graph deadlock detection on every block, aborting the
  youngest transaction in the cycle (its work is lost — exactly the
  cost §2.4 says is unacceptable for long transactions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from ..storage.database import Database
from .base import AccessResult, AccessStatus, ConcurrencyControl, PlannedAccess


class _Mode(enum.Enum):
    S = "S"
    X = "X"


@dataclass
class _Waiter:
    txn: str
    entity: str
    mode: _Mode
    value: int | None  # pending write value for X waits caused by writes
    is_write: bool


@dataclass
class _EntityLock:
    shared: set[str] = field(default_factory=set)
    exclusive: str | None = None
    queue: list[_Waiter] = field(default_factory=list)


class StrictTwoPhaseLocking(ConcurrencyControl):
    """Strict 2PL over a single-version view of the database.

    Writes are applied to the store at write time (new version per
    write — the store is append-only) but readers always see the
    latest version, so the behaviour is classical single-version 2PL.
    On abort the transaction's versions are expunged.

    ``deadlock_policy`` selects how deadlocks are handled:

    * ``"detect"`` (default) — waits-for-graph detection on every
      block, aborting the youngest transaction in the cycle;
    * ``"wait-die"`` — prevention: an older requester waits, a younger
      one dies (aborts) immediately;
    * ``"wound-wait"`` — prevention: an older requester wounds
      (aborts) younger holders, a younger one waits.
    """

    name = "s2pl"

    def __init__(
        self, database: Database, deadlock_policy: str = "detect"
    ) -> None:
        if deadlock_policy not in ("detect", "wait-die", "wound-wait"):
            raise ValueError(
                f"unknown deadlock policy {deadlock_policy!r}"
            )
        self._db = database
        self._policy = deadlock_policy
        if deadlock_policy != "detect":
            self.name = f"s2pl-{deadlock_policy}"
        self._locks: dict[str, _EntityLock] = {}
        self._active: dict[str, int] = {}  # txn -> start sequence
        self._sequence = 0
        self._waiting_on: dict[str, str] = {}  # txn -> entity
        self.deadlocks_detected = 0
        self.preventions = 0

    def _entry(self, entity: str) -> _EntityLock:
        return self._locks.setdefault(entity, _EntityLock())

    # -- lifecycle ----------------------------------------------------------

    def begin(
        self, txn: str, plan: Sequence[PlannedAccess] | None = None
    ) -> AccessResult:
        self._sequence += 1
        self._active[txn] = self._sequence
        return AccessResult.ok()

    def commit(self, txn: str) -> AccessResult:
        if txn not in self._active:
            return AccessResult.abort("unknown transaction")
        unblocked = self._release_all(txn)
        del self._active[txn]
        result = AccessResult.ok()
        result.unblocked = unblocked
        return result

    def abort(self, txn: str, reason: str = "requested") -> AccessResult:
        if txn not in self._active:
            return AccessResult.ok()
        self._db.store.expunge_author(txn)
        unblocked = self._release_all(txn)
        del self._active[txn]
        self._waiting_on.pop(txn, None)
        result = AccessResult(AccessStatus.OK, reason=reason)
        result.unblocked = unblocked
        return result

    # -- accesses --------------------------------------------------------------

    def read(self, txn: str, entity: str) -> AccessResult:
        entry = self._entry(entity)
        if entry.exclusive not in (None, txn):
            return self._block(txn, entity, _Mode.S, None, False)
        entry.shared.add(txn)
        return AccessResult.ok(self._db.store.latest(entity).value)

    def write(self, txn: str, entity: str, value: int) -> AccessResult:
        entry = self._entry(entity)
        other_shared = entry.shared - {txn}
        if entry.exclusive not in (None, txn) or other_shared:
            return self._block(txn, entity, _Mode.X, value, True)
        entry.shared.discard(txn)
        entry.exclusive = txn
        self._db.write(entity, value, txn)
        return AccessResult.ok(value)

    # -- blocking & deadlock --------------------------------------------------------

    def _block(
        self,
        txn: str,
        entity: str,
        mode: _Mode,
        value: int | None,
        is_write: bool,
    ) -> AccessResult:
        if self._policy != "detect":
            return self._prevent(txn, entity, mode, value, is_write)
        entry = self._entry(entity)
        entry.queue.append(_Waiter(txn, entity, mode, value, is_write))
        self._waiting_on[txn] = entity
        victim = self._detect_deadlock(txn)
        if victim is not None:
            self.deadlocks_detected += 1
            if victim == txn:
                self._remove_from_queues(txn)
                self._waiting_on.pop(txn, None)
                result = self.abort(txn, reason="deadlock victim")
                aborted_result = AccessResult.abort("deadlock victim")
                aborted_result.unblocked = result.unblocked
                return aborted_result
            victim_result = self.abort(victim, reason="deadlock victim")
            # The victim's released locks may let our request through.
            result = AccessResult.blocked(entity)
            result.aborted = [victim]
            result.unblocked = victim_result.unblocked
            return result
        return AccessResult.blocked(entity)

    def _prevent(
        self,
        txn: str,
        entity: str,
        mode: _Mode,
        value: int | None,
        is_write: bool,
    ) -> AccessResult:
        """Wait-die / wound-wait: age decides who waits and who aborts.

        Smaller start sequence = older.  Wait-die: older waits, younger
        dies.  Wound-wait: older wounds younger holders, younger waits.
        """
        entry = self._entry(entity)
        if mode is _Mode.S:
            conflicting = {entry.exclusive} - {None, txn}
        else:
            conflicting = (entry.shared | {entry.exclusive}) - {
                None,
                txn,
            }
        my_age = self._active.get(txn, 0)
        if self._policy == "wait-die":
            if all(
                my_age < self._active.get(holder, 0)
                for holder in conflicting
            ):
                entry.queue.append(
                    _Waiter(txn, entity, mode, value, is_write)
                )
                self._waiting_on[txn] = entity
                return AccessResult.blocked(entity)
            self.preventions += 1
            inner = self.abort(txn, reason="wait-die: younger dies")
            result = AccessResult.abort("wait-die: younger dies")
            result.unblocked = inner.unblocked
            return result
        # wound-wait
        younger = {
            holder
            for holder in conflicting
            if self._active.get(holder, 0) > my_age
        }
        result = AccessResult.blocked(entity)
        for victim in sorted(younger):
            self.preventions += 1
            inner = self.abort(victim, reason="wound-wait: wounded")
            result.aborted.append(victim)
            result.unblocked.extend(
                u for u in inner.unblocked if u not in result.unblocked
            )
        entry.queue.append(_Waiter(txn, entity, mode, value, is_write))
        self._waiting_on[txn] = entity
        # Wounding may have freed the lock already; drain grants us.
        granted = self._drain(entity, entry)
        result.unblocked.extend(
            g for g in granted if g not in result.unblocked
        )
        return result

    def _holders(self, entity: str) -> set[str]:
        entry = self._entry(entity)
        holders = set(entry.shared)
        if entry.exclusive is not None:
            holders.add(entry.exclusive)
        return holders

    def _detect_deadlock(self, start: str) -> str | None:
        """Find a cycle in waits-for; return the youngest transaction.

        Waits-for is derived from the live queues: every queued request
        waits for every current holder of its entity (a transaction may
        have several queued requests at once under partial-order
        programs).  Queue predecessors requesting incompatibly are
        ignored for simplicity — holders dominate cycle formation.
        """
        edges: dict[str, set[str]] = {}
        for entity, entry in self._locks.items():
            holders = self._holders(entity)
            for waiter in entry.queue:
                edges.setdefault(waiter.txn, set()).update(
                    holders - {waiter.txn}
                )
        # DFS from `start` looking for a cycle containing it.
        path: list[str] = []
        visited: set[str] = set()

        def dfs(node: str) -> list[str] | None:
            if node in path:
                return path[path.index(node) :]
            if node in visited:
                return None
            visited.add(node)
            path.append(node)
            for neighbour in sorted(edges.get(node, ())):
                cycle = dfs(neighbour)
                if cycle is not None:
                    return cycle
            path.pop()
            return None

        cycle = dfs(start)
        if not cycle:
            return None
        return max(cycle, key=lambda txn: self._active.get(txn, 0))

    def _remove_from_queues(self, txn: str) -> None:
        for entry in self._locks.values():
            entry.queue = [w for w in entry.queue if w.txn != txn]

    def _release_all(self, txn: str) -> list[str]:
        unblocked: list[str] = []
        for entity, entry in self._locks.items():
            entry.shared.discard(txn)
            if entry.exclusive == txn:
                entry.exclusive = None
            entry.queue = [w for w in entry.queue if w.txn != txn]
        for entity, entry in self._locks.items():
            unblocked.extend(self._drain(entity, entry))
        return unblocked

    def _drain(self, entity: str, entry: _EntityLock) -> list[str]:
        granted: list[str] = []
        while entry.queue:
            waiter = entry.queue[0]
            if waiter.mode is _Mode.S:
                if entry.exclusive not in (None, waiter.txn):
                    break
                entry.shared.add(waiter.txn)
            else:
                others = entry.shared - {waiter.txn}
                if entry.exclusive not in (None, waiter.txn) or others:
                    break
                entry.shared.discard(waiter.txn)
                entry.exclusive = waiter.txn
                # The write itself happens when the engine re-executes
                # the unblocked step — granting here only takes the lock.
            entry.queue.pop(0)
            self._waiting_on.pop(waiter.txn, None)
            granted.append(waiter.txn)
        return granted
