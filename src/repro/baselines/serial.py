"""Serial execution — the zero-concurrency reference point.

One transaction at a time, in arrival order.  Trivially correct and
trivially deadlock/abort-free; its makespan is the upper bound every
concurrent scheduler should beat, which makes it the natural
denominator for the benchmarks' concurrency-gain numbers.
"""

from __future__ import annotations

from typing import Sequence

from ..storage.database import Database
from .base import AccessResult, ConcurrencyControl, PlannedAccess


class SerialExecution(ConcurrencyControl):
    """Admit one active transaction; queue the rest at ``begin``."""

    name = "serial"

    def __init__(self, database: Database) -> None:
        self._db = database
        self._current: str | None = None
        self._queue: list[str] = []

    def begin(
        self, txn: str, plan: Sequence[PlannedAccess] | None = None
    ) -> AccessResult:
        if self._current is None or self._current == txn:
            # Second case: a parked transaction re-executing its begin
            # after its turn arrived.
            self._current = txn
            return AccessResult.ok()
        if txn not in self._queue:
            self._queue.append(txn)
        return AccessResult.blocked("<serial-turn>")

    def read(self, txn: str, entity: str) -> AccessResult:
        self._require_turn(txn)
        return AccessResult.ok(self._db.store.latest(entity).value)

    def write(self, txn: str, entity: str, value: int) -> AccessResult:
        self._require_turn(txn)
        self._db.write(entity, value, txn)
        return AccessResult.ok(value)

    def commit(self, txn: str) -> AccessResult:
        self._require_turn(txn)
        return self._advance()

    def abort(self, txn: str, reason: str = "requested") -> AccessResult:
        self._db.store.expunge_author(txn)
        if self._current == txn:
            result = self._advance()
            result.reason = reason
            return result
        if txn in self._queue:
            self._queue.remove(txn)
        return AccessResult(status=AccessResult.ok().status, reason=reason)

    def _advance(self) -> AccessResult:
        result = AccessResult.ok()
        self._current = self._queue.pop(0) if self._queue else None
        if self._current is not None:
            result.unblocked = [self._current]
        return result

    def _require_turn(self, txn: str) -> None:
        if self._current != txn:
            raise RuntimeError(
                f"{txn} acted out of turn under serial execution"
            )
