"""The Section-5 protocol behind the common scheduler interface.

:class:`KorthSpeegleScheduler` adapts
:class:`~repro.protocol.scheduler.TransactionManager` to the
:class:`~repro.baselines.base.ConcurrencyControl` interface so the
simulator can race it against the classical baselines.

Key behavioural mappings:

* ``begin`` defines a top-level subtransaction (child of the root) with
  a specification derived from the declared plan — the input constraint
  mentions every entity the plan reads (the paper requires this), the
  update set is the plan's write set — then runs validation;
* writes use the split begin/end so the simulator can model the short
  ``W``-lock window;
* commits that must wait for partial-order predecessors surface as
  ``BLOCKED`` and are released when the predecessor commits;
* re-evaluation aborts/re-assignments are propagated through the
  result's ``aborted``/``unblocked`` lists.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..core.predicates import Atom, Clause, Predicate
from ..core.transactions import Spec
from ..errors import ProtocolError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..protocol.scheduler import Outcome, TransactionManager, TxnPhase
from ..protocol.validation import VersionSelector
from ..storage.database import Database
from .base import AccessResult, ConcurrencyControl, PlannedAccess

SpecBuilder = Callable[[Sequence[PlannedAccess]], Spec]


def default_spec_builder(database: Database) -> SpecBuilder:
    """Plan → specification: read entities appear in ``I_t``.

    The generated input constraint asserts each read entity sits in its
    domain (trivially satisfiable but *mentions* the entity, which is
    what the model requires of ``N_t``); the output condition restates
    the same for written entities.
    """

    def build(plan: Sequence[PlannedAccess]) -> Spec:
        read_entities = sorted(
            {access.entity for access in plan if not access.is_write}
        )
        written = sorted(
            {access.entity for access in plan if access.is_write}
        )

        def domain_clauses(names: Iterable[str]) -> list[Clause]:
            clauses = []
            for name in names:
                domain = database.schema[name].domain
                low = min(domain) if len(domain) < 10**6 else None
                bound = low if low is not None else 0
                clauses.append(
                    Clause.of(Atom.of(name, ">=", bound))
                )
            return clauses

        return Spec(
            Predicate(domain_clauses(read_entities)),
            Predicate(domain_clauses(written)),
        )

    return build


class KorthSpeegleScheduler(ConcurrencyControl):
    """The paper's protocol as a drivable scheduler."""

    name = "korth-speegle"

    def __init__(
        self,
        database: Database,
        selector: VersionSelector | None = None,
        spec_builder: SpecBuilder | None = None,
    ) -> None:
        self._db = database
        self._tm = TransactionManager(database, selector=selector)
        self._spec_builder = (
            spec_builder
            if spec_builder is not None
            else default_spec_builder(database)
        )
        self._names: dict[str, str] = {}  # engine id -> protocol name
        self._ids: dict[str, str] = {}  # protocol name -> engine id
        self._commit_waiters: list[str] = []
        self._pending_predecessors: dict[str, list[str]] = {}
        self._tracer: Tracer = NULL_TRACER

    @property
    def manager(self) -> TransactionManager:
        return self._tm

    def set_tracer(self, tracer: Tracer) -> None:
        """Share the simulator's tracer with the protocol layers.

        Protocol-level spans (validate/read/write/commit) are recorded
        under the engine's transaction ids via tracer aliases, so one
        transaction's simulator and protocol spans form one timeline.
        """
        self._tracer = tracer
        self._tm.set_tracer(tracer)
        for name, engine_id in self._ids.items():
            tracer.alias(name, engine_id)

    def set_registry(self, registry: MetricsRegistry | None) -> None:
        """Feed protocol-level histograms (lock-queue depth,
        validation latency) into the run's metrics registry."""
        self._tm.set_registry(registry)

    def _protocol_name(self, txn: str) -> str:
        try:
            return self._names[txn]
        except KeyError:
            raise ProtocolError(f"unknown transaction {txn}") from None

    def _engine_ids(self, protocol_names: Iterable[str]) -> list[str]:
        return [
            self._ids[name] for name in protocol_names if name in self._ids
        ]

    # -- lifecycle ----------------------------------------------------------

    def begin(
        self,
        txn: str,
        plan: Sequence[PlannedAccess] | None = None,
        predecessors: Sequence[str] = (),
    ) -> AccessResult:
        plan = plan or ()
        if txn not in self._names:
            spec = self._spec_builder(plan)
            updates = {access.entity for access in plan if access.is_write}
            predecessor_names = [
                self._names[p] for p in predecessors if p in self._names
            ]
            live_predecessors = [
                p
                for p in predecessor_names
                if self._tm.phase(p)
                not in (TxnPhase.ABORTED,)
            ]
            name = self._tm.define(
                self._tm.root,
                spec,
                updates,
                predecessors=live_predecessors,
            )
            self._names[txn] = name
            self._ids[name] = txn
            self._tracer.alias(name, txn)
        name = self._names[txn]
        step = self._tm.validate(name)
        return self._convert(step)

    def read(self, txn: str, entity: str) -> AccessResult:
        step = self._tm.read(self._protocol_name(txn), entity)
        return self._convert(step)

    def write(self, txn: str, entity: str, value: int) -> AccessResult:
        name = self._protocol_name(txn)
        self._tm.begin_write(name, entity)
        step = self._tm.end_write(name, entity, value)
        return self._convert(step)

    def supports_split_writes(self) -> bool:
        return True

    def write_begin(self, txn: str, entity: str) -> AccessResult:
        step = self._tm.begin_write(self._protocol_name(txn), entity)
        return self._convert(step)

    def write_end(self, txn: str, entity: str, value: int) -> AccessResult:
        step = self._tm.end_write(self._protocol_name(txn), entity, value)
        return self._convert(step)

    def commit(self, txn: str) -> AccessResult:
        name = self._protocol_name(txn)
        ok, reason = self._tm.can_commit(name)
        if not ok and "predecessor" in reason:
            if txn not in self._commit_waiters:
                self._commit_waiters.append(txn)
            return AccessResult.blocked(reason)
        if not ok:
            inner = self._tm.abort(name, reason=reason)
            result = AccessResult.abort(reason)
            result.aborted = self._engine_ids(
                n for n in inner if n != name
            )
            return result
        step = self._tm.commit(name)
        result = self._convert(step)
        result.unblocked.extend(self._ripe_commit_waiters())
        return result

    def abort(self, txn: str, reason: str = "requested") -> AccessResult:
        name = self._names.get(txn)
        result = AccessResult(status=AccessResult.ok().status, reason=reason)
        if name is None:
            return result
        cascade = self._tm.abort(name, reason=reason)
        result.aborted = self._engine_ids(n for n in cascade if n != name)
        result.unblocked = self._ripe_commit_waiters()
        if txn in self._commit_waiters:
            self._commit_waiters.remove(txn)
        return result

    def _ripe_commit_waiters(self) -> list[str]:
        """Commit-blocked transactions whose predecessors are done."""
        ripe: list[str] = []
        for waiter in list(self._commit_waiters):
            name = self._names.get(waiter)
            if name is None or self._tm.record(name).terminated:
                self._commit_waiters.remove(waiter)
                continue
            ok, reason = self._tm.can_commit(name)
            if ok or "predecessor" not in (reason or ""):
                self._commit_waiters.remove(waiter)
                ripe.append(waiter)
        return ripe

    # -- conversion ---------------------------------------------------------------

    def _convert(self, step) -> AccessResult:
        if step.outcome is Outcome.OK:
            result = AccessResult.ok(step.value)
        elif step.outcome is Outcome.BLOCKED:
            result = AccessResult.blocked(step.blocked_on or "?")
        else:
            result = AccessResult.abort(step.reason or "protocol failure")
        result.aborted = self._engine_ids(step.aborted)
        result.unblocked = self._engine_ids(step.unblocked)
        result.unblocked.extend(
            waiter
            for waiter in self._ripe_commit_waiters()
            if waiter not in result.unblocked
        )
        return result
