"""Common interface for every concurrency-control implementation.

The simulator drives the Section-5 protocol and the classical baselines
through one interface, so the long-duration benchmarks compare like
with like.  The interface is synchronous and event-friendly:

* steps return an :class:`AccessResult` whose status is ``OK``,
  ``BLOCKED`` (the caller parks until the transaction appears in some
  later result's ``unblocked`` list) or ``ABORTED`` (the caller
  restarts the transaction under a fresh identity);
* every result carries the transactions a step unblocked or aborted as
  side effects, so the engine never polls.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence


class AccessStatus(enum.Enum):
    OK = "ok"
    BLOCKED = "blocked"
    ABORTED = "aborted"


@dataclass
class AccessResult:
    """Outcome of one scheduler step (see module docstring)."""

    status: AccessStatus
    value: int | None = None
    blocked_on: str | None = None
    unblocked: list[str] = field(default_factory=list)
    aborted: list[str] = field(default_factory=list)
    reason: str | None = None

    @classmethod
    def ok(cls, value: int | None = None) -> "AccessResult":
        return cls(AccessStatus.OK, value=value)

    @classmethod
    def blocked(cls, entity: str) -> "AccessResult":
        return cls(AccessStatus.BLOCKED, blocked_on=entity)

    @classmethod
    def abort(cls, reason: str) -> "AccessResult":
        return cls(AccessStatus.ABORTED, reason=reason)


@dataclass(frozen=True)
class PlannedAccess:
    """One declared step of a transaction's access plan."""

    kind: str  # "read" | "write"
    entity: str

    @property
    def is_write(self) -> bool:
        return self.kind == "write"


class ConcurrencyControl(ABC):
    """Abstract scheduler driven by the simulator.

    ``begin`` receives the transaction's full access *plan* (the
    declared reads/writes).  The Section-5 protocol needs it to build
    the input constraint and update set; predicate-wise 2PL needs it
    for per-conjunct early release; pure dynamic schedulers may ignore
    it.
    """

    name: str = "abstract"

    @abstractmethod
    def begin(
        self, txn: str, plan: Sequence[PlannedAccess] | None = None
    ) -> AccessResult:
        """Register a transaction (and pass its declared plan)."""

    @abstractmethod
    def read(self, txn: str, entity: str) -> AccessResult:
        """Request a read of the entity's (scheduler-chosen) value."""

    @abstractmethod
    def write(self, txn: str, entity: str, value: int) -> AccessResult:
        """Request a write installing ``value``."""

    @abstractmethod
    def commit(self, txn: str) -> AccessResult:
        """Attempt to commit; may block (waiting on predecessors) or
        fail."""

    @abstractmethod
    def abort(self, txn: str, reason: str = "requested") -> AccessResult:
        """Abort a transaction; the result lists cascade victims."""

    def supports_split_writes(self) -> bool:
        """Does the scheduler expose write_begin/write_end?

        The Section-5 protocol holds its ``W`` lock only for the write
        operation's duration; exposing the split lets the simulator
        model that window.  Schedulers without the split are driven via
        atomic :meth:`write`.
        """
        return False

    def write_begin(self, txn: str, entity: str) -> AccessResult:
        raise NotImplementedError

    def write_end(self, txn: str, entity: str, value: int) -> AccessResult:
        raise NotImplementedError
