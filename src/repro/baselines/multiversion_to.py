"""Multiversion timestamp ordering (MVTO).

The strongest classical comparator: reads never block and never abort
(every read is served the youngest version older than the reader), and
only writes that would invalidate an already-performed read abort.
Still enforces (multiversion) serializability, so it cannot admit the
cooperative non-serializable executions the Section-5 protocol exists
for — the benchmarks show it aborting where the paper's protocol
re-assigns.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..storage.database import Database
from .base import AccessResult, ConcurrencyControl, PlannedAccess


@dataclass
class _MVVersion:
    value: int
    write_ts: int
    author: str
    read_ts: int = 0


class MultiversionTimestampOrdering(ConcurrencyControl):
    """Classical MVTO over its own version chains.

    Versions live in scheduler-private chains (stamped with writer
    timestamps); committed values are mirrored into the shared store so
    post-run state inspection works like the other schedulers.
    """

    name = "mvto"

    def __init__(self, database: Database) -> None:
        self._db = database
        self._clock = itertools.count(1)
        self._timestamps: dict[str, int] = {}
        self._chains: dict[str, list[_MVVersion]] = {}
        for entity in database.schema.names:
            initial = database.store.initial(entity)
            self._chains[entity] = [
                _MVVersion(initial.value, 0, "t_0")
            ]

    def begin(
        self, txn: str, plan: Sequence[PlannedAccess] | None = None
    ) -> AccessResult:
        self._timestamps[txn] = next(self._clock)
        return AccessResult.ok()

    def _visible(self, entity: str, ts: int) -> _MVVersion:
        chain = self._chains[entity]
        candidates = [v for v in chain if v.write_ts <= ts]
        return max(candidates, key=lambda v: v.write_ts)

    def read(self, txn: str, entity: str) -> AccessResult:
        ts = self._timestamps[txn]
        version = self._visible(entity, ts)
        version.read_ts = max(version.read_ts, ts)
        return AccessResult.ok(version.value)

    def write(self, txn: str, entity: str, value: int) -> AccessResult:
        ts = self._timestamps[txn]
        predecessor = self._visible(entity, ts)
        if predecessor.read_ts > ts:
            # A younger transaction already read the predecessor: our
            # version would retroactively invalidate that read.
            self.abort(txn, reason=f"late write of {entity}")
            return AccessResult.abort(f"late write of {entity}")
        self._chains[entity].append(_MVVersion(value, ts, txn))
        self._db.write(entity, value, txn)
        return AccessResult.ok(value)

    def commit(self, txn: str) -> AccessResult:
        self._timestamps.pop(txn, None)
        return AccessResult.ok()

    def abort(self, txn: str, reason: str = "requested") -> AccessResult:
        for chain in self._chains.values():
            chain[:] = [v for v in chain if v.author != txn]
        self._db.store.expunge_author(txn)
        self._timestamps.pop(txn, None)
        return AccessResult(status=AccessResult.ok().status, reason=reason)
