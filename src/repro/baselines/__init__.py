"""Classical concurrency-control baselines and the protocol adapter."""

from .base import (
    AccessResult,
    AccessStatus,
    ConcurrencyControl,
    PlannedAccess,
)
from .korth_speegle import KorthSpeegleScheduler, default_spec_builder
from .multiversion_to import MultiversionTimestampOrdering
from .predicatewise_2pl import PredicatewiseTwoPhaseLocking
from .serial import SerialExecution
from .timestamp import ConservativeTimestampOrdering, TimestampOrdering
from .two_phase_locking import StrictTwoPhaseLocking

__all__ = [
    "AccessResult",
    "AccessStatus",
    "ConcurrencyControl",
    "ConservativeTimestampOrdering",
    "KorthSpeegleScheduler",
    "MultiversionTimestampOrdering",
    "PlannedAccess",
    "PredicatewiseTwoPhaseLocking",
    "SerialExecution",
    "StrictTwoPhaseLocking",
    "TimestampOrdering",
    "default_spec_builder",
]
