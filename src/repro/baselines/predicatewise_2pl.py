"""Predicate-wise two-phase locking (from [Korth et al. 1988]).

The protocol behind the PWSR class (Section 4.2): if the consistency
constraint is CNF, it suffices to be two-phase *per conjunct*.  A
transaction acquires locks in every conjunct an entity belongs to, but
may release a conjunct's locks as soon as its declared plan has no
remaining accesses in that conjunct — long before commit.  Conjuncts
therefore stop blocking each other, shortening waits relative to
strict 2PL while still guaranteeing PWSR (hence consistency).

The paper names this protocol as representable in its model; it serves
as the intermediate baseline between strict 2PL and the Section-5
protocol in the long-transaction benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from ..storage.database import Database
from .base import AccessResult, ConcurrencyControl, PlannedAccess


class _Mode(enum.Enum):
    S = "S"
    X = "X"


@dataclass
class _ScopeLock:
    """Lock state for one (conjunct, entity) scope."""

    shared: set[str] = field(default_factory=set)
    exclusive: str | None = None
    queue: list[tuple[str, _Mode]] = field(default_factory=list)


class PredicatewiseTwoPhaseLocking(ConcurrencyControl):
    """2PL applied independently within each constraint conjunct."""

    name = "pw2pl"

    def __init__(self, database: Database) -> None:
        self._db = database
        objects = [set(obj) for obj in database.objects() if obj]
        if not objects:
            objects = [set(database.schema.names)]
        self._conjuncts: list[set[str]] = objects
        self._membership: dict[str, list[int]] = {}
        for entity in database.schema.names:
            self._membership[entity] = [
                index
                for index, obj in enumerate(self._conjuncts)
                if entity in obj
            ] or [-1]
        self._locks: dict[tuple[int, str], _ScopeLock] = {}
        # txn -> conjunct -> remaining declared accesses
        self._remaining: dict[str, dict[int, int]] = {}
        self._active: dict[str, int] = {}
        self._sequence = 0
        self._waiting_on: dict[str, tuple[int, str]] = {}
        self.deadlocks_detected = 0

    def _scope(self, conjunct: int, entity: str) -> _ScopeLock:
        return self._locks.setdefault((conjunct, entity), _ScopeLock())

    # -- lifecycle ----------------------------------------------------------

    def begin(
        self, txn: str, plan: Sequence[PlannedAccess] | None = None
    ) -> AccessResult:
        self._sequence += 1
        self._active[txn] = self._sequence
        remaining: dict[int, int] = {}
        for access in plan or ():
            for conjunct in self._membership.get(access.entity, [-1]):
                remaining[conjunct] = remaining.get(conjunct, 0) + 1
        self._remaining[txn] = remaining
        return AccessResult.ok()

    def commit(self, txn: str) -> AccessResult:
        unblocked = self._release_everything(txn)
        result = AccessResult.ok()
        result.unblocked = unblocked
        return result

    def abort(self, txn: str, reason: str = "requested") -> AccessResult:
        self._db.store.expunge_author(txn)
        unblocked = self._release_everything(txn)
        result = AccessResult(status=AccessResult.ok().status, reason=reason)
        result.unblocked = unblocked
        return result

    # -- accesses --------------------------------------------------------------

    def read(self, txn: str, entity: str) -> AccessResult:
        grant = self._acquire(txn, entity, _Mode.S)
        if grant is not None:
            return grant
        result = AccessResult.ok(self._db.store.latest(entity).value)
        result.unblocked = self._account_access(txn, entity)
        return result

    def write(self, txn: str, entity: str, value: int) -> AccessResult:
        grant = self._acquire(txn, entity, _Mode.X)
        if grant is not None:
            return grant
        self._db.write(entity, value, txn)
        result = AccessResult.ok(value)
        result.unblocked = self._account_access(txn, entity)
        return result

    def _acquire(
        self, txn: str, entity: str, mode: _Mode
    ) -> AccessResult | None:
        """Take the lock in every conjunct scope; None means granted."""
        scopes = self._membership.get(entity, [-1])
        for conjunct in scopes:
            scope = self._scope(conjunct, entity)
            if mode is _Mode.S:
                blocked = scope.exclusive not in (None, txn)
            else:
                blocked = (
                    scope.exclusive not in (None, txn)
                    or bool(scope.shared - {txn})
                )
            if blocked:
                scope.queue.append((txn, mode))
                self._waiting_on[txn] = (conjunct, entity)
                victim = self._detect_deadlock(txn)
                if victim is not None:
                    self.deadlocks_detected += 1
                    if victim == txn:
                        self._unqueue(txn)
                        self._waiting_on.pop(txn, None)
                        inner = self.abort(txn, reason="deadlock victim")
                        result = AccessResult.abort("deadlock victim")
                        result.unblocked = inner.unblocked
                        return result
                    inner = self.abort(victim, reason="deadlock victim")
                    result = AccessResult.blocked(entity)
                    result.aborted = [victim]
                    result.unblocked = inner.unblocked
                    return result
                return AccessResult.blocked(entity)
        for conjunct in scopes:
            scope = self._scope(conjunct, entity)
            if mode is _Mode.S:
                scope.shared.add(txn)
            else:
                scope.shared.discard(txn)
                scope.exclusive = txn
        self._waiting_on.pop(txn, None)
        return None

    def _account_access(self, txn: str, entity: str) -> list[str]:
        """Early release: free conjuncts with no remaining accesses."""
        unblocked: list[str] = []
        remaining = self._remaining.get(txn)
        if remaining is None:
            return unblocked
        for conjunct in self._membership.get(entity, [-1]):
            if conjunct not in remaining:
                continue
            remaining[conjunct] -= 1
            if remaining[conjunct] <= 0:
                del remaining[conjunct]
                unblocked.extend(self._release_conjunct(txn, conjunct))
        return unblocked

    # -- release ----------------------------------------------------------------

    def _release_conjunct(self, txn: str, conjunct: int) -> list[str]:
        unblocked: list[str] = []
        for (scope_conjunct, entity), scope in self._locks.items():
            if scope_conjunct != conjunct:
                continue
            scope.shared.discard(txn)
            if scope.exclusive == txn:
                scope.exclusive = None
            unblocked.extend(self._drain(scope))
        return unblocked

    def _release_everything(self, txn: str) -> list[str]:
        unblocked: list[str] = []
        for scope in self._locks.values():
            scope.shared.discard(txn)
            if scope.exclusive == txn:
                scope.exclusive = None
            scope.queue = [w for w in scope.queue if w[0] != txn]
        for scope in self._locks.values():
            unblocked.extend(self._drain(scope))
        self._active.pop(txn, None)
        self._remaining.pop(txn, None)
        self._waiting_on.pop(txn, None)
        return unblocked

    def _drain(self, scope: _ScopeLock) -> list[str]:
        granted: list[str] = []
        while scope.queue:
            waiter, mode = scope.queue[0]
            if mode is _Mode.S:
                if scope.exclusive not in (None, waiter):
                    break
            else:
                if scope.exclusive not in (None, waiter) or (
                    scope.shared - {waiter}
                ):
                    break
            # Lock is re-requested when the engine re-executes the step.
            scope.queue.pop(0)
            self._waiting_on.pop(waiter, None)
            granted.append(waiter)
        return granted

    def _unqueue(self, txn: str) -> None:
        for scope in self._locks.values():
            scope.queue = [w for w in scope.queue if w[0] != txn]

    def _detect_deadlock(self, start: str) -> str | None:
        edges: dict[str, set[str]] = {}
        for scope in self._locks.values():
            holders = set(scope.shared)
            if scope.exclusive is not None:
                holders.add(scope.exclusive)
            for waiter_txn, __ in scope.queue:
                edges.setdefault(waiter_txn, set()).update(
                    holders - {waiter_txn}
                )
        path: list[str] = []
        visited: set[str] = set()

        def dfs(node: str) -> list[str] | None:
            if node in path:
                return path[path.index(node) :]
            if node in visited:
                return None
            visited.add(node)
            path.append(node)
            for neighbour in sorted(edges.get(node, ())):
                cycle = dfs(neighbour)
                if cycle is not None:
                    return cycle
            path.pop()
            return None

        cycle = dfs(start)
        if not cycle:
            return None
        return max(cycle, key=lambda txn: self._active.get(txn, 0))
