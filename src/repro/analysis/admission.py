"""Admission analysis: how much concurrency each criterion permits.

Section 4's argument is about *class size*: a richer correctness class
lets a scheduler admit more interleavings, i.e. impose fewer
waits/aborts.  This module measures that directly on small program
sets by enumerating every interleaving and asking, per criterion, how
many are admissible:

* the Section-4 classes (CSR … CPC), via the membership testers;
* **strict 2PL**, operationally: an interleaving is 2PL-admissible iff
  replaying it with lock acquisition at first access and release at
  transaction end never blocks — i.e. the schedule never interleaves
  conflicting transactions at all (each conflict pair's transactions
  are serially ordered w.r.t. lock scopes);
* **basic TO**, operationally: replay with arrival-order timestamps and
  check no access arrives "late".

The resulting table is the paper's Figure-2 story re-told as admitted
fractions (the D1 ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..classes.hierarchy import classify
from ..schedules.generator import interleavings
from ..schedules.operations import Operation
from ..schedules.schedule import Schedule


def admitted_by_s2pl(schedule: Schedule) -> bool:
    """Would strict 2PL run this exact interleaving without blocking?

    Replay: a transaction acquires a shared/exclusive lock at each
    access and holds everything until its last operation completes.  If
    any access needs a lock an *unfinished* other transaction holds
    incompatibly, 2PL would block — the interleaving as written could
    not occur.
    """
    ops = schedule.operations
    last_index = {
        txn: max(
            index for index, op in enumerate(ops) if op.txn == txn
        )
        for txn in schedule.transactions
    }
    shared: dict[str, set[str]] = {}
    exclusive: dict[str, str] = {}
    for index, op in enumerate(ops):
        if op.is_read:
            holder = exclusive.get(op.entity)
            if holder is not None and holder != op.txn:
                return False
            shared.setdefault(op.entity, set()).add(op.txn)
        else:
            holder = exclusive.get(op.entity)
            if holder is not None and holder != op.txn:
                return False
            others = shared.get(op.entity, set()) - {op.txn}
            if others:
                return False
            exclusive[op.entity] = op.txn
        if index == last_index[op.txn]:
            for holders in shared.values():
                holders.discard(op.txn)
            for entity in list(exclusive):
                if exclusive[entity] == op.txn:
                    del exclusive[entity]
    return True


def admitted_by_to(schedule: Schedule) -> bool:
    """Would basic TO run this interleaving without aborting anyone?

    Timestamps are first-access order; the standard read/write
    timestamp rules must never reject an access.
    """
    timestamp = {
        txn: position
        for position, txn in enumerate(schedule.transactions)
    }
    read_ts: dict[str, int] = {}
    write_ts: dict[str, int] = {}
    for op in schedule.operations:
        ts = timestamp[op.txn]
        if op.is_read:
            if ts < write_ts.get(op.entity, -1):
                return False
            read_ts[op.entity] = max(read_ts.get(op.entity, -1), ts)
        else:
            if ts < read_ts.get(op.entity, -1) or ts < write_ts.get(
                op.entity, -1
            ):
                return False
            write_ts[op.entity] = ts
    return True


@dataclass(frozen=True)
class AdmissionReport:
    """Admitted-interleaving counts per criterion."""

    total: int
    counts: Mapping[str, int]

    def fraction(self, criterion: str) -> float:
        if self.total == 0:
            return 0.0
        return self.counts[criterion] / self.total

    def rows(self) -> list[dict[str, object]]:
        return [
            {
                "criterion": name,
                "admitted": count,
                "fraction": f"{count / self.total:.0%}"
                if self.total
                else "-",
            }
            for name, count in self.counts.items()
        ]


CRITERIA_ORDER = (
    "s2pl",
    "to",
    "CSR",
    "SR",
    "MVCSR",
    "MVSR",
    "PWCSR",
    "PWSR",
    "CPC",
    "PC",
)


def admission_report(
    programs: Mapping[str, Sequence[Operation]],
    objects: Iterable[Iterable[str]],
    limit: int | None = None,
) -> AdmissionReport:
    """Count admitted interleavings per criterion (exhaustive).

    The operational 2PL/TO admissions should come out *below* the CSR
    count (a scheduler admits a subset of its class), and every class
    count must respect the lattice — both are asserted by the tests.
    """
    counts = {name: 0 for name in CRITERIA_ORDER}
    total = 0
    for index, schedule in enumerate(interleavings(dict(programs))):
        if limit is not None and index >= limit:
            break
        total += 1
        if admitted_by_s2pl(schedule):
            counts["s2pl"] += 1
        if admitted_by_to(schedule):
            counts["to"] += 1
        membership = classify(schedule, objects)
        for name, member in membership.as_dict().items():
            if member:
                counts[name] += 1
    return AdmissionReport(total, counts)
