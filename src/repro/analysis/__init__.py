"""Census, admission analysis, schedule↔model bridging, reporting."""

from .admission import (
    AdmissionReport,
    admission_report,
    admitted_by_s2pl,
    admitted_by_to,
)
from .bridge import (
    execution_from_serial_order,
    leaf_transactions_from_programs,
    schedule_to_execution,
)
from .census import (
    REGION_FAMILIES,
    CensusResult,
    blind_write_programs,
    census_of_programs,
    census_of_random_schedules,
    example1_programs,
    figure2_reachability,
    schedule_fingerprint,
)
from .reporting import region_report, text_table

__all__ = [
    "AdmissionReport",
    "REGION_FAMILIES",
    "CensusResult",
    "admission_report",
    "admitted_by_s2pl",
    "admitted_by_to",
    "blind_write_programs",
    "census_of_programs",
    "census_of_random_schedules",
    "example1_programs",
    "execution_from_serial_order",
    "figure2_reachability",
    "leaf_transactions_from_programs",
    "region_report",
    "schedule_fingerprint",
    "schedule_to_execution",
    "text_table",
]
