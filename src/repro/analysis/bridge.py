"""Bridge: classical schedules → model executions (Lemmas 2 and 3).

Section 4.1 embeds the standard model into the paper's model: each
read/write transaction becomes a leaf with ``I = O = C`` (the database
consistency constraint), and a schedule induces an execution ``(R, X)``.
This module makes that embedding executable so Lemma 2 ("all view
serializable schedules are correct executions") and Lemma 3 can be
*tested*, not just cited:

* :func:`leaf_transactions_from_programs` builds concrete leaf
  transactions whose effects realize the programs' writes;
* :func:`execution_from_serial_order` builds the chained execution a
  view-serialization witness induces (Lemma 3's conditions 2–4 hold by
  construction);
* the Lemma-2 test then checks such executions are *correct* whenever
  the effects preserve the constraint.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..core.entities import Schema
from ..core.execution import Execution
from ..core.naming import TxnName
from ..core.predicates import Predicate
from ..core.states import DatabaseState, UniqueState, VersionState
from ..core.transactions import (
    Effect,
    Expr,
    LeafTransaction,
    NestedTransaction,
    Spec,
)
from ..errors import ScheduleError
from ..schedules.operations import Operation
from ..schedules.schedule import Schedule

EffectBuilder = Callable[[str, str], Expr]
"""(txn, entity) → the expression that txn's write of entity installs."""


def leaf_transactions_from_programs(
    schema: Schema,
    programs: Mapping[str, Sequence[Operation]],
    constraint: Predicate,
    effect_builder: EffectBuilder,
    root: TxnName | None = None,
) -> NestedTransaction:
    """The standard-model embedding of a set of programs (§4.1).

    Every transaction becomes a leaf with ``I = O = C``; its effect
    writes each entity its program writes, with the expression supplied
    by ``effect_builder``.  Reads are declared via ``extra_reads`` so
    the model's "every entity read appears in I_t" rule is honoured
    (``C`` must mention every entity — the standard model's constraint
    is over the whole database).
    """
    root_name = root if root is not None else TxnName.root()
    children = []
    for txn in sorted(programs, key=str):
        ops = programs[txn]
        writes = {
            op.entity: effect_builder(txn, op.entity)
            for op in ops
            if op.is_write
        }
        reads = {op.entity for op in ops if op.is_read}
        undeclared = reads - constraint.entities()
        if undeclared and not constraint.is_true:
            raise ScheduleError(
                f"standard-model embedding needs C to mention every "
                f"read entity; missing {sorted(undeclared)}"
            )
        children.append(
            LeafTransaction(
                root_name.child(int(txn) if txn.isdigit() else 0),
                schema,
                Spec.invariant(constraint),
                Effect(writes),
                extra_reads=reads,
            )
        )
    return NestedTransaction(
        root_name, schema, Spec.invariant(constraint), children
    )


def execution_from_serial_order(
    root: NestedTransaction,
    initial: UniqueState,
    order: Sequence[TxnName],
) -> Execution:
    """The chained execution induced by a serial order (Lemma 3).

    ``X`` chains: the first transaction reads the initial state, each
    next transaction reads its predecessor's result, and the final
    state is the last result — satisfying Lemma 3's conditions 2–4 by
    construction (``R`` is the successor relation of the order).
    """
    if set(order) != set(root.child_names):
        raise ScheduleError("order must cover exactly the children")
    schema = root.schema
    current = VersionState(schema, initial.as_dict())
    assignment: dict[TxnName, VersionState] = {}
    reads_from = set()
    previous: TxnName | None = None
    for name in order:
        assignment[name] = current
        if previous is not None:
            reads_from.add((previous, name))
        result = root.child(name).apply(current)
        current = VersionState(schema, result.as_dict())
        previous = name
    return Execution(
        root,
        DatabaseState.single(initial),
        reads_from,
        assignment,
        current,
    )


def schedule_to_execution(
    schema: Schema,
    schedule: Schedule,
    constraint: Predicate,
    initial: UniqueState,
    effect_builder: EffectBuilder,
    serial_order: Sequence[str],
) -> Execution:
    """End-to-end: schedule + witness order → model execution.

    This is the computational content of Lemma 2: take a schedule, a
    view-serialization witness ``serial_order``, embed the programs as
    leaves, and build the chained execution, which the caller can then
    check for correctness.
    """
    root = leaf_transactions_from_programs(
        schema, schedule.programs(), constraint, effect_builder
    )
    name_of = {
        str(child.name.leaf_index): child.name for child in root.children
    }
    order = [name_of[txn] for txn in serial_order]
    return execution_from_serial_order(root, initial, order)
