"""Plain-text reporting used by the benchmarks and examples."""

from __future__ import annotations

from typing import Mapping, Sequence


def text_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
) -> str:
    """Format dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    chosen = list(columns) if columns is not None else list(rows[0])
    widths = {
        column: max(
            len(column),
            *(len(str(row.get(column, ""))) for row in rows),
        )
        for column in chosen
    }
    header = "  ".join(column.ljust(widths[column]) for column in chosen)
    divider = "  ".join("-" * widths[column] for column in chosen)
    lines = [header, divider]
    for row in rows:
        lines.append(
            "  ".join(
                str(row.get(column, "")).ljust(widths[column])
                for column in chosen
            )
        )
    return "\n".join(lines)


def region_report(by_region: Mapping[int, int]) -> str:
    """Figure-2 region populations as a table."""
    from ..classes.hierarchy import REGION_LABELS

    rows = [
        {
            "region": region,
            "label": REGION_LABELS.get(region, "?"),
            "schedules": by_region.get(region, 0),
        }
        for region in sorted(REGION_LABELS)
    ]
    return text_table(rows, ["region", "label", "schedules"])
