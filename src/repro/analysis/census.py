"""Exhaustive schedule census over the class lattice (Figure 2).

The paper's Figure 2 is a Venn diagram asserting which regions of the
class lattice are non-empty.  The census regenerates it quantitatively:
enumerate *every* interleaving of a set of transaction programs,
classify each with the Section-4 testers, and count the population of
each region.  Containment laws are checked on every schedule along the
way, so the census doubles as a large-scale property test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..classes.hierarchy import (
    ClassMembership,
    classify,
    containment_violations,
    figure2_region,
)
from ..schedules.generator import interleavings, random_schedule
from ..schedules.operations import Operation
from ..schedules.schedule import Schedule


@dataclass
class CensusResult:
    """Counts from one census run."""

    total: int = 0
    by_region: dict[int, int] = field(default_factory=dict)
    by_class: dict[str, int] = field(default_factory=dict)
    containment_failures: int = 0

    def record(self, membership: ClassMembership) -> None:
        self.total += 1
        region = figure2_region(membership)
        self.by_region[region] = self.by_region.get(region, 0) + 1
        for name, member in membership.as_dict().items():
            if member:
                self.by_class[name] = self.by_class.get(name, 0) + 1
        if containment_violations(membership):
            self.containment_failures += 1

    def fraction_in(self, class_name: str) -> float:
        if self.total == 0:
            return 0.0
        return self.by_class.get(class_name, 0) / self.total

    def strict_gains(self) -> dict[str, int]:
        """How many schedules each extension admits beyond its base.

        The quantities Section 4 is about: how much *larger* each
        extended class is, counted exactly over the census population.
        """
        get = self.by_class.get
        return {
            "SR − CSR": get("SR", 0) - get("CSR", 0),
            "MVSR − SR": get("MVSR", 0) - get("SR", 0),
            "MVCSR − CSR": get("MVCSR", 0) - get("CSR", 0),
            "PWCSR − CSR": get("PWCSR", 0) - get("CSR", 0),
            "CPC − MVCSR": get("CPC", 0) - get("MVCSR", 0),
            "CPC − PWCSR": get("CPC", 0) - get("PWCSR", 0),
            "PC − CPC": get("PC", 0) - get("CPC", 0),
        }


def census_of_programs(
    programs: Mapping[str, Sequence[Operation]],
    objects: Iterable[Iterable[str]],
    limit: int | None = None,
) -> CensusResult:
    """Classify every interleaving of the given programs.

    ``limit`` caps the number of interleavings examined (the count is
    multinomial in program sizes).
    """
    result = CensusResult()
    for index, schedule in enumerate(interleavings(dict(programs))):
        if limit is not None and index >= limit:
            break
        result.record(classify(schedule, objects))
    return result


def census_of_random_schedules(
    count: int,
    num_transactions: int = 3,
    ops_per_transaction: int = 3,
    entities: Sequence[str] = ("x", "y"),
    objects: Iterable[Iterable[str]] | None = None,
    write_ratio: float = 0.5,
    seed: int = 0,
) -> CensusResult:
    """Classify ``count`` random schedules (seeded, reproducible)."""
    chosen_objects = (
        [set(entities)] if objects is None else list(objects)
    )
    result = CensusResult()
    for index in range(count):
        schedule = random_schedule(
            num_transactions,
            ops_per_transaction,
            entities,
            write_ratio,
            seed=seed + index * 7919,
        )
        result.record(classify(schedule, chosen_objects))
    return result


def example1_programs() -> dict[str, tuple[Operation, ...]]:
    """The programs of the paper's Example 1 — the canonical census
    input (35 interleavings)."""
    schedule = Schedule.parse(
        "r1(x) w1(x) r1(y) w1(y) r2(x) r2(y) w2(y)"
    )
    return schedule.programs()


def blind_write_programs() -> dict[str, tuple[Operation, ...]]:
    """The region-5/7 program family: blind writes over one entity.

    ``t1: r(x) w(x)``, ``t2: w(x)``, ``t3: w(x)`` — the programs behind
    the paper's region-5 example (``SR − PWCSR``).  Their census
    populates the Figure-2 regions the Example-1 programs cannot reach
    (5, 7), because only blind writes separate view from conflict
    serializability.
    """
    schedule = Schedule.parse("r1(x) w1(x) w2(x) w3(x)")
    return schedule.programs()


REGION_FAMILIES: dict[str, tuple[str, list[set[str]]]] = {
    "example1": (
        "r1(x) w1(x) r1(y) w1(y) r2(x) r2(y) w2(y)",
        [{"x"}, {"y"}],
    ),
    "blind-writes": ("r1(x) w1(x) w2(x) w3(x)", [{"x"}]),
    "region2": (
        "r1(y) w1(x) w1(y) r2(x) w2(x) w2(y)",
        [{"x"}, {"y"}],
    ),
    "region6": (
        "r1(x) w1(y) w2(y) r2(y) w2(x) w2(y) r3(x) w3(x) w3(y)",
        [{"x", "y"}],
    ),
    "region8": (
        "r1(x) w1(x) w1(y) w2(y) w2(x) w3(y)",
        [{"x"}, {"y"}],
    ),
}
"""Program families whose interleavings jointly reach all nine
Figure-2 regions — the figure's non-emptiness, proved by exhaustion.
Each entry: (serial schedule giving the programs, constraint objects).
"""


def figure2_reachability(
    families: "dict[str, tuple[str, list[set[str]]]] | None" = None,
) -> dict[int, int]:
    """Count reachable schedules per Figure-2 region across families.

    Exhaustively censuses every family in :data:`REGION_FAMILIES` (or
    the supplied override) and merges the per-region counts.  The
    Figure-2 non-emptiness claim holds iff every region 1–9 maps to a
    positive count.
    """
    chosen = families if families is not None else REGION_FAMILIES
    merged: dict[int, int] = {}
    for text, objects in chosen.values():
        programs = Schedule.parse(text).programs()
        result = census_of_programs(programs, objects)
        if result.containment_failures:
            raise AssertionError(
                f"containment violations in family {text!r}"
            )
        for region, count in result.by_region.items():
            merged[region] = merged.get(region, 0) + count
    return merged
