"""Exhaustive schedule census over the class lattice (Figure 2).

The paper's Figure 2 is a Venn diagram asserting which regions of the
class lattice are non-empty.  The census regenerates it quantitatively:
enumerate *every* interleaving of a set of transaction programs,
classify each with the Section-4 testers, and count the population of
each region.  Containment laws are checked on every schedule along the
way, so the census doubles as a large-scale property test.

Two engines speed the sweep up without changing a single count:

* **Fingerprint dedup.**  Distinct interleavings frequently induce the
  same semantics; :func:`schedule_fingerprint` keys each schedule by
  (programs, reads-from, final writers, conflict-pair order) — the
  inputs every Section-4 tester is a function of — and reuses the
  classification of any equivalent schedule already seen
  (``CensusResult.cache_hits`` counts the reuses).
* **Multiprocessing fan-out.**  ``jobs=N`` stripes the interleaving
  enumeration over ``N`` worker processes and merges the per-worker
  :class:`CensusResult`\\ s; merged counts are identical to the
  single-process run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..classes.hierarchy import (
    ClassMembership,
    classify,
    containment_violations,
    figure2_region,
)
from ..classes.predicatewise import normalize_objects
from ..obs.trace import NULL_TRACER, Tracer
from ..schedules.generator import interleavings, random_schedule
from ..schedules.operations import Operation
from ..schedules.schedule import Schedule


@dataclass
class CensusResult:
    """Counts from one census run."""

    total: int = 0
    by_region: dict[int, int] = field(default_factory=dict)
    by_class: dict[str, int] = field(default_factory=dict)
    containment_failures: int = 0
    cache_hits: int = 0

    def record(self, membership: ClassMembership) -> None:
        self.total += 1
        region = figure2_region(membership)
        self.by_region[region] = self.by_region.get(region, 0) + 1
        for name, member in membership.as_dict().items():
            if member:
                self.by_class[name] = self.by_class.get(name, 0) + 1
        if containment_violations(membership):
            self.containment_failures += 1

    def merge(self, other: "CensusResult") -> "CensusResult":
        """Fold another result's counts into this one (and return it).

        Used by the ``jobs=N`` fan-out: per-worker results merged in
        any order equal the single-process census exactly.
        """
        self.total += other.total
        for region, count in other.by_region.items():
            self.by_region[region] = (
                self.by_region.get(region, 0) + count
            )
        for name, count in other.by_class.items():
            self.by_class[name] = self.by_class.get(name, 0) + count
        self.containment_failures += other.containment_failures
        self.cache_hits += other.cache_hits
        return self

    def fraction_in(self, class_name: str) -> float:
        if self.total == 0:
            return 0.0
        return self.by_class.get(class_name, 0) / self.total

    def strict_gains(self) -> dict[str, int]:
        """How many schedules each extension admits beyond its base.

        The quantities Section 4 is about: how much *larger* each
        extended class is, counted exactly over the census population.
        """
        get = self.by_class.get
        return {
            "SR − CSR": get("SR", 0) - get("CSR", 0),
            "MVSR − SR": get("MVSR", 0) - get("SR", 0),
            "MVCSR − CSR": get("MVCSR", 0) - get("CSR", 0),
            "PWCSR − CSR": get("PWCSR", 0) - get("CSR", 0),
            "CPC − MVCSR": get("CPC", 0) - get("MVCSR", 0),
            "CPC − PWCSR": get("CPC", 0) - get("PWCSR", 0),
            "PC − CPC": get("PC", 0) - get("CPC", 0),
        }


def schedule_fingerprint(schedule: Schedule) -> tuple:
    """Classification-equivalence key for census deduplication.

    Every Section-4 tester is a function of the schedule's programs,
    reads-from map, final writers, and the order of its conflicting
    pairs (availability in the MVSR test hinges on read/write pairs on
    one entity, which *are* conflict pairs).  Schedules agreeing on all
    four therefore land in identical classes, so the census classifies
    one representative and reuses the vector.
    """
    sources = schedule.read_sources()
    return (
        tuple(sorted(schedule.programs().items())),
        tuple((key, sources[key]) for key in sorted(sources)),
        tuple(sorted(schedule.final_writers().items())),
        schedule.conflict_fingerprint(),
    )


def _classify_interleavings(
    programs: Mapping[str, Sequence[Operation]],
    objects: "tuple[frozenset[str], ...]",
    limit: int | None,
    exact: bool,
    dedup: bool,
    worker: int = 0,
    stride: int = 1,
    tracer: Tracer = NULL_TRACER,
) -> CensusResult:
    """Census over every ``stride``-th interleaving from ``worker``."""
    result = CensusResult()
    cache: dict[tuple, ClassMembership] | None = {} if dedup else None
    for index, schedule in enumerate(interleavings(dict(programs))):
        if limit is not None and index >= limit:
            break
        if index % stride != worker:
            continue
        membership: ClassMembership | None = None
        fingerprint: tuple | None = None
        if cache is not None:
            fingerprint = schedule_fingerprint(schedule)
            membership = cache.get(fingerprint)
        if membership is None:
            membership = classify(
                schedule, objects, tracer, exact=exact
            )
            if cache is not None:
                cache[fingerprint] = membership
        else:
            result.cache_hits += 1
        result.record(membership)
    return result


def _census_chunk(payload: tuple) -> CensusResult:
    """Top-level worker entry point (must be picklable)."""
    programs, objects, limit, exact, dedup, worker, stride = payload
    return _classify_interleavings(
        programs, objects, limit, exact, dedup, worker, stride
    )


def census_of_programs(
    programs: Mapping[str, Sequence[Operation]],
    objects: Iterable[Iterable[str]],
    limit: int | None = None,
    *,
    exact: bool = False,
    dedup: bool = True,
    jobs: int = 1,
    tracer: Tracer = NULL_TRACER,
) -> CensusResult:
    """Classify every interleaving of the given programs.

    ``limit`` caps the number of interleavings examined (the count is
    multinomial in program sizes).  ``exact=True`` forces every class
    tester to run on every schedule (no lattice short-circuiting);
    ``dedup=False`` disables the fingerprint cache; ``jobs=N`` stripes
    the enumeration over ``N`` worker processes.  All four switches
    produce identical counts — only the wall-clock changes.  ``tracer``
    reaches the classifier in single-process runs only (spans cannot
    cross process boundaries).
    """
    normalized = normalize_objects(objects)
    if jobs <= 1:
        return _classify_interleavings(
            programs, normalized, limit, exact, dedup, tracer=tracer
        )
    import multiprocessing

    payloads = [
        (dict(programs), normalized, limit, exact, dedup, worker, jobs)
        for worker in range(jobs)
    ]
    with multiprocessing.get_context().Pool(jobs) as pool:
        chunks = pool.map(_census_chunk, payloads)
    merged = CensusResult()
    for chunk in chunks:
        merged.merge(chunk)
    return merged


def census_of_random_schedules(
    count: int,
    num_transactions: int = 3,
    ops_per_transaction: int = 3,
    entities: Sequence[str] = ("x", "y"),
    objects: Iterable[Iterable[str]] | None = None,
    write_ratio: float = 0.5,
    seed: int = 0,
    exact: bool = False,
) -> CensusResult:
    """Classify ``count`` random schedules (seeded, reproducible)."""
    chosen_objects = (
        [set(entities)] if objects is None else list(objects)
    )
    result = CensusResult()
    for index in range(count):
        schedule = random_schedule(
            num_transactions,
            ops_per_transaction,
            entities,
            write_ratio,
            seed=seed + index * 7919,
        )
        result.record(classify(schedule, chosen_objects, exact=exact))
    return result


def example1_programs() -> dict[str, tuple[Operation, ...]]:
    """The programs of the paper's Example 1 — the canonical census
    input (35 interleavings)."""
    schedule = Schedule.parse(
        "r1(x) w1(x) r1(y) w1(y) r2(x) r2(y) w2(y)"
    )
    return schedule.programs()


def blind_write_programs() -> dict[str, tuple[Operation, ...]]:
    """The region-5/7 program family: blind writes over one entity.

    ``t1: r(x) w(x)``, ``t2: w(x)``, ``t3: w(x)`` — the programs behind
    the paper's region-5 example (``(SR ∩ MVCSR) − PWCSR``).  Their census
    populates the Figure-2 regions the Example-1 programs cannot reach
    (5, 7), because only blind writes separate view from conflict
    serializability.
    """
    schedule = Schedule.parse("r1(x) w1(x) w2(x) w3(x)")
    return schedule.programs()


REGION_FAMILIES: dict[str, tuple[str, list[set[str]]]] = {
    "example1": (
        "r1(x) w1(x) r1(y) w1(y) r2(x) r2(y) w2(y)",
        [{"x"}, {"y"}],
    ),
    "blind-writes": ("r1(x) w1(x) w2(x) w3(x)", [{"x"}]),
    "region2": (
        "r1(y) w1(x) w1(y) r2(x) w2(x) w2(y)",
        [{"x"}, {"y"}],
    ),
    "region6": (
        "r1(x) w1(y) w2(y) r2(y) w2(x) w2(y) r3(x) w3(x) w3(y)",
        [{"x", "y"}],
    ),
    "region8": (
        "r1(x) w1(x) w1(y) w2(y) w2(x) w3(y)",
        [{"x"}, {"y"}],
    ),
}
"""Program families whose interleavings jointly reach all nine
Figure-2 regions — the figure's non-emptiness, proved by exhaustion.
Each entry: (serial schedule giving the programs, constraint objects).
"""


def figure2_reachability(
    families: "dict[str, tuple[str, list[set[str]]]] | None" = None,
) -> dict[int, int]:
    """Count reachable schedules per Figure-2 region across families.

    Exhaustively censuses every family in :data:`REGION_FAMILIES` (or
    the supplied override) and merges the per-region counts.  The
    Figure-2 non-emptiness claim holds iff every region 1–9 maps to a
    positive count.
    """
    chosen = families if families is not None else REGION_FAMILIES
    merged: dict[int, int] = {}
    for text, objects in chosen.values():
        programs = Schedule.parse(text).programs()
        result = census_of_programs(programs, objects)
        if result.containment_failures:
            raise AssertionError(
                f"containment violations in family {text!r}"
            )
        for region, count in result.by_region.items():
            merged[region] = merged.get(region, 0) + count
    return merged
