"""Boolean CNF formulas for the NP-completeness machinery (Section 3.2).

Lemma 1 reduces SAT to the one-transaction version correctness problem;
this module supplies the SAT side: immutable literals, clauses, and
formulas, with evaluation, simplification under partial assignments,
and a seeded random-formula generator for the complexity benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..errors import ReproError


class SatError(ReproError):
    """A CNF formula or assignment is malformed."""


@dataclass(frozen=True, order=True)
class Literal:
    """A possibly-negated boolean variable."""

    variable: str
    negated: bool = False

    def __post_init__(self) -> None:
        if not self.variable:
            raise SatError("literal variable name must be non-empty")

    def __neg__(self) -> "Literal":
        return Literal(self.variable, not self.negated)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        value = assignment[self.variable]
        return (not value) if self.negated else value

    def __str__(self) -> str:
        return f"¬{self.variable}" if self.negated else self.variable


def lit(variable: str) -> Literal:
    """A positive literal (negate with unary minus: ``-lit("x")``)."""
    return Literal(variable)


@dataclass(frozen=True)
class SatClause:
    """A disjunction of literals."""

    literals: frozenset[Literal]

    def __post_init__(self) -> None:
        if not self.literals:
            raise SatError("empty clause (trivially unsatisfiable)")

    @classmethod
    def of(cls, *literals: Literal) -> "SatClause":
        return cls(frozenset(literals))

    @property
    def variables(self) -> frozenset[str]:
        return frozenset(literal.variable for literal in self.literals)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return any(
            literal.evaluate(assignment) for literal in self.literals
        )

    def is_tautology(self) -> bool:
        """Contains both a variable and its negation."""
        return any(-literal in self.literals for literal in self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self) -> Iterator[Literal]:
        return iter(sorted(self.literals))

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(literal) for literal in self) + ")"


class CNFFormula:
    """An immutable conjunction of :class:`SatClause`.

    The empty formula is satisfiable by the empty assignment.
    """

    __slots__ = ("_clauses", "_variables")

    def __init__(self, clauses: Iterable[SatClause]) -> None:
        self._clauses: tuple[SatClause, ...] = tuple(clauses)
        names: set[str] = set()
        for clause in self._clauses:
            names |= clause.variables
        self._variables: frozenset[str] = frozenset(names)

    @classmethod
    def of(cls, *clauses: SatClause) -> "CNFFormula":
        return cls(clauses)

    @classmethod
    def parse(cls, text: str) -> "CNFFormula":
        """Parse a compact textual form.

        Clauses are separated by ``&``, literals inside a clause by
        ``|``; negation is a leading ``~`` or ``!``::

            CNFFormula.parse("a | ~b & b | c")
        """
        clauses: list[SatClause] = []
        for chunk in text.split("&"):
            chunk = chunk.strip()
            if not chunk:
                raise SatError(f"empty clause in {text!r}")
            literals = []
            for token in chunk.split("|"):
                token = token.strip()
                negated = token.startswith(("~", "!"))
                name = token.lstrip("~!").strip()
                if not name:
                    raise SatError(f"bad literal {token!r}")
                literals.append(Literal(name, negated))
            clauses.append(SatClause.of(*literals))
        return cls(clauses)

    @property
    def clauses(self) -> tuple[SatClause, ...]:
        return self._clauses

    @property
    def variables(self) -> frozenset[str]:
        return self._variables

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return all(
            clause.evaluate(assignment) for clause in self._clauses
        )

    def simplify(self, assignment: Mapping[str, bool]) -> "CNFFormula | None":
        """Apply a partial assignment.

        Satisfied clauses disappear; falsified literals are removed.
        Returns ``None`` when some clause becomes empty (conflict).
        """
        new_clauses: list[SatClause] = []
        for clause in self._clauses:
            keep: list[Literal] = []
            satisfied = False
            for literal in clause.literals:
                if literal.variable in assignment:
                    if literal.evaluate(assignment):
                        satisfied = True
                        break
                else:
                    keep.append(literal)
            if satisfied:
                continue
            if not keep:
                return None
            new_clauses.append(SatClause.of(*keep))
        return CNFFormula(new_clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[SatClause]:
        return iter(self._clauses)

    def __str__(self) -> str:
        if not self._clauses:
            return "⊤"
        return " ∧ ".join(str(clause) for clause in self._clauses)

    def __repr__(self) -> str:
        return f"CNFFormula({self})"


def random_formula(
    num_variables: int,
    num_clauses: int,
    clause_width: int = 3,
    seed: int | None = None,
) -> CNFFormula:
    """A uniform random k-CNF formula (for complexity benchmarks).

    With ``num_clauses ≈ 4.27 × num_variables`` and width 3 the
    instances sit near the satisfiability phase transition — the hard
    region that makes the Lemma-1 search expensive.
    """
    if num_variables < 1:
        raise SatError("need at least one variable")
    width = min(clause_width, num_variables)
    rng = random.Random(seed)
    variables = [f"v{i}" for i in range(num_variables)]
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(variables, width)
        literals = [
            Literal(name, rng.random() < 0.5) for name in chosen
        ]
        clauses.append(SatClause.of(*literals))
    return CNFFormula(clauses)
