"""Boolean satisfiability substrate (Lemma 1 / Theorem 1 machinery)."""

from .cnf import CNFFormula, Literal, SatClause, SatError, lit, random_formula
from .reduction import (
    SatEncoding,
    VersionCorrectnessInstance,
    candidate_selection_to_sat,
    decode_version_state,
    sat_to_version_correctness,
    solve_candidate_selection,
    version_correctness_to_sat,
)
from .solver import DPLLSolver, SolverStats, brute_force_solve, solve

__all__ = [
    "CNFFormula",
    "DPLLSolver",
    "Literal",
    "SatClause",
    "SatEncoding",
    "SatError",
    "SolverStats",
    "VersionCorrectnessInstance",
    "candidate_selection_to_sat",
    "brute_force_solve",
    "decode_version_state",
    "lit",
    "random_formula",
    "sat_to_version_correctness",
    "solve",
    "solve_candidate_selection",
    "version_correctness_to_sat",
]
