"""The Lemma-1 reductions between SAT and version correctness.

Section 3.2 proves *one transaction version correctness* NP-complete:

* **NP-hardness** (:func:`sat_to_version_correctness`) — given a SAT
  formula over variables ``U``, build ``E = U`` with boolean domains,
  the two-state database ``S = {all-zeros, all-ones}`` (so ``V_S`` is
  every 0/1 assignment), and the input constraint ``I_t = C``.  The
  formula is satisfiable iff some version state satisfies ``I_t``.

* **NP membership** (:func:`version_correctness_to_sat`) — the converse
  encoding: introduce a selector variable per (entity, retained
  version), add exactly-one constraints, and compile each CNF conjunct
  into SAT clauses (binary atoms get one auxiliary variable per
  satisfying version pair).  A model selects exactly one version per
  entity satisfying the predicate, i.e. a witness ``X(t_i)``.

Round-tripping these two reductions against both the DPLL solver and
the direct backtracking search is one of the library's core property
tests (experiment L1).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..core.entities import Schema
from ..core.predicates import Atom, Clause, Predicate
from ..core.states import DatabaseState, UniqueState, VersionState
from .cnf import CNFFormula, Literal, SatClause
from .solver import DPLLSolver


@dataclass(frozen=True)
class VersionCorrectnessInstance:
    """An instance of the Lemma-1 decision problem.

    *Is there a version state of* ``db_state`` *satisfying*
    ``input_constraint``?
    """

    schema: Schema
    db_state: DatabaseState
    input_constraint: Predicate

    def solve_direct(self) -> VersionState | None:
        """Backtracking search over ``V_S`` (no SAT detour)."""
        return self.input_constraint.find_satisfying_version_state(
            self.db_state
        )

    def solve_via_sat(self) -> VersionState | None:
        """Encode to SAT, run DPLL, decode the model."""
        encoding = version_correctness_to_sat(
            self.db_state, self.input_constraint
        )
        model = DPLLSolver().solve(encoding.formula)
        if model is None:
            return None
        return encoding.decode(model)

    @property
    def is_satisfiable(self) -> bool:
        return self.solve_direct() is not None


def sat_to_version_correctness(
    formula: CNFFormula,
) -> VersionCorrectnessInstance:
    """Lemma 1's NP-hardness reduction, literally.

    Step 1: ``E = U``.  Step 2: ``S = {S⁰, S¹}`` with ``S⁰(e) = 0`` and
    ``S¹(e) = 1`` for all ``e``.  Step 3: ``I_t = C``, translating the
    literal ``u`` to the atom ``u = 1`` and ``¬u`` to ``u = 0``.
    """
    variables = sorted(formula.variables) or ["v0"]
    schema = Schema.of(*variables)
    all_zero = UniqueState(schema, {name: 0 for name in variables})
    all_one = UniqueState(schema, {name: 1 for name in variables})
    db_state = DatabaseState([all_zero, all_one])

    clauses = []
    for sat_clause in formula.clauses:
        atoms = tuple(
            Atom.of(literal.variable, "=", 0 if literal.negated else 1)
            for literal in sat_clause
        )
        clauses.append(Clause(atoms))
    predicate = Predicate(clauses)
    return VersionCorrectnessInstance(schema, db_state, predicate)


def decode_version_state(
    instance: VersionCorrectnessInstance, state: VersionState
) -> dict[str, bool]:
    """Read a SAT model back out of a witnessing version state."""
    return {name: bool(state[name]) for name in instance.schema.names}


# ---------------------------------------------------------------------------
# NP membership: version correctness → SAT
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SatEncoding:
    """A SAT encoding of a version-correctness instance.

    ``selector[(entity, value)]`` names the boolean variable asserting
    that the version state assigns ``value`` to ``entity``.
    """

    formula: CNFFormula
    schema: Schema
    selector: dict[tuple[str, int], str]

    def decode(self, model: dict[str, bool]) -> VersionState:
        """Extract the selected version state from a SAT model."""
        values: dict[str, int] = {}
        for (entity, value), name in self.selector.items():
            if model.get(name):
                values[entity] = value
        return VersionState(self.schema, values)


def _selector_name(entity: str, value: int) -> str:
    return f"sel::{entity}::{value}"


def _atom_satisfying_selectors(
    atom: Atom,
    versions: dict[str, list[int]],
    aux_clauses: list[SatClause],
    aux_counter: list[int],
) -> list[Literal]:
    """Literals whose truth forces this atom to hold.

    Single-entity atoms contribute the selectors of their satisfying
    versions directly.  Two-entity atoms get one auxiliary variable per
    satisfying version *pair*, with implication clauses tying the
    auxiliary to both selectors.
    """
    entities = sorted(atom.entities)
    if not entities:
        # Constant comparison: statically true atoms satisfy the clause
        # unconditionally; statically false atoms contribute nothing.
        return (
            [Literal("const::true")] if atom.evaluate({}) else []
        )
    if len(entities) == 1:
        entity = entities[0]
        return [
            Literal(_selector_name(entity, value))
            for value in versions[entity]
            if atom.evaluate({entity: value})
        ]
    first, second = entities
    literals: list[Literal] = []
    for value_a in versions[first]:
        for value_b in versions[second]:
            if not atom.evaluate({first: value_a, second: value_b}):
                continue
            aux_counter[0] += 1
            aux = f"aux::{aux_counter[0]}"
            literals.append(Literal(aux))
            aux_clauses.append(
                SatClause.of(
                    Literal(aux, negated=True),
                    Literal(_selector_name(first, value_a)),
                )
            )
            aux_clauses.append(
                SatClause.of(
                    Literal(aux, negated=True),
                    Literal(_selector_name(second, value_b)),
                )
            )
    return literals


def candidate_selection_to_sat(
    candidates: "dict[str, list[int]]", predicate: Predicate
) -> tuple[CNFFormula, dict[tuple[str, int], str]]:
    """Encode "pick one candidate value per entity satisfying P" as SAT.

    The generic kernel shared by :func:`version_correctness_to_sat`
    (candidates = a database state's retained versions) and the
    protocol's SAT-backed version selector (candidates = the
    validation phase's D-set versions).  Returns the formula and the
    selector-variable map.
    """
    versions = {name: sorted(values) for name, values in candidates.items()}
    relevant = sorted(versions)
    selector: dict[tuple[str, int], str] = {}
    clauses: list[SatClause] = []
    for entity in relevant:
        names = []
        for value in versions[entity]:
            name = _selector_name(entity, value)
            selector[(entity, value)] = name
            names.append(name)
        # exactly-one: at least one …
        clauses.append(
            SatClause.of(*(Literal(name) for name in names))
        )
        # … and at most one.
        for name_a, name_b in combinations(names, 2):
            clauses.append(
                SatClause.of(
                    Literal(name_a, negated=True),
                    Literal(name_b, negated=True),
                )
            )

    aux_clauses: list[SatClause] = []
    aux_counter = [0]
    used_const_true = False
    for conjunct in predicate.clauses:
        literals: list[Literal] = []
        for atom in conjunct.atoms:
            atom_literals = _atom_satisfying_selectors(
                atom, versions, aux_clauses, aux_counter
            )
            literals.extend(atom_literals)
            used_const_true = used_const_true or any(
                literal.variable == "const::true"
                for literal in atom_literals
            )
        if not literals:
            # Unsatisfiable conjunct: no version pair makes any atom
            # true.  Encode a contradiction explicitly.
            clauses.append(SatClause.of(Literal("const::false")))
            clauses.append(
                SatClause.of(Literal("const::false", negated=True))
            )
            continue
        clauses.append(SatClause.of(*literals))
    if used_const_true:
        clauses.append(SatClause.of(Literal("const::true")))

    return CNFFormula(clauses + aux_clauses), selector


def solve_candidate_selection(
    candidates: "dict[str, list[int]]", predicate: Predicate
) -> dict[str, int] | None:
    """Pick one candidate value per entity satisfying ``predicate``.

    SAT-backed version selection: DPLL over the
    :func:`candidate_selection_to_sat` encoding.  Returns a value per
    candidate entity, or ``None`` when no selection satisfies the
    predicate.
    """
    formula, selector = candidate_selection_to_sat(candidates, predicate)
    model = DPLLSolver().solve(formula)
    if model is None:
        return None
    chosen: dict[str, int] = {}
    for (entity, value), name in selector.items():
        if model.get(name):
            chosen[entity] = value
    # Entities untouched by the predicate keep their first candidate.
    for entity, values in candidates.items():
        chosen.setdefault(entity, sorted(values)[0])
    return chosen


def version_correctness_to_sat(
    db_state: DatabaseState, predicate: Predicate
) -> SatEncoding:
    """Encode "∃ v ∈ V_S with P(v)" as boolean satisfiability.

    The encoding is satisfiable iff the instance is, and models decode
    to witnessing version states — together with
    :func:`sat_to_version_correctness` this realizes both halves of
    Lemma 1's NP-completeness argument in executable form.
    """
    schema = db_state.schema
    relevant = sorted(predicate.entities()) or list(schema.names[:1])
    candidates = {
        name: sorted(db_state.versions_of(name)) for name in relevant
    }
    formula, selector = candidate_selection_to_sat(candidates, predicate)

    # Fill unmentioned entities with an arbitrary retained version so
    # decode() always returns a total version state.
    full_selector = dict(selector)
    extra_clauses: list[SatClause] = []
    for name in schema.names:
        if name in candidates:
            continue
        value = next(iter(db_state.versions_of(name)))
        var = _selector_name(name, value)
        full_selector[(name, value)] = var
        extra_clauses.append(SatClause.of(Literal(var)))
    if extra_clauses:
        formula = CNFFormula(
            tuple(formula.clauses) + tuple(extra_clauses)
        )
    return SatEncoding(formula, schema, full_selector)
