"""A DPLL SAT solver.

Used three ways in the reproduction:

* as the certified "NP oracle" for the Lemma-1 / Theorem-1 reductions
  (:mod:`repro.sat.reduction`);
* as an alternative back-end for the protocol's version-selection
  problem (Section 5.1 suggests heuristics / query-style search — the
  library offers exhaustive, heuristic, and SAT-backed selectors);
* as the brute-force comparator in property tests.

The implementation is classic DPLL with unit propagation, pure-literal
elimination, and a most-occurrences branching heuristic.  It is
deliberately dependency-free and deterministic.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import product

from .cnf import CNFFormula, Literal


@dataclass
class SolverStats:
    """Counters describing one solver run (used by benchmarks)."""

    decisions: int = 0
    unit_propagations: int = 0
    pure_eliminations: int = 0
    backtracks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "decisions": self.decisions,
            "unit_propagations": self.unit_propagations,
            "pure_eliminations": self.pure_eliminations,
            "backtracks": self.backtracks,
        }


@dataclass
class DPLLSolver:
    """Deterministic DPLL solver with standard inference rules."""

    stats: SolverStats = field(default_factory=SolverStats)

    def solve(self, formula: CNFFormula) -> dict[str, bool] | None:
        """A satisfying total assignment, or ``None`` if unsatisfiable.

        Variables not forced by the search are bound to ``False`` so
        callers always receive a *total* model over
        ``formula.variables``.
        """
        self.stats = SolverStats()
        model = self._search(formula, {})
        if model is None:
            return None
        for variable in formula.variables:
            model.setdefault(variable, False)
        return model

    def is_satisfiable(self, formula: CNFFormula) -> bool:
        return self.solve(formula) is not None

    # -- internals ----------------------------------------------------------

    def _search(
        self, formula: CNFFormula, assignment: dict[str, bool]
    ) -> dict[str, bool] | None:
        formula, assignment = self._propagate(formula, assignment)
        if formula is None:
            return None
        if not formula.clauses:
            return assignment
        variable = self._branch_variable(formula)
        for value in (True, False):
            self.stats.decisions += 1
            trial = dict(assignment)
            trial[variable] = value
            simplified = formula.simplify({variable: value})
            if simplified is not None:
                result = self._search(simplified, trial)
                if result is not None:
                    return result
            self.stats.backtracks += 1
        return None

    def _propagate(
        self, formula: CNFFormula, assignment: dict[str, bool]
    ) -> tuple[CNFFormula | None, dict[str, bool]]:
        """Exhaustively apply unit propagation and pure literals."""
        assignment = dict(assignment)
        while True:
            unit = self._find_unit(formula)
            if unit is not None:
                self.stats.unit_propagations += 1
                assignment[unit.variable] = not unit.negated
                simplified = formula.simplify(
                    {unit.variable: not unit.negated}
                )
                if simplified is None:
                    return None, assignment
                formula = simplified
                continue
            pure = self._find_pure(formula)
            if pure is not None:
                self.stats.pure_eliminations += 1
                assignment[pure.variable] = not pure.negated
                simplified = formula.simplify(
                    {pure.variable: not pure.negated}
                )
                if simplified is None:
                    return None, assignment
                formula = simplified
                continue
            return formula, assignment

    @staticmethod
    def _find_unit(formula: CNFFormula) -> Literal | None:
        for clause in formula.clauses:
            if len(clause) == 1:
                return next(iter(clause.literals))
        return None

    @staticmethod
    def _find_pure(formula: CNFFormula) -> Literal | None:
        polarity: dict[str, set[bool]] = {}
        for clause in formula.clauses:
            for literal in clause.literals:
                polarity.setdefault(literal.variable, set()).add(
                    literal.negated
                )
        for variable in sorted(polarity):
            signs = polarity[variable]
            if len(signs) == 1:
                return Literal(variable, next(iter(signs)))
        return None

    @staticmethod
    def _branch_variable(formula: CNFFormula) -> str:
        """Most-occurrences heuristic with deterministic tie-break."""
        counts: Counter[str] = Counter()
        for clause in formula.clauses:
            counts.update(clause.variables)
        best = max(sorted(counts), key=lambda name: counts[name])
        return best


def brute_force_solve(formula: CNFFormula) -> dict[str, bool] | None:
    """Try all 2^n assignments — the comparator for property tests."""
    variables = sorted(formula.variables)
    for values in product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if formula.evaluate(assignment):
            return assignment
    if not variables and formula.evaluate({}):
        return {}
    return None


def solve(formula: CNFFormula) -> dict[str, bool] | None:
    """Module-level convenience wrapper around :class:`DPLLSolver`."""
    return DPLLSolver().solve(formula)
