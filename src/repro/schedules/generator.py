"""Workload and schedule generators for tests, census, and benchmarks.

Two generation styles:

* :func:`random_programs` / :func:`random_schedule` — seeded random
  transactions and interleavings, used by the property tests and the
  long-duration benchmarks;
* :func:`interleavings` — exhaustive enumeration of every interleaving
  of a set of transaction programs, used by the Figure-2 census to
  count the population of each correctness-class region exactly.
"""

from __future__ import annotations

import random
from math import factorial
from typing import Iterator, Sequence

from ..errors import ScheduleError
from .operations import Operation, OpType
from .schedule import Schedule


def random_programs(
    num_transactions: int,
    ops_per_transaction: int,
    entities: Sequence[str],
    write_ratio: float = 0.5,
    seed: int | None = None,
) -> dict[str, tuple[Operation, ...]]:
    """Random straight-line transaction programs.

    Each operation picks a uniform entity and is a write with
    probability ``write_ratio``.  Transaction ids are ``"1"``, ``"2"``…
    matching the paper's ``t_1, t_2`` notation.
    """
    if num_transactions < 1 or ops_per_transaction < 1:
        raise ScheduleError("need at least one transaction and operation")
    if not entities:
        raise ScheduleError("need at least one entity")
    rng = random.Random(seed)
    programs: dict[str, tuple[Operation, ...]] = {}
    for index in range(1, num_transactions + 1):
        txn = str(index)
        ops = tuple(
            Operation(
                txn,
                OpType.WRITE
                if rng.random() < write_ratio
                else OpType.READ,
                rng.choice(entities),
            )
            for _ in range(ops_per_transaction)
        )
        programs[txn] = ops
    return programs


def random_interleaving(
    programs: dict[str, Sequence[Operation]],
    seed: int | None = None,
) -> Schedule:
    """A uniform random interleaving preserving each program's order."""
    rng = random.Random(seed)
    cursors = {txn: 0 for txn in programs}
    remaining = [
        txn for txn, ops in programs.items() for _ in ops
    ]
    rng.shuffle(remaining)
    ops: list[Operation] = []
    for txn in remaining:
        ops.append(programs[txn][cursors[txn]])
        cursors[txn] += 1
    return Schedule(ops)


def random_schedule(
    num_transactions: int,
    ops_per_transaction: int,
    entities: Sequence[str],
    write_ratio: float = 0.5,
    seed: int | None = None,
) -> Schedule:
    """Random programs plus a random interleaving, in one call."""
    programs = random_programs(
        num_transactions,
        ops_per_transaction,
        entities,
        write_ratio,
        seed,
    )
    return random_interleaving(
        programs, None if seed is None else seed + 1
    )


def interleaving_count(programs: dict[str, Sequence[Operation]]) -> int:
    """Number of distinct interleavings (multinomial coefficient)."""
    total = sum(len(ops) for ops in programs.values())
    count = factorial(total)
    for ops in programs.values():
        count //= factorial(len(ops))
    return count


def interleavings(
    programs: dict[str, Sequence[Operation]],
) -> Iterator[Schedule]:
    """Exhaustively enumerate every interleaving of the programs.

    The count is the multinomial coefficient
    (:func:`interleaving_count`) — use only on small inputs.  The
    Figure-2 census relies on this to measure region populations
    exactly rather than by sampling.
    """
    txns = sorted(programs)
    lengths = {txn: len(programs[txn]) for txn in txns}
    prefix: list[Operation] = []
    cursors = {txn: 0 for txn in txns}

    def backtrack() -> Iterator[Schedule]:
        if len(prefix) == sum(lengths.values()):
            yield Schedule(prefix)
            return
        for txn in txns:
            if cursors[txn] < lengths[txn]:
                prefix.append(programs[txn][cursors[txn]])
                cursors[txn] += 1
                yield from backtrack()
                cursors[txn] -= 1
                prefix.pop()

    return backtrack()
