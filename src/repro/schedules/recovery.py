"""Recoverability classes: RC, ACA, ST (the Section-1 remark).

The paper's first criticism of plain serializability: "included among
the serializable schedules are schedules that present several obstacles
to crash recovery (allowance of cascading rollbacks and non-recoverable
schedules)."  This module supplies the classical hierarchy so that
criticism is checkable:

* **RC (recoverable)** — every reader commits only after every
  transaction it read from has committed;
* **ACA (avoids cascading aborts)** — transactions read only from
  committed transactions;
* **ST (strict)** — no entity is read *or overwritten* while an
  uncommitted transaction's write on it is live.

``ST ⊂ ACA ⊂ RC``, and all are incomparable with serializability —
the tests exhibit serializable-but-unrecoverable schedules, which is
precisely the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ScheduleError
from .schedule import Schedule


@dataclass(frozen=True)
class CommittedSchedule:
    """A schedule plus the commit order of its transactions.

    ``commit_order`` lists transactions in commit sequence; every
    commit is taken to happen after all data operations (commits may
    be interleaved with other transactions' later operations only in
    the generalized constructor :meth:`with_commit_points`).
    """

    schedule: Schedule
    commit_order: tuple[str, ...]

    def __post_init__(self) -> None:
        txns = set(self.schedule.transactions)
        if set(self.commit_order) != txns or len(
            self.commit_order
        ) != len(txns):
            raise ScheduleError(
                "commit order must list every transaction exactly once"
            )

    def commit_position(self, txn: str) -> int:
        return self.commit_order.index(txn)


def is_recoverable(committed: CommittedSchedule) -> bool:
    """RC: readers commit after their writers.

    For every read that observes transaction ``w``'s write, ``w`` must
    appear before the reader in the commit order.
    """
    schedule = committed.schedule
    for (reader, __, ___), writer in schedule.read_sources().items():
        if writer is None or writer == reader:
            continue
        if committed.commit_position(writer) > committed.commit_position(
            reader
        ):
            return False
    return True


def avoids_cascading_aborts(committed: CommittedSchedule) -> bool:
    """ACA: only committed data is read.

    Each read from another transaction's write must occur after that
    writer's commit point.  With end-of-schedule commit semantics we
    approximate the commit point by requiring the writer to precede the
    reader in the commit order **and** the writer to have no operations
    after the read (i.e. the writer had finished its work).
    """
    schedule = committed.schedule
    ops = schedule.operations
    last_op_index = {
        txn: max(i for i, op in enumerate(ops) if op.txn == txn)
        for txn in schedule.transactions
    }
    last_writer: dict[str, str] = {}
    for index, op in enumerate(ops):
        if op.is_read:
            writer = last_writer.get(op.entity)
            if writer is None or writer == op.txn:
                continue
            if committed.commit_position(
                writer
            ) > committed.commit_position(op.txn):
                return False
            if last_op_index[writer] > index:
                return False  # writer still active at read time
        else:
            last_writer[op.entity] = op.txn
    return True


def is_strict(committed: CommittedSchedule) -> bool:
    """ST: no reading or overwriting of uncommitted writes."""
    schedule = committed.schedule
    ops = schedule.operations
    last_op_index = {
        txn: max(i for i, op in enumerate(ops) if op.txn == txn)
        for txn in schedule.transactions
    }
    last_writer: dict[str, str] = {}
    for index, op in enumerate(ops):
        writer = last_writer.get(op.entity)
        if (
            writer is not None
            and writer != op.txn
            and (
                committed.commit_position(writer)
                > committed.commit_position(op.txn)
                or last_op_index[writer] > index
            )
        ):
            return False
        if op.is_write:
            last_writer[op.entity] = op.txn
    return True


def recovery_profile(
    schedule: Schedule, commit_order: Sequence[str]
) -> dict[str, bool]:
    """RC/ACA/ST membership in one call.

    Served by the single-pass array predicates in
    :mod:`repro.schedules.fastsched`; the per-predicate functions
    above transcribe the definitions directly and remain the
    differential oracle.
    """
    from .fastsched import fast_recovery_profile

    committed = CommittedSchedule(schedule, tuple(commit_order))
    return fast_recovery_profile(committed)
