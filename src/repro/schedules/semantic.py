"""Semantic (commutativity-aware) conflicts — §2.3's other example.

"The most common example of using semantics is defining accesses to be
either a read or a write of a data item, but other examples can be
found in [Korth 1983]."  The canonical Korth-1983 example is the
*increment*: a blind add-constant that commutes with other increments.
Two increments on the same item need no mutual ordering — any
interleaving yields the same sum — so the semantic conflict relation
drops increment/increment pairs:

========= ====== ====== =========
          read   write  increment
read      —      ✕      ✕
write     ✕      ✕      ✕
increment ✕      ✕      —
========= ====== ====== =========

The classical testers treat increments as writes (conservative); the
testers here exploit the commutativity, admitting strictly more
schedules — the same move the whole paper makes at a larger scale.
"""

from __future__ import annotations

from .operations import Operation
from .schedule import Schedule


def semantic_conflict(first: Operation, second: Operation) -> bool:
    """The commutativity-aware conflict relation (table above)."""
    if first.entity != second.entity or first.txn == second.txn:
        return False
    if first.is_read and second.is_read:
        return False
    if first.is_increment and second.is_increment:
        return False
    return True


def semantic_conflict_graph(schedule: Schedule) -> dict[str, set[str]]:
    """Precedence graph under semantic conflicts."""
    adjacency: dict[str, set[str]] = {
        txn: set() for txn in schedule.transactions
    }
    ops = schedule.operations
    for i, first in enumerate(ops):
        for j in range(i + 1, len(ops)):
            if semantic_conflict(first, ops[j]):
                adjacency[first.txn].add(ops[j].txn)
    return adjacency


def is_semantically_conflict_serializable(schedule: Schedule) -> bool:
    """CSR under the semantic conflict relation.

    A superset of classical CSR: every classical conflict pair is a
    semantic conflict pair except increment/increment, so any
    classically serializable schedule stays serializable and
    increment-heavy workloads gain.
    """
    # Imported lazily: the graph helpers live in repro.classes, which
    # itself builds on repro.schedules — a module-level import here
    # would make package initialization order-sensitive.
    from ..classes.graphs import has_cycle

    return not has_cycle(semantic_conflict_graph(schedule))


def semantic_serialization_order(
    schedule: Schedule,
) -> tuple[str, ...] | None:
    """A witnessing serial order under semantic conflicts, or None."""
    from ..classes.graphs import topological_order

    order = topological_order(semantic_conflict_graph(schedule))
    if order is None:
        return None
    return tuple(order)
