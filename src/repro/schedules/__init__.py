"""The classical (standard-model) schedule substrate (Section 4.1)."""

from .fastsched import (
    FastSchedule,
    fast_of,
    fast_recovery_profile,
)
from .generator import (
    interleaving_count,
    interleavings,
    random_interleaving,
    random_programs,
    random_schedule,
)
from .operations import I, Operation, OpType, R, W
from .recovery import (
    CommittedSchedule,
    avoids_cascading_aborts,
    is_recoverable,
    is_strict,
    recovery_profile,
)
from .schedule import Schedule
from .semantic import (
    is_semantically_conflict_serializable,
    semantic_conflict,
    semantic_conflict_graph,
    semantic_serialization_order,
)

__all__ = [
    "CommittedSchedule",
    "FastSchedule",
    "I",
    "Operation",
    "OpType",
    "R",
    "Schedule",
    "W",
    "avoids_cascading_aborts",
    "fast_of",
    "fast_recovery_profile",
    "interleaving_count",
    "is_recoverable",
    "is_semantically_conflict_serializable",
    "is_strict",
    "interleavings",
    "random_interleaving",
    "random_programs",
    "random_schedule",
    "recovery_profile",
    "semantic_conflict",
    "semantic_conflict_graph",
    "semantic_serialization_order",
]
