"""Read/write operations — the standard model's primitives (Section 4.1).

In the standard model a transaction is a sequence of operations drawn
from ``{read, write} × E``.  :class:`Operation` is one step of one
transaction; conflict tests for both the classical and the multiversion
notion of conflict live here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ScheduleError


class OpType(enum.Enum):
    """Primitive access kinds.

    ``READ``/``WRITE`` are the standard model's alphabet.
    ``INCREMENT`` is the classic semantic extension the paper cites
    (§2.3, [Korth 1983]): a blind add that commutes with other
    increments.  The *classical* testers conservatively treat an
    increment as a write; the semantic tester in
    :mod:`repro.schedules.semantic` exploits the commutativity.
    """

    READ = "r"
    WRITE = "w"
    INCREMENT = "i"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True, slots=True)
class Operation:
    """One step: transaction ``txn`` reads or writes ``entity``.

    ``slots=True`` matters here: operations are the densest objects in
    the system (a census run materialises millions), and the per-
    instance ``__dict__`` both doubled their footprint and slowed every
    attribute read.  The cached hash moves into a declared slot —
    excluded from ``__init__``/``repr``/comparisons so equality and
    ordering still see only the ``(txn, kind, entity)`` triple.
    """

    txn: str
    kind: OpType
    entity: str
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.txn:
            raise ScheduleError("operation needs a transaction id")
        if not self.entity:
            raise ScheduleError("operation needs an entity")
        # Operations are hashed constantly (conflict fingerprints,
        # occurrence counting, precedence graphs); hashing the enum
        # member on every lookup dominated census profiles, so the
        # hash is computed once at construction.
        object.__setattr__(
            self, "_hash", hash((self.txn, self.kind, self.entity))
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_read(self) -> bool:
        return self.kind is OpType.READ

    @property
    def is_write(self) -> bool:
        """Does the step install a new value?

        Increments count: the classical model has no finer category, so
        every non-read is a write to the standard testers.
        """
        return self.kind in (OpType.WRITE, OpType.INCREMENT)

    @property
    def is_increment(self) -> bool:
        return self.kind is OpType.INCREMENT

    def conflicts_with(self, other: "Operation") -> bool:
        """Classical conflict: same entity, different transactions, and
        at least one write (Section 4.3's standard-model definition).
        Increments are writes here; see
        :func:`repro.schedules.semantic.semantic_conflict` for the
        commutativity-aware relation."""
        return (
            self.entity == other.entity
            and self.txn != other.txn
            and (self.is_write or other.is_write)
        )

    def __str__(self) -> str:
        return f"{self.kind}{self.txn}({self.entity})"


def R(txn: str, entity: str) -> Operation:
    """Shorthand for a read step: ``R("1", "x")`` is ``r1(x)``."""
    return Operation(txn, OpType.READ, entity)


def W(txn: str, entity: str) -> Operation:
    """Shorthand for a write step: ``W("1", "x")`` is ``w1(x)``."""
    return Operation(txn, OpType.WRITE, entity)


def I(txn: str, entity: str) -> Operation:
    """Shorthand for an increment step: ``I("1", "x")`` is ``i1(x)``."""
    return Operation(txn, OpType.INCREMENT, entity)
