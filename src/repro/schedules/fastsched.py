"""Array-encoded schedules — the hot-path twin of :class:`Schedule`.

The object model (:mod:`repro.schedules.schedule`) hashes an
:class:`~repro.schedules.operations.Operation` triple for every
conflict probe and rescans the whole operation list quadratically to
enumerate conflicting pairs.  That is the right shape for an oracle —
it transcribes Section 4.3 directly — but it dominates profiles the
moment schedules are classified in bulk (the census) or on the live
path (the fuzzer's classifier-lattice oracle, ``repro recover
--verify``).

:class:`FastSchedule` re-encodes a schedule as parallel ``int`` arrays:

* transaction names are interned to dense ids in **first-appearance
  order** (the same order :attr:`Schedule.transactions` reports);
* entities are interned the same way;
* each step is then ``(txn_ids[i], kinds[i], entity_ids[i])`` where
  ``kinds[i]`` is 0 for a read and non-zero for the write-like steps
  (write = 1, increment = 2 — the classical testers treat both as
  writes, mirroring :attr:`Operation.is_write`).

Conflict enumeration groups steps by entity first, so the work is
O(sum over entities of pairs-on-that-entity) instead of O(n²) over the
whole schedule; the precedence graph needs only one pass per entity
over accumulated reader/writer sets.  The recovery predicates (RC /
ACA / ST) become single passes over the arrays with ``O(1)`` commit-
position lookups.

Equivalence contract
--------------------

Every method here must return *exactly* what the object path returns —
same sets, same dict contents, same booleans.  The object
implementations are kept callable (``Schedule.conflict_pairs_reference``,
``conflict_graph_reference``, the predicate trio in
:mod:`repro.schedules.recovery`) precisely so the differential tests in
``tests/schedules/test_fastsched.py`` can hold the two paths against
each other on generated schedules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .operations import Operation, OpType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .recovery import CommittedSchedule
    from .schedule import Schedule

_KIND_CODES = {OpType.READ: 0, OpType.WRITE: 1, OpType.INCREMENT: 2}
_KINDS_BY_CODE = (OpType.READ, OpType.WRITE, OpType.INCREMENT)


class FastSchedule:
    """Parallel-array encoding of one schedule.

    Instances are immutable once built; derived arrays are computed
    lazily and cached.  Build via :meth:`from_schedule` (the memoized
    accessor :func:`fast_of` is cheaper when the schedule may be
    encoded repeatedly).
    """

    __slots__ = (
        "txns",
        "entities",
        "txn_ids",
        "kinds",
        "entity_ids",
        "_txn_index",
        "_entity_index",
        "_by_entity",
        "_occurrences",
        "_conflict_pairs",
        "_graph_ids",
    )

    def __init__(self, operations: "tuple[Operation, ...]") -> None:
        txn_index: dict[str, int] = {}
        entity_index: dict[str, int] = {}
        txn_ids: list[int] = []
        kinds: list[int] = []
        entity_ids: list[int] = []
        for op in operations:
            txn_id = txn_index.setdefault(op.txn, len(txn_index))
            entity_id = entity_index.setdefault(
                op.entity, len(entity_index)
            )
            txn_ids.append(txn_id)
            kinds.append(_KIND_CODES[op.kind])
            entity_ids.append(entity_id)
        self.txns: tuple[str, ...] = tuple(txn_index)
        self.entities: tuple[str, ...] = tuple(entity_index)
        self.txn_ids = txn_ids
        self.kinds = kinds
        self.entity_ids = entity_ids
        self._txn_index = txn_index
        self._entity_index = entity_index
        self._by_entity: list[list[int]] | None = None
        self._occurrences: list[int] | None = None
        self._conflict_pairs: list[tuple[int, int]] | None = None
        self._graph_ids: list[set[int]] | None = None

    @classmethod
    def from_schedule(cls, schedule: "Schedule") -> "FastSchedule":
        return cls(schedule.operations)

    def __len__(self) -> int:
        return len(self.txn_ids)

    def operation(self, index: int) -> Operation:
        """Decode step ``index`` back to the object model."""
        return Operation(
            self.txns[self.txn_ids[index]],
            _KINDS_BY_CODE[self.kinds[index]],
            self.entities[self.entity_ids[index]],
        )

    # -- grouping -----------------------------------------------------

    def by_entity(self) -> "list[list[int]]":
        """Step indexes grouped per entity id, in schedule order."""
        if self._by_entity is None:
            groups: list[list[int]] = [[] for _ in self.entities]
            for index, entity_id in enumerate(self.entity_ids):
                groups[entity_id].append(index)
            self._by_entity = groups
        return self._by_entity

    # -- conflicts ----------------------------------------------------

    def conflict_pairs(self) -> "list[tuple[int, int]]":
        """All classically conflicting index pairs, ``(i, j)`` with
        ``i < j``, sorted lexicographically (the order the object
        generator yields).

        Grouping by entity first means unrelated entities never meet:
        the cost is quadratic only *within* an entity's access list,
        which is the true size of the conflict relation.
        """
        if self._conflict_pairs is None:
            txn_ids = self.txn_ids
            kinds = self.kinds
            pairs: list[tuple[int, int]] = []
            for indexes in self.by_entity():
                count = len(indexes)
                for a in range(count):
                    i = indexes[a]
                    txn_i = txn_ids[i]
                    write_i = kinds[i] != 0
                    for b in range(a + 1, count):
                        j = indexes[b]
                        if txn_ids[j] == txn_i:
                            continue
                        if write_i or kinds[j] != 0:
                            pairs.append((i, j))
            pairs.sort()
            self._conflict_pairs = pairs
        return self._conflict_pairs

    def occurrence_numbers(self) -> "list[int]":
        """How many earlier steps are identical to each step."""
        if self._occurrences is None:
            counts: dict[tuple[int, int, int], int] = {}
            numbers: list[int] = []
            for txn_id, kind, entity_id in zip(
                self.txn_ids, self.kinds, self.entity_ids
            ):
                key = (txn_id, kind, entity_id)
                seen = counts.get(key, 0)
                counts[key] = seen + 1
                numbers.append(seen)
            self._occurrences = numbers
        return self._occurrences

    def conflict_fingerprint(
        self,
    ) -> "frozenset[tuple[Operation, Operation, int, int]]":
        """Identical to :meth:`Schedule.conflict_fingerprint`.

        Decoded to :class:`Operation` tuples because fingerprints are
        compared *across* schedules (census equivalence buckets), and
        per-schedule interned ids are not stable across interleavings
        of the same programs.
        """
        numbers = self.occurrence_numbers()
        return frozenset(
            (
                self.operation(i),
                self.operation(j),
                numbers[i],
                numbers[j],
            )
            for i, j in self.conflict_pairs()
        )

    def conflict_graph_ids(self) -> "list[set[int]]":
        """Precedence adjacency over txn ids: ``j in out[i]`` iff some
        step of ``txns[i]`` conflicts with and precedes a step of
        ``txns[j]``.

        One pass per entity, carrying the sets of transactions that
        have read / written the entity so far — every earlier writer
        precedes any later accessor, and every earlier reader precedes
        any later writer.  O(steps × live transactions) instead of
        O(steps²).
        """
        if self._graph_ids is None:
            txn_ids = self.txn_ids
            kinds = self.kinds
            adjacency: list[set[int]] = [set() for _ in self.txns]
            for indexes in self.by_entity():
                readers: set[int] = set()
                writers: set[int] = set()
                for i in indexes:
                    txn = txn_ids[i]
                    for writer in writers:
                        if writer != txn:
                            adjacency[writer].add(txn)
                    if kinds[i] != 0:
                        for reader in readers:
                            if reader != txn:
                                adjacency[reader].add(txn)
                        writers.add(txn)
                    else:
                        readers.add(txn)
            self._graph_ids = adjacency
        return self._graph_ids

    def conflict_graph(self) -> "dict[str, set[str]]":
        """The precedence graph decoded to names — same dict the
        object builder in :mod:`repro.classes.conflict` produces."""
        txns = self.txns
        return {
            txns[i]: {txns[j] for j in out}
            for i, out in enumerate(self.conflict_graph_ids())
        }

    # -- standard-model semantics ------------------------------------

    def read_sources_ids(self) -> "Iterator[tuple[int, int, int, int]]":
        """``(index, reader_id, entity_id, writer_id)`` per read, with
        ``writer_id == -1`` for the initial database value — the
        mono-version overwrite rule in id space."""
        last_writer: list[int] = [-1] * len(self.entities)
        for index, kind in enumerate(self.kinds):
            entity_id = self.entity_ids[index]
            if kind == 0:
                yield (
                    index,
                    self.txn_ids[index],
                    entity_id,
                    last_writer[entity_id],
                )
            else:
                last_writer[entity_id] = self.txn_ids[index]

    def final_writers(self) -> "dict[str, str]":
        last: dict[int, int] = {}
        for index, kind in enumerate(self.kinds):
            if kind != 0:
                last[self.entity_ids[index]] = self.txn_ids[index]
        return {
            self.entities[entity_id]: self.txns[txn_id]
            for entity_id, txn_id in last.items()
        }


def fast_of(schedule: "Schedule") -> FastSchedule:
    """The memoized :class:`FastSchedule` twin of a schedule."""
    return schedule.memo(
        "fastsched", lambda: FastSchedule.from_schedule(schedule)
    )


# -- recovery predicates, array form ------------------------------------


def _last_op_indexes(fast: FastSchedule) -> "list[int]":
    last = [-1] * len(fast.txns)
    for index, txn_id in enumerate(fast.txn_ids):
        last[txn_id] = index
    return last


def _commit_positions(
    fast: FastSchedule, commit_order: "tuple[str, ...]"
) -> "list[int]":
    positions = [0] * len(fast.txns)
    for position, name in enumerate(commit_order):
        positions[fast._txn_index[name]] = position
    return positions


def fast_is_recoverable(committed: "CommittedSchedule") -> bool:
    """RC, single pass: readers commit after their writers."""
    fast = fast_of(committed.schedule)
    position = _commit_positions(fast, committed.commit_order)
    for __, reader, ___, writer in fast.read_sources_ids():
        if writer < 0 or writer == reader:
            continue
        if position[writer] > position[reader]:
            return False
    return True


def fast_avoids_cascading_aborts(committed: "CommittedSchedule") -> bool:
    """ACA, single pass: only committed data is read."""
    fast = fast_of(committed.schedule)
    position = _commit_positions(fast, committed.commit_order)
    last_op = _last_op_indexes(fast)
    for index, reader, ___, writer in fast.read_sources_ids():
        if writer < 0 or writer == reader:
            continue
        if position[writer] > position[reader]:
            return False
        if last_op[writer] > index:
            return False  # writer still active at read time
    return True


def fast_is_strict(committed: "CommittedSchedule") -> bool:
    """ST, single pass: no access to uncommitted writes."""
    fast = fast_of(committed.schedule)
    position = _commit_positions(fast, committed.commit_order)
    last_op = _last_op_indexes(fast)
    last_writer = [-1] * len(fast.entities)
    for index, kind in enumerate(fast.kinds):
        entity_id = fast.entity_ids[index]
        txn = fast.txn_ids[index]
        writer = last_writer[entity_id]
        if (
            writer >= 0
            and writer != txn
            and (
                position[writer] > position[txn]
                or last_op[writer] > index
            )
        ):
            return False
        if kind != 0:
            last_writer[entity_id] = txn
    return True


def fast_recovery_profile(
    committed: "CommittedSchedule",
) -> "dict[str, bool]":
    """RC/ACA/ST membership in one call, on the array encoding."""
    return {
        "RC": fast_is_recoverable(committed),
        "ACA": fast_avoids_cascading_aborts(committed),
        "ST": fast_is_strict(committed),
    }
