"""Schedules — interleaved executions of read/write transactions.

A :class:`Schedule` is a total order of :class:`Operation` steps.  It
provides everything the Section-4 correctness-class testers need:

* the mono-version *reads-from* function (each read is served by the
  most recent earlier write — the standard model's overwrite rule);
* final writers per entity;
* view equivalence (same reads-from for every read step, same final
  writers);
* conflict pairs and the serial schedules it could be compared to;
* projections onto entity subsets — the decomposition PWSR/PWCSR
  apply per conjunct (the paper's Examples 3.a/3.b);
* a compact parser for the paper's figures:
  ``Schedule.parse("r1(x) w1(x) r2(x) w2(y)")``.

Schedules are immutable and hashable.  Derived structures the class
testers ask for repeatedly — programs, reads-from, final writers,
occurrence numbers, the conflict fingerprint, precedence graphs — are
memoized per instance (:meth:`Schedule.memo`); treat every returned
container as read-only.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Iterator, Sequence

from ..errors import ScheduleError
from .operations import Operation, OpType

_OP_RE = re.compile(
    r"([rwi])\s*([A-Za-z_0-9.]+)\s*\(\s*([A-Za-z_0-9.]+)\s*\)"
)
_KIND_BY_LETTER = {
    "r": OpType.READ,
    "w": OpType.WRITE,
    "i": OpType.INCREMENT,
}


class Schedule:
    """An immutable totally-ordered sequence of operations."""

    __slots__ = ("_ops", "_hash", "_memo")

    def __init__(self, operations: Iterable[Operation]) -> None:
        self._ops: tuple[Operation, ...] = tuple(operations)
        self._hash: int | None = None
        self._memo: dict[object, object] = {}

    def memo(self, key: object, factory: "Callable[[], object]") -> object:
        """Per-schedule memo cache for derived structures.

        The class testers recompute programs, reads-from maps, and
        precedence graphs many times per classification; immutability
        makes them safe to compute once.  Callers must not mutate the
        cached value.
        """
        try:
            return self._memo[key]
        except KeyError:
            value = self._memo[key] = factory()
            return value

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Schedule":
        """Parse ``"r1(x) w1(x) r2(y)"`` into a schedule.

        The token format is ``r<txn>(<entity>)`` / ``w<txn>(<entity>)``;
        whitespace and commas between tokens are ignored.  This mirrors
        how the paper lays out its example schedules.
        """
        cleaned = text.replace(",", " ")
        ops: list[Operation] = []
        consumed = 0
        for match in _OP_RE.finditer(cleaned):
            if cleaned[consumed : match.start()].strip():
                raise ScheduleError(
                    f"unparseable schedule text near "
                    f"{cleaned[consumed:match.start()]!r}"
                )
            kind, txn, entity = match.groups()
            ops.append(Operation(txn, _KIND_BY_LETTER[kind], entity))
            consumed = match.end()
        if cleaned[consumed:].strip():
            raise ScheduleError(
                f"unparseable schedule text near {cleaned[consumed:]!r}"
            )
        if not ops:
            raise ScheduleError("empty schedule text")
        return cls(ops)

    @classmethod
    def serial(
        cls, programs: dict[str, Sequence[Operation]], order: Sequence[str]
    ) -> "Schedule":
        """The serial schedule running whole transactions in ``order``."""
        missing = set(order) ^ set(programs)
        if missing:
            raise ScheduleError(
                f"order and programs disagree on transactions {sorted(missing)}"
            )
        ops: list[Operation] = []
        for txn in order:
            ops.extend(programs[txn])
        return cls(ops)

    # -- basic structure -----------------------------------------------------

    @property
    def operations(self) -> tuple[Operation, ...]:
        return self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __getitem__(self, index: int) -> Operation:
        return self._ops[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._ops == other._ops

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._ops)
        return self._hash

    def __str__(self) -> str:
        return " ".join(str(op) for op in self._ops)

    def __repr__(self) -> str:
        return f"Schedule({self})"

    def __getstate__(self) -> tuple[Operation, ...]:
        # Ship only the operations across process boundaries (the
        # census workers re-derive the memo cache locally).
        return self._ops

    def __setstate__(self, state: tuple[Operation, ...]) -> None:
        self._ops = state
        self._hash = None
        self._memo = {}

    @property
    def transactions(self) -> tuple[str, ...]:
        """Transaction ids in first-appearance order."""

        def build() -> tuple[str, ...]:
            seen: dict[str, None] = {}
            for op in self._ops:
                seen.setdefault(op.txn, None)
            return tuple(seen)

        return self.memo("transactions", build)

    @property
    def entities(self) -> frozenset[str]:
        return self.memo(
            "entities",
            lambda: frozenset(op.entity for op in self._ops),
        )

    def program(self, txn: str) -> tuple[Operation, ...]:
        """The operations of one transaction, in schedule order.

        Under the standard model a transaction's program *is* its
        schedule-order projection.
        """
        return tuple(op for op in self._ops if op.txn == txn)

    def programs(self) -> dict[str, tuple[Operation, ...]]:
        def build() -> dict[str, tuple[Operation, ...]]:
            result: dict[str, list[Operation]] = {}
            for op in self._ops:
                result.setdefault(op.txn, []).append(op)
            return {txn: tuple(ops) for txn, ops in result.items()}

        return self.memo("programs", build)

    def is_serial(self) -> bool:
        """No transaction interleaves with another."""
        last_seen: str | None = None
        finished: set[str] = set()
        for op in self._ops:
            if op.txn != last_seen:
                if op.txn in finished:
                    return False
                if last_seen is not None:
                    finished.add(last_seen)
                last_seen = op.txn
        return True

    # -- standard-model semantics ----------------------------------------------

    def reads_from(self) -> list[tuple[int, str | None]]:
        """Mono-version reads-from: one entry per read step.

        Returns ``(op_index, writer)`` pairs in schedule order, where
        ``writer`` is the transaction whose write the read observes
        under the standard model's overwrite rule (``None`` = the
        initial database value).  Reads observe a transaction's *own*
        earlier writes too, matching serial-schedule semantics.
        """
        last_writer: dict[str, str] = {}
        result: list[tuple[int, str | None]] = []
        for index, op in enumerate(self._ops):
            if op.is_read:
                result.append((index, last_writer.get(op.entity)))
            else:
                last_writer[op.entity] = op.txn
        return result

    def read_sources(self) -> dict[tuple[str, str, int], str | None]:
        """Reads-from keyed by (txn, entity, occurrence-number).

        Occurrence numbers count a transaction's reads of one entity in
        program order, making the mapping comparable across schedules
        with the same programs (the basis of view equivalence).
        """

        def build() -> dict[tuple[str, str, int], str | None]:
            counters: dict[tuple[str, str], int] = {}
            sources: dict[tuple[str, str, int], str | None] = {}
            last_writer: dict[str, str] = {}
            for op in self._ops:
                if op.is_read:
                    key = (op.txn, op.entity)
                    occurrence = counters.get(key, 0)
                    counters[key] = occurrence + 1
                    sources[(op.txn, op.entity, occurrence)] = (
                        last_writer.get(op.entity)
                    )
                else:
                    last_writer[op.entity] = op.txn
            return sources

        return self.memo("read_sources", build)

    def final_writers(self) -> dict[str, str]:
        """The transaction writing the surviving version of each entity."""

        def build() -> dict[str, str]:
            result: dict[str, str] = {}
            for op in self._ops:
                if op.is_write:
                    result[op.entity] = op.txn
            return result

        return self.memo("final_writers", build)

    def view_equivalent(self, other: "Schedule") -> bool:
        """Classical view equivalence (same reads, same final state).

        Both schedules must run the same transactions with the same
        programs; every read must observe the same writer; every entity
        must have the same final writer.
        """
        if self.programs() != other.programs():
            return False
        if self.read_sources() != other.read_sources():
            return False
        return self.final_writers() == other.final_writers()

    # -- conflicts ---------------------------------------------------------------

    def conflict_pairs(self) -> Iterator[tuple[int, int]]:
        """Ordered index pairs of classically conflicting operations.

        Served by the array-encoded twin
        (:mod:`repro.schedules.fastsched`), which groups steps by
        entity so unrelated entities never meet;
        :meth:`conflict_pairs_reference` is the direct quadratic
        transcription kept as the differential oracle.
        """
        from .fastsched import fast_of

        return iter(fast_of(self).conflict_pairs())

    def conflict_pairs_reference(self) -> Iterator[tuple[int, int]]:
        """The Section-4.3 definition, transcribed directly (oracle)."""
        for i, first in enumerate(self._ops):
            for j in range(i + 1, len(self._ops)):
                if first.conflicts_with(self._ops[j]):
                    yield (i, j)

    def conflict_equivalent(self, other: "Schedule") -> bool:
        """Same programs and same order on all conflicting pairs."""
        if self.programs() != other.programs():
            return False
        return self.conflict_fingerprint() == other.conflict_fingerprint()

    def occurrence_numbers(self) -> tuple[int, ...]:
        """Occurrence number of every step, computed in one pass.

        ``occurrence_numbers()[i]`` counts how many earlier steps are
        identical to step ``i`` — the disambiguator for programs that
        repeat an operation.  (The old per-pair prefix rescan made
        :meth:`conflict_equivalent` cubic in the schedule length.)
        """

        def build() -> tuple[int, ...]:
            from .fastsched import fast_of

            return tuple(fast_of(self).occurrence_numbers())

        return self.memo("occurrence_numbers", build)

    def conflict_fingerprint(
        self,
    ) -> frozenset[tuple[Operation, Operation, int, int]]:
        """The order of all conflicting pairs, as a comparable set.

        Each element is ``(first, second, occ_first, occ_second)`` for a
        conflicting pair with ``first`` scheduled earlier.  Two
        schedules over the same programs are conflict equivalent iff
        their fingerprints are equal; the census also uses the
        fingerprint to recognise classification-equivalent
        interleavings.
        """

        def build() -> frozenset[tuple[Operation, Operation, int, int]]:
            numbers = self.occurrence_numbers()
            return frozenset(
                (self._ops[i], self._ops[j], numbers[i], numbers[j])
                for i, j in self.conflict_pairs()
            )

        return self.memo("conflict_fingerprint", build)

    def _occurrence_key(self, i: int, j: int) -> tuple[int, int]:
        """Disambiguate repeated identical operations within programs."""
        numbers = self.occurrence_numbers()
        return (numbers[i], numbers[j])

    # -- projections (for predicate-wise classes) ----------------------------------

    def project_entities(self, entities: Iterable[str]) -> "Schedule | None":
        """Keep only operations on the given entities (Examples 3.a/3.b).

        Transactions whose every operation is dropped disappear from
        the projection.  Returns ``None`` when nothing remains.

        Memoized: the predicate-wise testers (PWCSR, PWSR, PC) each
        project onto the same conjuncts, and the projected schedule
        carries its own memo cache for their serializability searches.
        """
        keep = frozenset(entities)

        def build() -> "Schedule | None":
            ops = [op for op in self._ops if op.entity in keep]
            if not ops:
                return None
            return Schedule(ops)

        return self.memo(("project_entities", keep), build)

    def project_transactions(self, txns: Iterable[str]) -> "Schedule | None":
        keep = frozenset(txns)
        ops = [op for op in self._ops if op.txn in keep]
        if not ops:
            return None
        return Schedule(ops)

    # -- serial comparisons -----------------------------------------------------------

    def serializations(self) -> Iterator[tuple[tuple[str, ...], "Schedule"]]:
        """All serial schedules over the same programs.

        Yields ``(order, serial_schedule)`` pairs — the comparison set
        for the exhaustive view-serializability test.  Exponential in
        the number of transactions, as serializability testing must be
        (the recognition problem is NP-complete).
        """
        from itertools import permutations

        programs = self.programs()
        for order in permutations(self.transactions):
            yield order, Schedule.serial(programs, order)
