"""Fuzz plans: what a run will do, decided before it starts.

Determinism and shrinkability both fall out of one decision: the seed
is consumed *up front* to produce an explicit :class:`FuzzPlan` — every
client's scripted transactions (predicates, writes, think times,
terminal action), the fault schedule (disconnects, an optional armed
crash point), and the server tunables (queue size, request timeout,
strict mode).  Execution then follows the plan with no further
randomness, so

* the same seed always produces the same run (the RNG is never
  consulted mid-flight, where control flow could skew the stream), and
* the shrinker can delete clients, transactions, and individual
  operations from the plan and re-run, which would be meaningless for
  a run that re-rolled dice as it went.

Plans serialize to JSON and back losslessly; a minimized failing plan
*is* the reproducer file.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any

#: The fuzz database schema: three integer entities.
ENTITIES = ("x", "y", "z")

#: Crash points reachable with WAL appends alone.
_WAL_CRASH_POINTS = (
    "wal.mid_record",
    "wal.before_flush",
    "wal.after_flush",
)

#: Crash points that additionally need checkpoints to trigger.
_CHECKPOINT_CRASH_POINTS = (
    "checkpoint.mid_write",
    "checkpoint.before_rename",
    "checkpoint.after_rename",
)

PLAN_VERSION = 1


@dataclass
class PlannedTxn:
    """One scripted transaction: define, validate, then ``ops``.

    ``ops`` entries are small JSON-friendly lists:
    ``["sleep", seconds]``, ``["read", entity]``,
    ``["write", entity, value]``, ``["commit"]``, ``["abort"]``.
    A script without a terminal op leaves the transaction live — the
    disconnect or drain path has to clean it up.
    """

    label: str
    updates: list[str]
    input: str
    output: str
    predecessors: list[str] = field(default_factory=list)
    ops: list[list[Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "updates": list(self.updates),
            "input": self.input,
            "output": self.output,
            "predecessors": list(self.predecessors),
            "ops": [list(op) for op in self.ops],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PlannedTxn":
        return cls(
            label=data["label"],
            updates=list(data["updates"]),
            input=data["input"],
            output=data["output"],
            predecessors=list(data.get("predecessors", [])),
            ops=[list(op) for op in data.get("ops", [])],
        )

    @property
    def request_count(self) -> int:
        """Requests this script issues (define + validate + data ops)."""
        return 2 + sum(1 for op in self.ops if op[0] != "sleep")


@dataclass
class ClientPlan:
    """One scripted session: transactions plus an optional disconnect."""

    client_id: int
    txns: list[PlannedTxn]
    #: Disconnect (without clean aborts) after this many *requests*.
    disconnect_after: "int | None" = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "client_id": self.client_id,
            "txns": [txn.to_dict() for txn in self.txns],
            "disconnect_after": self.disconnect_after,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ClientPlan":
        return cls(
            client_id=data["client_id"],
            txns=[PlannedTxn.from_dict(t) for t in data["txns"]],
            disconnect_after=data.get("disconnect_after"),
        )


@dataclass
class FuzzPlan:
    """Everything a run needs; JSON-round-trippable."""

    seed: int
    strict: bool = False
    durable: bool = True
    queue_size: int = 8
    request_timeout: float = 1.0
    drain_grace: float = 2.0
    flush_interval: float = 0.0
    checkpoint_every: int = 0
    crash_point: "str | None" = None
    crash_at_hit: int = 1
    #: WAL-shipping replication: how many in-run followers to pump
    #: (durable plans only; 0 = no replication).
    replicas: int = 0
    #: Commit replies wait for this many follower acks (k-th highest).
    sync_replicas: int = 0
    #: Partition windows ``[replica_index, start, end]`` in virtual
    #: seconds: the replica neither receives batches nor acks inside
    #: the window (it heals when the window closes).
    partitions: list[list[Any]] = field(default_factory=list)
    #: Entity-space shards (1 = the classic single-stack server).
    shards: int = 1
    clients: list[ClientPlan] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": PLAN_VERSION,
            "seed": self.seed,
            "strict": self.strict,
            "durable": self.durable,
            "queue_size": self.queue_size,
            "request_timeout": self.request_timeout,
            "drain_grace": self.drain_grace,
            "flush_interval": self.flush_interval,
            "checkpoint_every": self.checkpoint_every,
            "crash_point": self.crash_point,
            "crash_at_hit": self.crash_at_hit,
            "replicas": self.replicas,
            "sync_replicas": self.sync_replicas,
            "partitions": [list(window) for window in self.partitions],
            "shards": self.shards,
            "clients": [client.to_dict() for client in self.clients],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FuzzPlan":
        version = data.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise ValueError(
                f"unsupported plan version {version!r} "
                f"(this build speaks {PLAN_VERSION})"
            )
        return cls(
            seed=data["seed"],
            strict=data.get("strict", False),
            durable=data.get("durable", True),
            queue_size=data.get("queue_size", 8),
            request_timeout=data.get("request_timeout", 1.0),
            drain_grace=data.get("drain_grace", 2.0),
            flush_interval=data.get("flush_interval", 0.0),
            checkpoint_every=data.get("checkpoint_every", 0),
            crash_point=data.get("crash_point"),
            crash_at_hit=data.get("crash_at_hit", 1),
            replicas=data.get("replicas", 0),
            sync_replicas=data.get("sync_replicas", 0),
            partitions=[
                list(window) for window in data.get("partitions", [])
            ],
            shards=data.get("shards", 1),
            clients=[
                ClientPlan.from_dict(c) for c in data.get("clients", [])
            ],
        )

    def canonical_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """Stable content hash — identifies a schedule across reports."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")
        ).hexdigest()[:16]

    @property
    def op_count(self) -> int:
        """Total requests the plan issues (the reproducer size metric)."""
        return sum(
            txn.request_count
            for client in self.clients
            for txn in client.txns
        )


def _gen_txn(
    rng: random.Random,
    label: str,
    earlier_labels: list[str],
    think_max: float,
) -> PlannedTxn:
    reads = [e for e in ENTITIES if rng.random() < 0.45]
    updates = [e for e in ENTITIES if rng.random() < 0.4]
    # The input constraint must mention every entity the script reads
    # (reads need an RV lock, granted at validate over the input set).
    input_terms = [f"{e} >= 0" for e in reads]
    if reads and rng.random() < 0.25:
        # A tight bound: satisfiable only if a small-enough version
        # exists, so some validations fail and abort (on purpose).
        input_terms.append(f"{rng.choice(reads)} <= {rng.randint(0, 2)}")
    output_terms = [f"{e} >= 0" for e in updates]
    if updates and rng.random() < 0.2:
        # Occasionally impossible given the values we write: the
        # commit fails its output predicate and the script aborts.
        output_terms.append(
            f"{rng.choice(updates)} <= {rng.randint(0, 2)}"
        )
    predecessors = []
    if earlier_labels and rng.random() < 0.35:
        predecessors.append(rng.choice(earlier_labels))
    ops: list[list[Any]] = []
    for entity in reads:
        if rng.random() < 0.5:
            ops.append(["sleep", round(rng.uniform(0.0, think_max), 4)])
        ops.append(["read", entity])
    for entity in updates:
        if rng.random() < 0.5:
            ops.append(["sleep", round(rng.uniform(0.0, think_max), 4)])
        ops.append(["write", entity, rng.randint(0, 9)])
    roll = rng.random()
    if roll < 0.78:
        ops.append(["commit"])
    elif roll < 0.9:
        ops.append(["abort"])
    # else: no terminal — leave the transaction for disconnect/drain.
    return PlannedTxn(
        label=label,
        updates=updates,
        input=" & ".join(input_terms) or "true",
        output=" & ".join(output_terms) or "true",
        predecessors=predecessors,
        ops=ops,
    )


def generate_plan(
    seed: int,
    *,
    clients: "int | None" = None,
    txns_per_client: "int | None" = None,
    durable: "bool | None" = None,
    strict: "bool | None" = None,
    crash: "bool | None" = None,
    replicas: "int | None" = None,
    shards: "int | None" = None,
    think_max: float = 0.2,
) -> FuzzPlan:
    """Deterministically expand ``seed`` into a full :class:`FuzzPlan`.

    Keyword overrides pin a dimension instead of letting the seed
    choose it (the CLI exposes them); everything else still derives
    from the seed, so overridden plans remain reproducible.
    """
    rng = random.Random(seed)
    n_clients = clients if clients is not None else rng.randint(2, 4)
    use_strict = strict if strict is not None else rng.random() < 0.4
    use_durable = durable if durable is not None else rng.random() < 0.8
    checkpoint_every = rng.choice([0, 0, 0, 8]) if use_durable else 0
    want_crash = (
        crash if crash is not None else rng.random() < 0.3
    ) and use_durable
    crash_point: "str | None" = None
    crash_at_hit = 1
    if want_crash:
        points = list(_WAL_CRASH_POINTS)
        if checkpoint_every:
            points += list(_CHECKPOINT_CRASH_POINTS)
        crash_point = rng.choice(points)
        crash_at_hit = rng.randint(1, 6)
    plan = FuzzPlan(
        seed=seed,
        strict=use_strict,
        durable=use_durable,
        queue_size=rng.choice([2, 4, 8, 64]),
        request_timeout=rng.choice([0.05, 0.3, 2.0]),
        flush_interval=0.0,
        checkpoint_every=checkpoint_every,
        crash_point=crash_point,
        crash_at_hit=crash_at_hit,
    )
    earlier_labels: list[str] = []
    for client_id in range(n_clients):
        n_txns = (
            txns_per_client
            if txns_per_client is not None
            else rng.randint(1, 3)
        )
        txns = []
        for txn_index in range(n_txns):
            label = f"c{client_id}t{txn_index}"
            txns.append(_gen_txn(rng, label, earlier_labels, think_max))
            earlier_labels.append(label)
        client = ClientPlan(client_id=client_id, txns=txns)
        total_requests = sum(t.request_count for t in txns)
        if total_requests > 1 and rng.random() < 0.25:
            client.disconnect_after = rng.randint(1, total_requests - 1)
        plan.clients.append(client)
    # Replication dimensions consume the seed stream strictly *after*
    # every draw above, so introducing them left all pre-existing
    # pinned seeds (and their minimized reproducers) byte-identical.
    n_replicas = replicas
    if n_replicas is None:
        n_replicas = (
            rng.randint(1, 2)
            if use_durable and rng.random() < 0.35
            else 0
        )
    if not use_durable:
        n_replicas = 0  # shipping needs a WAL to tail
    plan.replicas = n_replicas
    if n_replicas:
        plan.sync_replicas = 1
        for index in range(n_replicas):
            if rng.random() < 0.4:
                start = round(rng.uniform(0.0, 8.0), 3)
                length = round(rng.uniform(0.3, 4.0), 3)
                plan.partitions.append(
                    [index, start, round(start + length, 3)]
                )
    # Sharding came after replication; its roll sits at the very end of
    # the stream for the same pinned-seed-compatibility reason.  The
    # two features are mutually exclusive (a sharded leader cannot ship
    # a single WAL): pinning both is an error, pinning one suppresses
    # the seed's draw of the other, and a seed left free to draw both
    # keeps replication and stays single-shard.
    if shards is not None and shards > 1 and replicas:
        raise ValueError("shards > 1 cannot be combined with replicas")
    shard_roll = rng.random()
    n_shards = shards
    if n_shards is None:
        if shard_roll < 0.15:
            n_shards = 4
        elif shard_roll < 0.35:
            n_shards = 2
        else:
            n_shards = 1
    if n_shards > 1 and shards is not None:
        # An explicit shard pin wins over seed-drawn replication.
        plan.replicas = 0
        plan.sync_replicas = 0
        plan.partitions = []
    if plan.replicas:
        n_shards = 1
    plan.shards = n_shards
    return plan
