"""A deterministic asyncio event loop on a virtual clock.

The fuzzer needs real asyncio semantics — the server's dispatcher,
parking timers, and drain loop are all written against it — but wall
time and the kernel's readiness notifications are the two places
nondeterminism leaks in.  :class:`VirtualClockLoop` removes both:

* ``loop.time()`` reads a :class:`~repro.sim.clock.VirtualClock`, and
* the selector never polls the OS.  When asyncio asks it to wait for
  ``timeout`` seconds (i.e. until the next timer is due), it *advances
  the virtual clock by exactly that much* and reports no I/O.

The result: callbacks, timers, and coroutine wake-ups happen in a
schedule fully determined by the program itself — run the same
coroutines twice and you get the same interleaving, bit for bit,
with zero real-time sleeping.  No sockets can be served (there is no
I/O); the fuzzer drives the server's session layer directly.

If asyncio ever asks the selector to wait *forever* (``timeout is
None``) there are no timers and no runnable tasks — with no I/O and no
other threads, nothing can ever wake the loop again.  That is a
deadlock of the system under test, and the selector raises
:class:`FuzzDeadlockError` instead of hanging, which the fuzz runner
reports as a lost-response invariant violation.
"""

from __future__ import annotations

import asyncio
import selectors
from typing import Any

from ..errors import SimulationError
from ..sim.clock import VirtualClock


class FuzzDeadlockError(SimulationError):
    """The virtual loop would block forever: every task is stuck."""


class _VirtualSelector(selectors.BaseSelector):
    """Registration bookkeeping without polling.

    asyncio registers its self-pipe (and nothing else, in fuzz runs);
    we keep the key map so the loop's bookkeeping works, but
    :meth:`select` never reports readiness — it just moves time.
    """

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._inner = selectors.SelectSelector()

    def register(
        self, fileobj: Any, events: int, data: Any = None
    ) -> selectors.SelectorKey:
        return self._inner.register(fileobj, events, data)

    def unregister(self, fileobj: Any) -> selectors.SelectorKey:
        return self._inner.unregister(fileobj)

    def modify(
        self, fileobj: Any, events: int, data: Any = None
    ) -> selectors.SelectorKey:
        return self._inner.modify(fileobj, events, data)

    def select(
        self, timeout: "float | None" = None
    ) -> "list[tuple[selectors.SelectorKey, int]]":
        if timeout is None:
            raise FuzzDeadlockError(
                "virtual event loop stalled: no timers are scheduled "
                "and no task is runnable — a response was lost or a "
                "wait can never be satisfied"
            )
        if timeout > 0:
            self._clock.advance(timeout)
        return []

    def get_map(self):  # noqa: D102 — required by BaseSelector
        return self._inner.get_map()

    def close(self) -> None:
        self._inner.close()


class VirtualClockLoop(asyncio.SelectorEventLoop):
    """``asyncio.SelectorEventLoop`` whose time is a VirtualClock."""

    def __init__(self, clock: "VirtualClock | None" = None) -> None:
        self.virtual_clock = clock if clock is not None else VirtualClock()
        super().__init__(_VirtualSelector(self.virtual_clock))

    def time(self) -> float:
        return self.virtual_clock.now


def run_virtual(coro, clock: "VirtualClock | None" = None):
    """Run ``coro`` to completion on a fresh virtual-clock loop."""
    loop = VirtualClockLoop(clock)
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(coro)
    finally:
        asyncio.set_event_loop(None)
        loop.close()
