"""Execute one :class:`FuzzPlan` deterministically, collecting evidence.

The run drives the *real* server stack — :class:`TransactionServer`
wiring, :class:`CommandDispatcher` parking/timeout machinery, and (for
durable plans) a :class:`DurableTransactionManager` over a scratch WAL
directory with crash points armed — on a
:class:`~repro.fuzz.loop.VirtualClockLoop`.  Only the TCP transport is
bypassed: fuzz clients are coroutines that submit requests straight to
the dispatcher and await the futures, exactly as a connection handler
would.  Everything that happens is appended to a transcript whose
timestamps come from the virtual clock, so two runs of the same plan
produce byte-identical transcripts.

A fired :class:`SimulatedCrash` kills the dispatcher the way SIGKILL
would; the runner then copies the WAL directory the way stable storage
would keep it (``kill`` survival model: every ``os.write`` survives),
runs recovery against the copy, and hands both the pre-crash transcript
and the recovered state to the oracles.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.entities import Domain, Entity, Schema
from ..core.predicates import Predicate
from ..durability.crashpoints import CrashPoints, SimulatedCrash
from ..durability.harness import build_survivor_copy
from ..durability.manager import DurableTransactionManager
from ..durability.recovery import RecoveryResult, recover
from ..durability.shard_recovery import (
    ShardedRecoveryResult,
    list_shard_dirs,
    recover_sharded,
    shard_wal_dir,
)
from ..durability.wal import scan_wal
from ..errors import ReproError
from ..obs.live import LiveTracer, SpanRing
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Span
from ..protocol.scheduler import TransactionManager
from ..replication import (
    ROLE_PRIMARY,
    FollowerApplier,
    ReplicationContext,
    ReplicationHub,
)
from ..replication.messages import KIND_SNAPSHOT
from ..server.protocol import Request
from ..server.server import ServerConfig, TransactionServer
from ..server.session import SessionState
from ..sim.clock import VirtualClock
from ..storage.database import Database
from .loop import FuzzDeadlockError, VirtualClockLoop
from .plan import ENTITIES, FuzzPlan

FUZZ_REPORT_VERSION = 1

#: Codes after which a transaction script is abandoned outright (the
#: transaction is already gone server-side).
_DEAD_CODES = {"ABORTED", "UNKNOWN_TXN", "SHUTTING_DOWN"}

_BUSY_RETRIES = 5
_BUSY_BACKOFF = 0.05

#: Span ring capacity for the run's live tracer.  Far above what any
#: bounded plan emits, so a non-zero dropped count is itself evidence
#: (and the metrics oracle flags it).
_SPAN_RING_CAPACITY = 1 << 16


def fuzz_database() -> Database:
    """The fixed fuzz schema: x, y, z in [0, 100], all initially 1."""
    schema = Schema(
        [Entity(name, Domain.interval(0, 100)) for name in ENTITIES]
    )
    constraint = Predicate.parse(
        " & ".join(f"{name} >= 0" for name in ENTITIES)
    )
    return Database(schema, constraint, {name: 1 for name in ENTITIES})


@dataclass
class Evidence:
    """Everything the oracles get to look at after a run."""

    plan: FuzzPlan
    events: list[dict[str, Any]]
    names: dict[str, str]
    acked_committed: list[str]
    requests: dict[tuple[int, int], dict[str, Any]]
    #: Commits whose reply said "durable locally, replication ack
    #: unknown" (sync-replication timeout or shutdown).  Oracles must
    #: accept these as committed without requiring an ack.
    indeterminate_committed: list[str] = field(default_factory=list)
    #: Per-replica post-run recovery verdicts (``None`` = no replicas).
    replicas: "list[dict[str, Any]] | None" = None
    #: Sampled follower reads: ``{t, replica, applied_lsn, view}``.
    follower_samples: "list[dict[str, Any]] | None" = None
    crashed: bool = False
    crash_info: "dict[str, Any] | None" = None
    deadlock: "str | None" = None
    manager: "TransactionManager | None" = None
    dispatcher: Any = None
    drain_summary: "dict[str, Any] | None" = None
    registry: "MetricsRegistry | None" = None
    spans: "list[Span] | None" = None
    spans_dropped: int = 0
    open_spans: "list[Span] | None" = None
    records: "list[Any] | None" = None
    recovery: "RecoveryResult | None" = None
    recovery_error: "str | None" = None
    #: Cross-shard branch name → client-visible gid (sharded runs).
    branch_map: dict[str, str] = field(default_factory=dict)
    #: Sharded equivalents of ``recovery`` / ``records`` / ``manager``.
    shard_recovery: "ShardedRecoveryResult | None" = None
    shard_records: "dict[int, list[Any]] | None" = None
    shard_managers: "list[TransactionManager] | None" = None

    @property
    def pending_requests(self) -> list[dict[str, Any]]:
        return [
            entry
            for entry in self.requests.values()
            if entry["status"] == "pending"
        ]


@dataclass
class RunResult:
    """One executed plan: the JSON report plus raw evidence."""

    plan: FuzzPlan
    report: dict[str, Any]
    evidence: Evidence

    @property
    def ok(self) -> bool:
        return bool(self.report["ok"])

    @property
    def failed_oracles(self) -> tuple[str, ...]:
        return tuple(
            name
            for name, verdict in self.report["oracles"].items()
            if not verdict["ok"]
        )


class _RunContext:
    """Mutable run state shared by the client coroutines."""

    def __init__(
        self,
        plan: FuzzPlan,
        clock: VirtualClock,
        server: TransactionServer,
    ) -> None:
        self.plan = plan
        self.clock = clock
        self.server = server
        self.dispatcher = server.dispatcher
        self.events: list[dict[str, Any]] = []
        self.names: dict[str, str] = {}
        self.acked_committed: list[str] = []
        self.indeterminate_committed: list[str] = []
        self.requests: dict[tuple[int, int], dict[str, Any]] = {}
        self.rid_counters: dict[int, int] = {}
        self.branch_map: dict[str, str] = {}
        self.drain_summary: "dict[str, Any] | None" = None
        self.crash_exc: "SimulatedCrash | None" = None
        self.replicas: "_ReplicaSet | None" = None

    def emit(self, kind: str, **fields: Any) -> None:
        event = {"t": round(self.clock.now, 6), "kind": kind}
        event.update(fields)
        self.events.append(event)

    def notify_for(self, client_id: int):
        def _notify(payload: dict[str, Any]) -> None:
            self.emit(
                "event",
                client=client_id,
                event=payload.get("event"),
                txn=payload.get("txn"),
            )

        return _notify

    def next_rid(self, client_id: int) -> int:
        rid = self.rid_counters.get(client_id, 0) + 1
        self.rid_counters[client_id] = rid
        return rid

    async def request(
        self,
        client_id: int,
        session: SessionState,
        op: str,
        params: dict[str, Any],
        *,
        txn: "str | None" = None,
        entity: "str | None" = None,
    ) -> dict[str, Any]:
        """Submit one request, retrying BUSY with deterministic backoff."""
        rid = self.next_rid(client_id)
        entry: dict[str, Any] = {
            "client": client_id,
            "rid": rid,
            "op": op,
            "txn": txn,
            "entity": entity,
            "status": "pending",
            "outcome": None,
        }
        self.requests[(client_id, rid)] = entry
        self.emit(
            "request", client=client_id, rid=rid, op=op, txn=txn
        )
        reply: dict[str, Any] = {}
        for attempt in range(_BUSY_RETRIES + 1):
            outcome = self.dispatcher.submit(
                session, Request(rid, op, dict(params))
            )
            reply = (
                outcome
                if isinstance(outcome, dict)
                else await outcome
            )
            code = (
                (reply.get("error") or {}).get("code")
                if reply.get("ok") is False
                else None
            )
            if code != "BUSY" or attempt == _BUSY_RETRIES:
                break
            self.emit("busy", client=client_id, rid=rid, op=op)
            await asyncio.sleep(_BUSY_BACKOFF * (attempt + 1))
        code = (
            (reply.get("error") or {}).get("code")
            if reply.get("ok") is False
            else None
        )
        entry["status"] = "ok" if reply.get("ok") else f"error:{code}"
        entry["outcome"] = reply.get("outcome")
        self.emit(
            "reply",
            client=client_id,
            rid=rid,
            op=op,
            ok=bool(reply.get("ok")),
            code=code,
            outcome=reply.get("outcome"),
            value=reply.get("value"),
        )
        if (
            op == "define"
            and reply.get("ok")
            and isinstance(reply.get("branches"), dict)
        ):
            # A cross-shard define: remember which per-shard branch
            # belongs to which client-visible gid, so the oracles can
            # translate WAL records back to acked transactions.
            for branch in reply["branches"].values():
                self.branch_map[branch] = reply["txn"]
        if op == "commit" and reply.get("outcome") == "committed" and txn:
            self.acked_committed.append(txn)
        if op == "commit" and txn and not reply.get("ok"):
            details = (reply.get("error") or {}).get("details") or {}
            if details.get("indeterminate"):
                self.indeterminate_committed.append(txn)
        return reply


class _ReplicaSet:
    """Transport-free WAL shipping for a fuzz run.

    One :class:`ReplicationHub` on the primary manager plus
    ``plan.replicas`` appliers, each pumped by a coroutine on the
    virtual loop — the exact core the TCP shipper wraps, minus the
    sockets.  Partitions are virtual-time windows from the plan during
    which a replica's pump neither ships nor acks (and sync commits on
    the primary run into their deadlines, yielding *indeterminate*
    replies).  Both hub clocks are the shared virtual clock, so lag
    stamps are deterministic too.
    """

    #: Pump poll period (virtual seconds) while idle or partitioned.
    _POLL = 0.05
    #: Pumps exit past this virtual time: their timers must not keep a
    #: genuinely stuck run alive forever, or the loop's deadlock
    #: detector (select-forever → FuzzDeadlockError) would never fire.
    _HORIZON = 120.0

    def __init__(
        self,
        plan: FuzzPlan,
        base: Path,
        manager: DurableTransactionManager,
        dispatcher: Any,
        registry: MetricsRegistry,
        tracer: Any,
        clock: VirtualClock,
    ) -> None:
        self.plan = plan
        self.clock = clock
        self.samples: list[dict[str, Any]] = []
        self.hub = ReplicationHub(
            manager,
            sync_replicas=plan.sync_replicas,
            registry=registry,
            tracer=tracer,
            clock=clock,
            wall_clock=clock,
        )
        self.hub.on_replicated = dispatcher.on_replicated
        dispatcher.replication = ReplicationContext(
            ROLE_PRIMARY, hub=self.hub
        )
        self.dirs: list[Path] = []
        self.appliers: list[FollowerApplier] = []
        self.slots: list[Any] = []
        for index in range(plan.replicas):
            replica_dir = base / f"replica{index}"
            applier = FollowerApplier(
                replica_dir,
                tracer=tracer,
                clock=clock,
                wall_clock=clock,
            )
            # Registered (and snapshot-seeded) before the run starts:
            # partitions model links failing, not followers that never
            # joined.
            slot, initial = self.hub.register(0, f"replica{index}")
            if initial is not None:
                applier.install_snapshot(
                    initial["state"], initial["last_lsn"]
                )
                self.hub.ack(slot, applier.applied_lsn)
            self.dirs.append(replica_dir)
            self.appliers.append(applier)
            self.slots.append(slot)

    def _partitioned(self, index: int, now: float) -> bool:
        return any(
            window[0] == index and window[1] <= now < window[2]
            for window in self.plan.partitions
        )

    def _pump_once(self, index: int) -> bool:
        """Ship/apply/ack one message; sample the follower read."""
        applier = self.appliers[index]
        message = self.hub.next_batch(self.slots[index])
        if message is None:
            return False
        if message["kind"] == KIND_SNAPSHOT:
            applier.install_snapshot(
                message["state"], message["last_lsn"]
            )
        else:
            applier.apply_records(message)
        self.hub.ack(self.slots[index], applier.applied_lsn)
        applied_lsn, view = applier.read_view()
        self.samples.append(
            {
                "t": round(self.clock.now, 6),
                "replica": index,
                "applied_lsn": applied_lsn,
                "view": dict(view),
            }
        )
        return True

    async def pump(self, index: int, stop: asyncio.Event) -> None:
        while not stop.is_set():
            now = self.clock.now
            if now > self._HORIZON:
                return
            if not self._partitioned(index, now):
                if self._pump_once(index):
                    continue  # drain the backlog before sleeping
            try:
                await asyncio.wait_for(stop.wait(), self._POLL)
            except asyncio.TimeoutError:
                pass

    def catch_up(self) -> None:
        """Heal every partition and drain every backlog (clean runs)."""
        for index in range(len(self.appliers)):
            while self._pump_once(index):
                pass

    def finalize(self, evidence: "Evidence") -> None:
        """Close appliers, recover every replica dir, attach evidence.

        Each replica directory goes through the stock
        ``recover --verify`` gate — exactly what promotion runs — so
        the promotion oracle judges the same artifact a real failover
        would trust.
        """
        self.hub.close()
        entries: list[dict[str, Any]] = []
        for index, applier in enumerate(self.appliers):
            applier.close()
            entry: dict[str, Any] = {
                "replica": index,
                "applied_lsn": applier.applied_lsn,
                "snapshots_installed": applier.snapshots_installed,
                "records_applied": applier.records_applied,
                "error": None,
            }
            try:
                recovery = recover(self.dirs[index], verify=True)
            except ReproError as error:
                entry["error"] = f"{type(error).__name__}: {error}"
            else:
                if recovery is None:
                    entry["committed"] = []
                    entry["verified"] = True
                    entry["recovered_lsn"] = 0
                else:
                    entry["committed"] = list(recovery.committed)
                    entry["verified"] = recovery.verified
                    entry["violations"] = list(recovery.violations)
                    entry["recovered_lsn"] = recovery.summary()[
                        "last_lsn"
                    ]
            entries.append(entry)
        evidence.replicas = entries
        evidence.follower_samples = list(self.samples)


def _reply_code(reply: dict[str, Any]) -> "str | None":
    if reply.get("ok"):
        return None
    return (reply.get("error") or {}).get("code", "INTERNAL")


async def _abort_quietly(
    ctx: _RunContext,
    client_id: int,
    session: SessionState,
    name: str,
) -> None:
    await ctx.request(
        client_id,
        session,
        "abort",
        {"txn": name, "reason": "fuzz client gave up"},
        txn=name,
    )


async def _run_client(ctx: _RunContext, cplan) -> None:
    client_id = cplan.client_id
    session = SessionState(
        session_id=client_id + 1, notify=ctx.notify_for(client_id)
    )
    requests_done = 0

    async def _step(op, params, *, txn=None, entity=None):
        nonlocal requests_done
        reply = await ctx.request(
            client_id, session, op, params, txn=txn, entity=entity
        )
        requests_done += 1
        return reply

    def _disconnect_due() -> bool:
        return (
            cplan.disconnect_after is not None
            and requests_done >= cplan.disconnect_after
        )

    for txn_plan in cplan.txns:
        if _disconnect_due():
            break
        reply = await _step(
            "define",
            {
                "updates": list(txn_plan.updates),
                "input": txn_plan.input,
                "output": txn_plan.output,
                "predecessors": [
                    ctx.names[label]
                    for label in txn_plan.predecessors
                    if label in ctx.names
                ],
            },
        )
        if not reply.get("ok"):
            continue
        name = reply["txn"]
        ctx.names[txn_plan.label] = name
        if _disconnect_due():
            break
        reply = await _step("validate", {"txn": name}, txn=name)
        if not reply.get("ok"):
            if _reply_code(reply) == "TIMEOUT":
                await _abort_quietly(ctx, client_id, session, name)
                requests_done += 1
            continue
        if reply.get("outcome") == "failed":
            continue  # validation failure already aborted the txn
        dead = False
        for op in txn_plan.ops:
            if _disconnect_due() or dead:
                break
            kind = op[0]
            if kind == "sleep":
                await asyncio.sleep(op[1])
                continue
            if kind == "read":
                reply = await _step(
                    "read",
                    {"txn": name, "entity": op[1]},
                    txn=name,
                    entity=op[1],
                )
            elif kind == "write":
                reply = await _step(
                    "write",
                    {"txn": name, "entity": op[1], "value": op[2]},
                    txn=name,
                    entity=op[1],
                )
            elif kind == "commit":
                reply = await _step("commit", {"txn": name}, txn=name)
                if reply.get("ok") and reply.get("outcome") == "failed":
                    await _abort_quietly(
                        ctx, client_id, session, name
                    )
                    requests_done += 1
                dead = True
            elif kind == "abort":
                reply = await _step(
                    "abort",
                    {"txn": name, "reason": "scripted abort"},
                    txn=name,
                )
                dead = True
            else:  # pragma: no cover — generator never emits others
                raise ReproError(f"unknown planned op {kind!r}")
            code = _reply_code(reply)
            indeterminate = bool(
                ((reply.get("error") or {}).get("details") or {}).get(
                    "indeterminate"
                )
            )
            if code in _DEAD_CODES:
                dead = True
            elif code == "TIMEOUT" and indeterminate:
                # A replication-ack timeout: the commit is durable
                # locally and may well survive — the protocol contract
                # says the client must NOT treat it as lost, so no
                # clean-up abort (which would undo the commit).
                dead = True
            elif code == "TIMEOUT":
                await _abort_quietly(ctx, client_id, session, name)
                requests_done += 1
                dead = True
            elif code is not None and kind in ("read", "write"):
                dead = True
    if cplan.disconnect_after is not None and _disconnect_due():
        ctx.emit("disconnect", client=client_id)
        await ctx.dispatcher.close_session(session)


async def _stop_pumps(
    stop: asyncio.Event, pump_tasks: "list[asyncio.Task]"
) -> None:
    stop.set()
    for task in pump_tasks:
        task.cancel()
    for task in pump_tasks:
        try:
            await task
        except asyncio.CancelledError:
            pass


async def _main(ctx: _RunContext) -> None:
    dispatcher_task = asyncio.ensure_future(ctx.dispatcher.run())
    pumps_stop = asyncio.Event()
    pump_tasks = (
        [
            asyncio.ensure_future(ctx.replicas.pump(index, pumps_stop))
            for index in range(len(ctx.replicas.appliers))
        ]
        if ctx.replicas is not None
        else []
    )
    client_tasks = [
        asyncio.ensure_future(_run_client(ctx, cplan))
        for cplan in ctx.plan.clients
    ]
    clients_task = asyncio.ensure_future(
        asyncio.gather(*client_tasks, return_exceptions=False)
    )
    await asyncio.wait(
        {dispatcher_task, clients_task},
        return_when=asyncio.FIRST_COMPLETED,
    )
    if dispatcher_task.done() and not clients_task.done():
        # The dispatcher died under the clients: an injected crash (or
        # a harness bug, which we re-raise below).
        clients_task.cancel()
        for task in client_tasks:
            task.cancel()
        try:
            await clients_task
        except asyncio.CancelledError:
            pass
        await _stop_pumps(pumps_stop, pump_tasks)
        exc = dispatcher_task.exception()
        if isinstance(exc, SimulatedCrash):
            ctx.crash_exc = exc
            ctx.emit("crash", point=exc.point)
            return
        if exc is not None:
            raise exc
        raise ReproError("dispatcher exited without being stopped")
    await clients_task
    await _stop_pumps(pumps_stop, pump_tasks)
    try:
        ctx.drain_summary = await ctx.server.shutdown()
    except SimulatedCrash as exc:
        # A crash point armed deep enough to fire during the drain's
        # cleanup aborts or the final checkpoint.
        ctx.crash_exc = exc
        ctx.emit("crash", point=exc.point)
        dispatcher_task.cancel()
        try:
            await dispatcher_task
        except asyncio.CancelledError:
            pass
        return
    await dispatcher_task


def _cancel_pending(loop: asyncio.AbstractEventLoop) -> None:
    """After a deadlock verdict: unwind whatever is still pending."""
    pending = [
        task for task in asyncio.all_tasks(loop) if not task.done()
    ]
    for task in pending:
        task.cancel()
    if pending:
        loop.run_until_complete(
            asyncio.gather(*pending, return_exceptions=True)
        )


def execute_plan(
    plan: FuzzPlan, workdir: "Path | str | None" = None
) -> RunResult:
    """Run ``plan`` to completion and evaluate every oracle."""
    from .oracles import run_oracles

    owns_workdir = workdir is None
    base = Path(
        tempfile.mkdtemp(prefix="repro-fuzz-")
        if workdir is None
        else workdir
    )
    base.mkdir(parents=True, exist_ok=True)
    clock = VirtualClock()
    loop = VirtualClockLoop(clock)
    registry = MetricsRegistry()
    # Every run is traced: span ids and timestamps both come from
    # deterministic sources (a monotonic counter, the virtual clock),
    # so the collected span set is as replayable as the transcript —
    # and the metrics oracle checks its tree structure after drain.
    ring = SpanRing(_SPAN_RING_CAPACITY)
    span_feed = ring.subscribe()
    tracer = LiveTracer(ring, clock=clock)
    wal_dir = base / "wal"
    crash_points: "CrashPoints | None" = None
    sharded = plan.shards > 1
    if sharded and plan.replicas:
        raise ReproError(
            "sharded plans cannot ship a WAL (replicas must be 0)"
        )
    shard_managers: "list[TransactionManager] | None" = None
    try:
        if plan.durable:
            # Sharded plans share one CrashPoints: any shard's WAL or
            # checkpoint write can fire the armed point, so the crash
            # lands wherever the schedule takes it.
            crash_points = CrashPoints()
            if sharded:
                shard_managers = []
                for index in range(plan.shards):
                    shard_manager, _ = DurableTransactionManager.open(
                        shard_wal_dir(wal_dir, index),
                        fuzz_database,
                        flush_interval=plan.flush_interval,
                        checkpoint_every=plan.checkpoint_every,
                        retain=99,
                        tracer=tracer,
                        registry=registry,
                        strict=plan.strict,
                        crash_points=crash_points,
                        root_name=f"sh{index}",
                    )
                    shard_managers.append(shard_manager)
                manager = shard_managers[0]
            else:
                manager, _ = DurableTransactionManager.open(
                    wal_dir,
                    fuzz_database,
                    flush_interval=plan.flush_interval,
                    checkpoint_every=plan.checkpoint_every,
                    retain=99,  # keep every segment: oracles read history
                    tracer=tracer,
                    registry=registry,
                    strict=plan.strict,
                    crash_points=crash_points,
                )
            if plan.crash_point is not None:
                # Armed *after* open(): hit counts start at "serving".
                crash_points.arm(plan.crash_point, plan.crash_at_hit)
        elif sharded:
            shard_managers = [
                TransactionManager(
                    fuzz_database(),
                    tracer=tracer,
                    registry=registry,
                    strict=plan.strict,
                    root_name=f"sh{index}",
                )
                for index in range(plan.shards)
            ]
            manager = shard_managers[0]
        else:
            manager = TransactionManager(
                fuzz_database(),
                tracer=tracer,
                registry=registry,
                strict=plan.strict,
            )
        server = TransactionServer(
            manager.database,
            config=ServerConfig(
                queue_size=plan.queue_size,
                request_timeout=plan.request_timeout,
                drain_grace=plan.drain_grace,
                strict=plan.strict,
                shards=plan.shards,
            ),
            registry=registry,
            tracer=tracer,
            manager=None if sharded else manager,
            shard_managers=shard_managers if sharded else None,
            clock=clock,
        )
        ctx = _RunContext(plan, clock, server)
        if plan.durable and plan.replicas > 0:
            ctx.replicas = _ReplicaSet(
                plan,
                base,
                manager,
                server.dispatcher,
                registry,
                tracer,
                clock,
            )
        deadlock: "str | None" = None
        try:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(_main(ctx))
            except FuzzDeadlockError as error:
                deadlock = str(error)
            # Unconditional: a deadlock verdict leaves client tasks
            # pending, and a sharded crash leaves the *surviving*
            # shards' dispatcher loops parked on their queues.
            _cancel_pending(loop)
        finally:
            asyncio.set_event_loop(None)
        evidence = Evidence(
            plan=plan,
            events=ctx.events,
            names=ctx.names,
            acked_committed=ctx.acked_committed,
            indeterminate_committed=ctx.indeterminate_committed,
            requests=ctx.requests,
            crashed=ctx.crash_exc is not None,
            crash_info=(
                {"point": ctx.crash_exc.point, "at_hit": plan.crash_at_hit}
                if ctx.crash_exc is not None
                else None
            ),
            deadlock=deadlock,
            dispatcher=ctx.dispatcher,
            drain_summary=ctx.drain_summary,
            registry=registry,
            branch_map=dict(ctx.branch_map),
        )
        evidence.spans, evidence.spans_dropped = span_feed.poll()
        evidence.open_spans = tracer.open_spans()
        if plan.durable:
            if crash_points is not None:
                crash_points.disarm()
            if sharded:
                _collect_sharded_evidence(
                    evidence, shard_managers, wal_dir, base
                )
            else:
                _collect_durable_evidence(
                    evidence, manager, wal_dir, base
                )
        if ctx.replicas is not None:
            if not evidence.crashed and deadlock is None:
                # Clean run: partitions heal and the backlog drains, so
                # replica recoveries below see the whole history.  A
                # crashed run keeps exactly what each replica held.
                ctx.replicas.catch_up()
            ctx.replicas.finalize(evidence)
        if not evidence.crashed and deadlock is None:
            if sharded:
                evidence.shard_managers = shard_managers
            else:
                evidence.manager = manager
        oracles = run_oracles(evidence)
        report = _build_report(plan, evidence, oracles, clock)
        return RunResult(plan=plan, report=report, evidence=evidence)
    finally:
        loop.close()
        if owns_workdir:
            shutil.rmtree(base, ignore_errors=True)


def _collect_durable_evidence(
    evidence: Evidence,
    manager: DurableTransactionManager,
    wal_dir: Path,
    base: Path,
) -> None:
    if evidence.crashed:
        # Kill-model survival: every byte the live process os.write()d
        # is on "disk".  Copy first, then release the live fd.
        target = build_survivor_copy(
            wal_dir, base / "survivor", mode="kill"
        )
        if manager.wal is not None and not manager.wal.closed:
            manager.wal.close()
    else:
        target = wal_dir
        if manager.wal is not None and not manager.wal.closed:
            # Deadlocked run: shutdown() never completed; release the
            # fd so the scan below reads settled bytes.
            manager.wal.close()
    try:
        evidence.recovery = recover(target, verify=True)
        evidence.records = list(scan_wal(target).records)
    except ReproError as error:
        evidence.recovery_error = f"{type(error).__name__}: {error}"


def _collect_sharded_evidence(
    evidence: Evidence,
    managers: "list[DurableTransactionManager]",
    wal_dir: Path,
    base: Path,
) -> None:
    """Per-shard survivor copies, one sharded recovery over them all."""
    if evidence.crashed:
        target = base / "survivor"
        for index, manager in enumerate(managers):
            build_survivor_copy(
                shard_wal_dir(wal_dir, index),
                shard_wal_dir(target, index),
                mode="kill",
            )
            if manager.wal is not None and not manager.wal.closed:
                manager.wal.close()
    else:
        target = wal_dir
        for manager in managers:
            if manager.wal is not None and not manager.wal.closed:
                manager.wal.close()
    try:
        # recover_sharded resolves in-doubt 2PC branches first (the
        # presumed-abort protocol), then replays every shard.
        evidence.shard_recovery = recover_sharded(target, verify=True)
        evidence.shard_records = {
            index: list(scan_wal(path).records)
            for index, path in list_shard_dirs(target)
        }
    except ReproError as error:
        evidence.recovery_error = f"{type(error).__name__}: {error}"


def _build_report(
    plan: FuzzPlan,
    evidence: Evidence,
    oracles: "list[Any]",
    clock: VirtualClock,
) -> dict[str, Any]:
    replies = [e for e in evidence.events if e["kind"] == "reply"]
    report = {
        "fuzz_version": FUZZ_REPORT_VERSION,
        "seed": plan.seed,
        "plan_digest": plan.digest(),
        "op_count": plan.op_count,
        "config": {
            "strict": plan.strict,
            "durable": plan.durable,
            "queue_size": plan.queue_size,
            "request_timeout": plan.request_timeout,
            "checkpoint_every": plan.checkpoint_every,
            "crash_point": plan.crash_point,
            "crash_at_hit": plan.crash_at_hit,
            "clients": len(plan.clients),
            "replicas": plan.replicas,
            "sync_replicas": plan.sync_replicas,
            "partitions": [list(w) for w in plan.partitions],
            "shards": plan.shards,
        },
        "counts": {
            "events": len(evidence.events),
            "requests": len(evidence.requests),
            "replies": len(replies),
            "busy": sum(
                1 for e in evidence.events if e["kind"] == "busy"
            ),
            "timeouts": sum(
                1 for e in replies if e.get("code") == "TIMEOUT"
            ),
            "commits_acked": len(evidence.acked_committed),
            "commits_indeterminate": len(
                evidence.indeterminate_committed
            ),
            "follower_samples": (
                len(evidence.follower_samples)
                if evidence.follower_samples is not None
                else 0
            ),
            "spans": (
                len(evidence.spans)
                if evidence.spans is not None
                else 0
            ),
            "spans_dropped": evidence.spans_dropped,
        },
        "names": dict(sorted(evidence.names.items())),
        "acked_committed": list(evidence.acked_committed),
        "indeterminate_committed": list(
            evidence.indeterminate_committed
        ),
        "replicas": evidence.replicas,
        "recovered_committed": (
            list(evidence.recovery.committed)
            if evidence.recovery is not None
            else None
        ),
        "shard_recovered_committed": (
            {
                str(index): list(result.committed)
                for index, result in sorted(
                    evidence.shard_recovery.shards.items()
                )
            }
            if evidence.shard_recovery is not None
            else None
        ),
        "shard_resolutions": (
            [dict(entry) for entry in evidence.shard_recovery.resolutions]
            if evidence.shard_recovery is not None
            else None
        ),
        "crashed": evidence.crashed,
        "crash": evidence.crash_info,
        "deadlock": evidence.deadlock,
        "recovery_error": evidence.recovery_error,
        "drain_summary": evidence.drain_summary,
        "virtual_duration": round(clock.now, 6),
        "oracles": {
            result.name: {
                "ok": result.ok,
                "details": list(result.details),
            }
            for result in oracles
        },
        "schedule": evidence.events,
    }
    report["ok"] = all(v["ok"] for v in report["oracles"].values())
    return report
