"""Invariant oracles: what every fuzz run must satisfy.

The paper's Theorem 1 makes *checking an arbitrary execution* against
explicit consistency predicates NP-complete — so the fuzzer leans on
the polynomial certificates this repo already maintains instead of a
general checker:

* the Section-5 protocol's own sufficient conditions (Lemma 4 parent-
  based reads, Theorem 2 predicate re-verification),
* the WAL history projections (recorded multi-version RC, committed
  projection) and the recovery pass's committed-prefix verification,
* the Section-4 lattice: every classification of the committed
  projection must respect the containment laws of Figure 2 (the
  fast/staged classifier is additionally diffed against ``exact=True``
  on small histories).

Plus the server-level liveness/accounting invariants no model covers:
exactly one terminal reply per admitted request, no lost responses
(a stalled virtual loop *is* a lost response), write effects bounded
by acknowledged requests, and telemetry that agrees with the
transcript: counters match the event log, the queue/park gauges are
back to zero after the drain, and the live tracer's span trees are
complete (nothing left open, every request span carries exactly one
``queue.wait`` accounting child, every parent edge resolves).

Every oracle returns a verdict with human-readable details; a failing
run's verdict set is its *failure signature*, which the shrinker holds
constant while minimizing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..classes.hierarchy import classify, containment_violations
from ..durability.history import (
    committed_projection,
    recorded_is_rc,
)
from ..durability.records import OP_WRITE
from ..protocol.scheduler import TxnPhase

#: Committed-projection size caps for the NP-complete classifier
#: passes (staged, and the staged-vs-exact differential).
_CLASSIFY_CAP = 14
_EXACT_CAP = 9


@dataclass
class OracleResult:
    name: str
    ok: bool
    details: list[str] = field(default_factory=list)
    skipped: bool = False

    @classmethod
    def skip(cls, name: str, why: str) -> "OracleResult":
        return cls(name=name, ok=True, details=[why], skipped=True)


def run_oracles(
    evidence: Any, names: "list[str] | None" = None
) -> list[OracleResult]:
    """Evaluate oracles against ``evidence``, in a fixed order.

    ``names`` selects a subset (still evaluated in registry order) —
    the reuse API for harnesses beyond the fuzzer: the cluster DES
    (:mod:`repro.des`) builds fuzz-shaped evidence per primary epoch
    and transfers exactly the oracles whose preconditions that epoch
    satisfies.  Unknown names raise ``KeyError`` so a harness cannot
    silently skip an invariant it believes it is checking.
    """
    if names is None:
        return [check(evidence) for check in ORACLES.values()]
    missing = [name for name in names if name not in ORACLES]
    if missing:
        raise KeyError(f"unknown oracles: {missing}")
    return [
        check(evidence)
        for name, check in ORACLES.items()
        if name in set(names)
    ]


def _indeterminate(evidence: Any) -> set:
    """Commits whose reply said *durable locally, ack unknown*.

    Sync replication introduces a third commit outcome: the WAL holds
    the commit, but the reply was a replication-ack timeout (or the
    drain ran first).  Oracles treat these as committed-without-ack —
    legitimate in the recovered history, never required to be there.
    """
    return set(getattr(evidence, "indeterminate_committed", []) or [])


def _full_history(evidence: Any) -> bool:
    """Did the WAL retain the run from LSN 1 (no checkpoint cleanup)?"""
    return (
        evidence.records is not None
        and len(evidence.records) > 0
        and evidence.records[0].lsn == 1
    )


def _sharded(evidence: Any) -> bool:
    return getattr(evidence.plan, "shards", 1) > 1


def _branch_shard(name: str) -> "int | None":
    """``sh2.5`` → ``2``: the shard a branch name is rooted at."""
    head = name.split(".", 1)[0]
    if head.startswith("sh") and head[2:].isdigit():
        return int(head[2:])
    return None


def _gid_of(evidence: Any, branch: str) -> str:
    """Per-shard branch name → client-visible transaction name."""
    return (getattr(evidence, "branch_map", None) or {}).get(
        branch, branch
    )


def _branches_of(evidence: Any) -> dict[str, dict[int, str]]:
    """gid → ``{shard: branch}`` for every cross-shard transaction."""
    out: dict[str, dict[int, str]] = {}
    for branch, gid in (
        getattr(evidence, "branch_map", None) or {}
    ).items():
        shard = _branch_shard(branch)
        if shard is not None:
            out.setdefault(gid, {})[shard] = branch
    return out


def _shard_full_history(records: "list[Any]") -> bool:
    return len(records) > 0 and records[0].lsn == 1


def _acked_branches_on_shard(
    evidence: Any,
    branches_of: dict[str, dict[int, str]],
    index: int,
) -> "list[tuple[str, bool]]":
    """The acked commit sequence projected onto shard ``index``.

    Yields ``(branch, is_cross)`` in ack order.  Cross-shard branches
    are flagged: their per-shard commit records are written by a 2PC
    fan-out whose arrival order at any one shard is not the global ack
    order, so the order contract only binds single-shard commits.
    """
    projected: list[tuple[str, bool]] = []
    for gid in evidence.acked_committed:
        cross = branches_of.get(gid)
        if cross is not None:
            branch = cross.get(index)
            if branch is not None:
                projected.append((branch, True))
        elif _branch_shard(gid) == index:
            projected.append((gid, False))
    return projected


def _no_deadlock(evidence: Any) -> OracleResult:
    if evidence.deadlock is None:
        return OracleResult("no_deadlock", True)
    return OracleResult(
        "no_deadlock",
        False,
        [f"virtual loop stalled: {evidence.deadlock}"],
    )


def _replies_complete(evidence: Any) -> OracleResult:
    """Every admitted request got exactly one terminal reply.

    After a crash, requests in flight at the moment the dispatcher
    died may legitimately stay unanswered; any other pending request
    is a lost response.
    """
    details = []
    reply_counts: dict[tuple[int, int], int] = {}
    for event in evidence.events:
        if event["kind"] == "reply":
            key = (event["client"], event["rid"])
            reply_counts[key] = reply_counts.get(key, 0) + 1
    for key, count in sorted(reply_counts.items()):
        # BUSY retries re-reply under the same rid by design; only
        # count terminal (non-BUSY) replies.
        terminal = sum(
            1
            for event in evidence.events
            if event["kind"] == "reply"
            and (event["client"], event["rid"]) == key
            and event.get("code") != "BUSY"
        )
        if terminal > 1:
            details.append(
                f"client {key[0]} rid {key[1]}: "
                f"{terminal} terminal replies"
            )
    if not evidence.crashed:
        for entry in evidence.pending_requests:
            details.append(
                f"client {entry['client']} rid {entry['rid']} "
                f"({entry['op']}) never answered"
            )
    return OracleResult("replies_complete", not details, details)


def _write_multiplicity(evidence: Any) -> OracleResult:
    """WAL write effects are bounded by acknowledged write requests.

    For every ``(txn, entity)``: the number of WRITE records in the
    WAL must equal the number of ok-acknowledged ``write`` requests
    (clean runs) or sit between the acked count and acked+pending
    (crash runs, where an executed write's reply may have been lost).
    A parked write whose deadline expired (TIMEOUT reply) must leave
    **no** record — a record anyway means the server mutated the
    manager after telling the client nothing happened, or executed one
    request twice.
    """
    name = "write_multiplicity"
    if _sharded(evidence):
        if evidence.shard_records is None:
            return OracleResult.skip(
                name, "no WAL (in-memory or unrecoverable run)"
            )
        if not all(
            _shard_full_history(records)
            for records in evidence.shard_records.values()
        ):
            return OracleResult.skip(
                name, "checkpoint cleanup truncated early history"
            )
        records = [
            record
            for _, shard_records in sorted(
                evidence.shard_records.items()
            )
            for record in shard_records
        ]
    elif evidence.records is None:
        return OracleResult.skip(name, "no WAL (in-memory run)")
    elif not _full_history(evidence):
        return OracleResult.skip(
            name, "checkpoint cleanup truncated early history"
        )
    else:
        records = evidence.records
    wal_writes: dict[tuple[str, str], int] = {}
    for record in records:
        if record.op == OP_WRITE:
            # Branch names collapse to the client-visible gid so WAL
            # writes line up with the request transcript.
            key = (_gid_of(evidence, record.txn), record.data["entity"])
            wal_writes[key] = wal_writes.get(key, 0) + 1
    acked: dict[tuple[str, str], int] = {}
    pending: dict[tuple[str, str], int] = {}
    for entry in evidence.requests.values():
        if entry["op"] != "write" or entry["txn"] is None:
            continue
        key = (entry["txn"], entry["entity"])
        if entry["status"] == "ok":
            acked[key] = acked.get(key, 0) + 1
        elif entry["status"] == "pending":
            pending[key] = pending.get(key, 0) + 1
    details = []
    for key in sorted(set(wal_writes) | set(acked)):
        logged = wal_writes.get(key, 0)
        low = acked.get(key, 0)
        high = low + (pending.get(key, 0) if evidence.crashed else 0)
        if not low <= logged <= high:
            details.append(
                f"txn {key[0]} entity {key[1]}: {logged} WAL writes "
                f"for {low} acked (+{high - low} in-flight) requests"
            )
    return OracleResult(name, not details, details)


def _recovery_verified(evidence: Any) -> OracleResult:
    name = "recovery_verified"
    if not evidence.plan.durable:
        return OracleResult.skip(name, "in-memory run")
    if evidence.recovery_error is not None:
        return OracleResult(
            name, False, [f"recovery failed: {evidence.recovery_error}"]
        )
    if _sharded(evidence):
        if evidence.shard_recovery is None:
            return OracleResult(name, False, ["recovery never ran"])
        if evidence.shard_recovery.verified:
            return OracleResult(name, True)
        return OracleResult(
            name,
            False,
            [
                f"shard{index}: {violation}"
                for index, result in sorted(
                    evidence.shard_recovery.shards.items()
                )
                for violation in result.violations
            ],
        )
    if evidence.recovery is None:
        return OracleResult(name, False, ["recovery never ran"])
    if evidence.recovery.verified:
        return OracleResult(name, True)
    return OracleResult(
        name, False, list(evidence.recovery.violations)
    )


def _committed_prefix(evidence: Any) -> OracleResult:
    """Acked commits survive recovery, in order; nothing else commits.

    The client-visible contract: an acknowledged commit is durable
    (the WAL append precedes the ack), so the acked sequence must be a
    subsequence of the recovered commit order.  Conversely a recovered
    commit nobody was acked for is only legitimate when its commit
    request was still in flight at the crash.
    """
    name = "committed_prefix"
    if _sharded(evidence):
        return _committed_prefix_sharded(evidence)
    if evidence.recovery is None:
        return OracleResult.skip(
            name, "no recovery pass (in-memory run or recovery error)"
        )
    recovered = list(evidence.recovery.committed)
    details = []
    # Subsequence check preserves the order of the acks.
    position = 0
    for acked in evidence.acked_committed:
        try:
            position = recovered.index(acked, position) + 1
        except ValueError:
            details.append(
                f"acked commit {acked} missing from recovered order "
                f"{recovered}"
            )
    inflight_commits = {
        entry["txn"]
        for entry in evidence.pending_requests
        if entry["op"] == "commit"
    }
    indeterminate = _indeterminate(evidence)
    for txn in recovered:
        if txn in evidence.acked_committed:
            continue
        if txn in indeterminate:
            # The client was told exactly this could happen: durable
            # locally, replication ack unknown.
            continue
        if evidence.crashed and txn in inflight_commits:
            continue
        details.append(
            f"recovered commit {txn} was never acknowledged"
        )
    return OracleResult(name, not details, details)


def _committed_prefix_sharded(evidence: Any) -> OracleResult:
    """The sharded commit contract, shard by shard.

    Acked single-shard commits must appear in their shard's recovered
    commit order *in ack order*; acked cross-shard commits must appear
    on every participant shard, but only membership is required — the
    2PC fan-out (and recovery's in-doubt resolution, which appends the
    decided commit at the WAL tail) makes their per-shard positions
    schedule-dependent.  Conversely, every recovered commit must map
    back to an acked, indeterminate, or crash-in-flight transaction.
    """
    name = "committed_prefix"
    recovery = evidence.shard_recovery
    if recovery is None:
        return OracleResult.skip(
            name, "no recovery pass (in-memory run or recovery error)"
        )
    branches_of = _branches_of(evidence)
    details: list[str] = []
    acked = set(evidence.acked_committed)
    indeterminate = _indeterminate(evidence)
    inflight_commits = {
        entry["txn"]
        for entry in evidence.pending_requests
        if entry["op"] == "commit"
    }
    for index, result in sorted(recovery.shards.items()):
        recovered = list(result.committed)
        recovered_set = set(recovered)
        position = 0
        for branch, is_cross in _acked_branches_on_shard(
            evidence, branches_of, index
        ):
            if is_cross:
                if branch not in recovered_set:
                    details.append(
                        f"shard{index}: acked cross-shard commit "
                        f"{_gid_of(evidence, branch)} (branch {branch})"
                        f" missing from recovered order {recovered}"
                    )
                continue
            try:
                position = recovered.index(branch, position) + 1
            except ValueError:
                details.append(
                    f"shard{index}: acked commit {branch} missing "
                    f"from recovered order {recovered}"
                )
        for branch in recovered:
            gid = _gid_of(evidence, branch)
            if gid in acked or gid in indeterminate:
                continue
            if evidence.crashed and gid in inflight_commits:
                continue
            details.append(
                f"shard{index}: recovered commit {branch} "
                f"(txn {gid}) was never acknowledged"
            )
    return OracleResult(name, not details, details)


def _history_rc(evidence: Any) -> OracleResult:
    """Strict mode guarantees recoverable (RC) recorded histories."""
    name = "history_rc"
    if not evidence.plan.strict:
        return OracleResult.skip(
            name, "non-strict run: RC is not promised"
        )
    if _sharded(evidence):
        # Each shard is its own single-writer history; RC is a
        # per-history property, checked shard by shard.
        if (
            evidence.shard_records is None
            or evidence.shard_recovery is None
        ):
            return OracleResult.skip(name, "no WAL history")
        if not all(
            _shard_full_history(records)
            for records in evidence.shard_records.values()
        ):
            return OracleResult.skip(
                name, "checkpoint cleanup truncated early history"
            )
        details = [
            f"shard{index}: committed reader precedes its author"
            for index, records in sorted(
                evidence.shard_records.items()
            )
            if not recorded_is_rc(
                records,
                list(
                    evidence.shard_recovery.shards[index].committed
                ),
            )
        ]
        return OracleResult(name, not details, details)
    if evidence.records is None or evidence.recovery is None:
        return OracleResult.skip(name, "no WAL history")
    if not _full_history(evidence):
        return OracleResult.skip(
            name, "checkpoint cleanup truncated early history"
        )
    ok = recorded_is_rc(
        evidence.records, list(evidence.recovery.committed)
    )
    return OracleResult(
        name,
        ok,
        [] if ok else ["committed reader precedes its author"],
    )


def _classifier_lattice(evidence: Any) -> OracleResult:
    """The committed projection classifies coherently.

    Containment violations (e.g. CSR ⊄ SR) indicate a broken class
    tester — this is the oracle that catches regressions like
    reverting the Lemma-3 condition-2 fix.  On small projections the
    staged classifier is additionally required to agree with
    ``exact=True`` (no lattice short-circuiting), a differential check
    of every fast path.
    """
    name = "classifier_lattice"
    if _sharded(evidence):
        if (
            evidence.shard_records is None
            or evidence.shard_recovery is None
        ):
            return OracleResult.skip(name, "no WAL history")
        if not all(
            _shard_full_history(records)
            for records in evidence.shard_records.values()
        ):
            return OracleResult.skip(
                name, "checkpoint cleanup truncated early history"
            )
        details = []
        checked = 0
        for index, records in sorted(evidence.shard_records.items()):
            projection = committed_projection(
                records,
                list(
                    evidence.shard_recovery.shards[index].committed
                ),
            )
            if projection is None:
                continue
            schedule = projection.schedule
            if len(schedule) > _CLASSIFY_CAP:
                continue  # this shard is too big for the NP pass
            checked += 1
            details.extend(
                f"shard{index}: {violation}"
                for violation in containment_violations(
                    classify(schedule)
                )
            )
        if not checked:
            return OracleResult.skip(
                name, "no classifiable committed projection on any shard"
            )
        return OracleResult(name, not details, details)
    if evidence.records is None or evidence.recovery is None:
        return OracleResult.skip(name, "no WAL history")
    if not _full_history(evidence):
        return OracleResult.skip(
            name, "checkpoint cleanup truncated early history"
        )
    projection = committed_projection(
        evidence.records, list(evidence.recovery.committed)
    )
    if projection is None:
        return OracleResult.skip(
            name, "no committed data operations"
        )
    schedule = projection.schedule
    if len(schedule) > _CLASSIFY_CAP:
        return OracleResult.skip(
            name,
            f"projection has {len(schedule)} ops "
            f"(> {_CLASSIFY_CAP}); classifier pass skipped",
        )
    membership = classify(schedule)
    details = [
        str(violation)
        for violation in containment_violations(membership)
    ]
    if not details and len(schedule) <= _EXACT_CAP:
        exact = classify(schedule, exact=True)
        if membership.as_dict() != exact.as_dict():
            details.append(
                "staged classify disagrees with exact: "
                f"{membership.as_dict()} != {exact.as_dict()}"
            )
    return OracleResult(name, not details, details)


def _protocol_verify(evidence: Any) -> OracleResult:
    """Post-drain manager state passes Lemma 4 / Theorem 2 and is clean."""
    name = "protocol_verify"
    if _sharded(evidence):
        return _protocol_verify_sharded(evidence)
    if evidence.manager is None:
        return OracleResult.skip(
            name, "no live manager (crash or deadlock)"
        )
    manager = evidence.manager
    details = []
    root = manager.root
    details.extend(manager.verify_parent_based(root))
    details.extend(manager.verify_correctness(root))
    committed = set()
    for child in manager.children_of(root):
        record = manager.record(child)
        if not record.terminated:
            details.append(f"{child} still live after drain")
        if record.phase is TxnPhase.COMMITTED:
            committed.add(child)
    expected = set(evidence.acked_committed) | _indeterminate(evidence)
    if committed != expected:
        details.append(
            f"manager committed set {sorted(committed)} != acked "
            f"∪ indeterminate {sorted(expected)}"
        )
    if evidence.dispatcher is not None:
        parked = evidence.dispatcher.parked_count
        if parked:
            details.append(
                f"{parked} commands still parked after drain"
            )
    return OracleResult(name, not details, details)


def _protocol_verify_sharded(evidence: Any) -> OracleResult:
    """Per-shard Lemma 4 / Theorem 2 plus the cross-shard commit map."""
    name = "protocol_verify"
    managers = evidence.shard_managers
    if managers is None:
        return OracleResult.skip(
            name, "no live managers (crash or deadlock)"
        )
    branches_of = _branches_of(evidence)
    acked_or_indet = set(evidence.acked_committed) | _indeterminate(
        evidence
    )
    details: list[str] = []
    for index, manager in enumerate(managers):
        root = manager.root
        details.extend(
            f"shard{index}: {problem}"
            for problem in manager.verify_parent_based(root)
        )
        details.extend(
            f"shard{index}: {problem}"
            for problem in manager.verify_correctness(root)
        )
        committed = set()
        for child in manager.children_of(root):
            record = manager.record(child)
            if not record.terminated:
                details.append(
                    f"shard{index}: {child} still live after drain"
                )
            if record.phase is TxnPhase.COMMITTED:
                committed.add(child)
        expected = set()
        for gid in acked_or_indet:
            cross = branches_of.get(gid)
            if cross is not None:
                branch = cross.get(index)
                if branch is not None:
                    expected.add(branch)
            elif _branch_shard(gid) == index:
                expected.add(gid)
        if committed != expected:
            details.append(
                f"shard{index}: manager committed set "
                f"{sorted(committed)} != acked ∪ indeterminate "
                f"branches {sorted(expected)}"
            )
    if evidence.dispatcher is not None:
        parked = getattr(evidence.dispatcher, "parked_count", 0)
        if parked:
            details.append(
                f"{parked} commands still parked after drain"
            )
    return OracleResult(name, not details, details)


def _metrics_consistent(evidence: Any) -> OracleResult:
    """Telemetry agrees with the transcript.

    Beyond the counter cross-checks, a clean (no crash, no deadlock)
    run must leave the live surfaces settled: the queue-depth and
    park-depth gauges read zero once the drain finishes, the tracer
    holds no open span, and the collected span set forms complete
    trees — every ``request`` span has exactly one ``queue.wait``
    child (the dequeue-time accounting record) and every non-root
    parent edge points at a span that actually completed.
    """
    name = "metrics_consistent"
    if evidence.crashed or evidence.deadlock is not None:
        return OracleResult.skip(
            name, "counters are mid-flight after a crash/deadlock"
        )
    if evidence.registry is None:
        return OracleResult.skip(name, "no registry")
    registry = evidence.registry
    details = []
    committed_count = int(
        registry.counter("server.txns.committed").value
    )
    indeterminate = _indeterminate(evidence)
    if _sharded(evidence):
        # The committed counter ticks once per *branch* commit, so a
        # cross-shard transaction on k shards counts k times.
        branches_of = _branches_of(evidence)
        expected_commits = sum(
            len(branches_of.get(gid) or (gid,))
            for gid in set(evidence.acked_committed) | indeterminate
        )
    else:
        expected_commits = len(evidence.acked_committed) + len(
            indeterminate - set(evidence.acked_committed)
        )
    if committed_count != expected_commits:
        details.append(
            f"server.txns.committed={committed_count} but "
            f"{len(evidence.acked_committed)} commits acked + "
            f"{len(indeterminate)} indeterminate "
            f"(expected {expected_commits})"
        )
    if _sharded(evidence):
        # Per-shard label series must sum exactly to the aggregate —
        # no double-counting, no unlabeled stragglers.
        shard_sum = sum(
            int(
                registry.counter(
                    f"server.txns.committed.shard{index}"
                ).value
            )
            for index in range(evidence.plan.shards)
        )
        if shard_sum != committed_count:
            details.append(
                f"per-shard committed series sum to {shard_sum} but "
                f"server.txns.committed={committed_count}"
            )
    busy_events = sum(
        1 for event in evidence.events if event["kind"] == "busy"
    ) + sum(
        1
        for event in evidence.events
        if event["kind"] == "reply" and event.get("code") == "BUSY"
    )
    busy_count = int(registry.counter("server.busy").value)
    if _sharded(evidence):
        # The router's internal 2PC fan-out retries BUSY itself, so
        # the counter may exceed what the client transcript saw — but
        # never the reverse.
        if busy_count < busy_events:
            details.append(
                f"server.busy={busy_count} but transcript shows "
                f"{busy_events} BUSY rejections"
            )
    elif busy_count != busy_events:
        details.append(
            f"server.busy={busy_count} but transcript shows "
            f"{busy_events} BUSY rejections"
        )
    dropped = int(
        registry.counter("server.notifications_dropped").value
    )
    if dropped:
        # Fuzz sessions record notifications synchronously — there is
        # no outbound queue to overflow, so any drop is a server bug.
        details.append(
            f"server.notifications_dropped={dropped} without a "
            "transport queue in the run"
        )
    for gauge_name in ("server.queue.depth", "server.park.depth"):
        depth = registry.gauge(gauge_name).value
        if depth:
            details.append(
                f"{gauge_name}={depth:g} after a clean drain"
            )
    details.extend(_span_tree_details(evidence))
    return OracleResult(name, not details, details)


def _span_tree_details(evidence: Any) -> list[str]:
    spans = getattr(evidence, "spans", None)
    if spans is None:
        return []
    details = []
    if evidence.spans_dropped:
        details.append(
            f"span ring dropped {evidence.spans_dropped} spans "
            f"(capacity too small for the plan)"
        )
    open_spans = getattr(evidence, "open_spans", None) or []
    for span in open_spans:
        details.append(
            f"span {span.span_id} ({span.kind}, txn {span.txn}) "
            "still open after drain"
        )
    by_id = {span.span_id: span for span in spans}
    queue_children: dict[int, int] = {}
    for span in spans:
        if (
            span.parent_id is not None
            and span.parent_id not in by_id
        ):
            details.append(
                f"span {span.span_id} ({span.kind}, txn {span.txn}) "
                f"references missing parent {span.parent_id}"
            )
        if span.kind == "queue.wait" and span.parent_id is not None:
            queue_children[span.parent_id] = (
                queue_children.get(span.parent_id, 0) + 1
            )
    for span in spans:
        if span.kind != "request":
            continue
        count = queue_children.get(span.span_id, 0)
        if count != 1:
            details.append(
                f"request span {span.span_id} "
                f"(op {span.attrs.get('op')}, txn {span.txn}) has "
                f"{count} queue.wait children (expected 1)"
            )
    return details


def _cross_shard_atomicity(evidence: Any) -> OracleResult:
    """All-or-nothing across shards: no transaction half-commits.

    For every top-level cross-shard transaction, the branch fates on
    its participant shards must agree — after recovery (durable runs,
    where the in-doubt resolution pass has already applied the
    coordinator's decision) or in the drained live managers
    (in-memory runs).  A divergence is split-brain: one shard
    exposes the transaction's writes while another acts as if it
    never happened.  Additionally an acked cross-shard commit must be
    committed everywhere, and a fully-committed one must have been
    acked (or been in flight at a crash).
    """
    name = "cross_shard_atomicity"
    if not _sharded(evidence):
        return OracleResult.skip(name, "single-shard plan")
    branches_of = _branches_of(evidence)
    multi = {
        gid: branches
        for gid, branches in branches_of.items()
        # Top-level transactions only: a nested cross-shard txn
        # ("sh2.5.1") commits relative to its parent, whose own 2PC
        # settles the global fate.
        if len(branches) > 1 and gid.count(".") == 1
    }
    if not multi:
        return OracleResult.skip(
            name, "no cross-shard transactions in this run"
        )
    if evidence.plan.durable:
        if evidence.shard_recovery is None:
            return OracleResult.skip(
                name,
                f"recovery unavailable: {evidence.recovery_error}",
            )
        committed_by_shard = {
            index: set(result.committed)
            for index, result in evidence.shard_recovery.shards.items()
        }

        def _fate(shard: int, branch: str) -> bool:
            return branch in committed_by_shard.get(shard, set())

    else:
        managers = evidence.shard_managers
        if managers is None:
            return OracleResult.skip(
                name, "no live managers (crash or deadlock)"
            )

        def _fate(shard: int, branch: str) -> bool:
            try:
                record = managers[shard].record(branch)
            except Exception:  # noqa: BLE001 — unknown branch = no commit
                return False
            return record.phase is TxnPhase.COMMITTED

    details: list[str] = []
    acked = set(evidence.acked_committed)
    indeterminate = _indeterminate(evidence)
    inflight_commits = {
        entry["txn"]
        for entry in evidence.pending_requests
        if entry["op"] == "commit"
    }
    for gid, branches in sorted(multi.items()):
        fates = {
            f"shard{shard}:{branch}": _fate(shard, branch)
            for shard, branch in sorted(branches.items())
        }
        outcomes = set(fates.values())
        if len(outcomes) > 1:
            details.append(
                f"split-brain: transaction {gid} branch fates "
                f"diverge: {fates}"
            )
            continue
        committed = outcomes.pop()
        if gid in acked and not committed:
            details.append(
                f"acked cross-shard commit {gid} is not committed "
                f"on its participant shards {sorted(branches)}"
            )
        if (
            committed
            and gid not in acked
            and gid not in indeterminate
            and not (evidence.crashed and gid in inflight_commits)
        ):
            details.append(
                f"cross-shard transaction {gid} committed without "
                f"an acknowledged commit"
            )
    return OracleResult(name, not details, details)


def _acked_commits_survive_promotion(evidence: Any) -> OracleResult:
    """Every synchronously-acked commit is on the promotion winner.

    With ``sync_replicas >= 1`` a commit reply is withheld until
    enough followers have *fsynced* past the commit LSN, so the
    failover rule — promote the follower with the highest
    ``applied_lsn``, gated on ``recover --verify`` — must yield a
    history containing every acked commit, no matter where the run
    crashed or which links were partitioned.  Indeterminate commits
    carry no such promise (the client was told so), and async
    replication never promises anything before the ack.
    """
    name = "acked_commits_survive_promotion"
    replicas = getattr(evidence, "replicas", None)
    if not replicas:
        return OracleResult.skip(name, "no replicas in this plan")
    if evidence.plan.sync_replicas < 1:
        return OracleResult.skip(
            name, "async replication: replies never waited for acks"
        )
    details = [
        f"replica {entry['replica']} recovery failed: {entry['error']}"
        for entry in replicas
        if entry.get("error") is not None
    ]
    usable = [e for e in replicas if e.get("error") is None]
    if not usable:
        return OracleResult(name, False, details)
    winner = max(usable, key=lambda entry: entry["applied_lsn"])
    if not winner.get("verified", False):
        details.append(
            f"promotion winner (replica {winner['replica']}) failed "
            f"recover --verify: {winner.get('violations')}"
        )
    committed = set(winner.get("committed") or [])
    for txn in evidence.acked_committed:
        if txn not in committed:
            details.append(
                f"acked commit {txn} missing from promotion winner "
                f"(replica {winner['replica']}, applied_lsn "
                f"{winner['applied_lsn']})"
            )
    return OracleResult(name, not details, details)


def _prefix_consistency(evidence: Any) -> OracleResult:
    """Follower read histories are committed-prefix consistent.

    The formal claim behind bounded-stale reads: a follower's view at
    ``applied_lsn = L`` is *the* committed state of the primary's
    history prefix up to ``L`` — an older version in the paper's
    version-function sense, never a divergent one.  Three cheap
    certificates over the sampled reads and the recovered replicas:

    * per replica, ``applied_lsn`` never moves backwards (reads never
      travel back in time, even across snapshot resyncs);
    * the view is a **function** of the prefix — any two samples at
      the same ``applied_lsn``, on any replica, show the same view;
    * replica WALs are literal prefixes of the primary's log, so the
      recovered commit orders must nest: each shorter order is a
      prefix of every longer one.
    """
    name = "prefix_consistency"
    replicas = getattr(evidence, "replicas", None)
    if not replicas:
        return OracleResult.skip(name, "no replicas in this plan")
    details: list[str] = []
    high_water: dict[int, int] = {}
    view_at: dict[int, dict] = {}
    for sample in getattr(evidence, "follower_samples", None) or []:
        index = sample["replica"]
        lsn = sample["applied_lsn"]
        view = sample["view"]
        if lsn < high_water.get(index, 0):
            details.append(
                f"replica {index} applied_lsn moved backwards: "
                f"{high_water[index]} -> {lsn}"
            )
        high_water[index] = lsn
        first = view_at.setdefault(lsn, view)
        if first != view:
            details.append(
                f"reads at applied_lsn {lsn} disagree: "
                f"{first} != {view}"
            )
    orders = sorted(
        (
            list(entry.get("committed") or [])
            for entry in replicas
            if entry.get("error") is None
        ),
        key=len,
    )
    for shorter, longer in zip(orders, orders[1:]):
        if longer[: len(shorter)] != shorter:
            details.append(
                f"recovered commit orders do not nest: "
                f"{shorter} is not a prefix of {longer}"
            )
    return OracleResult(name, not details, details)


#: Name -> check, in canonical evaluation order.  ``run_oracles``
#: iterates this registry; external harnesses (the DES) use the keys
#: to select which invariants transfer to a given evidence shape.
ORACLES: "dict[str, Any]" = {
    "no_deadlock": _no_deadlock,
    "replies_complete": _replies_complete,
    "write_multiplicity": _write_multiplicity,
    "recovery_verified": _recovery_verified,
    "committed_prefix": _committed_prefix,
    "cross_shard_atomicity": _cross_shard_atomicity,
    "history_rc": _history_rc,
    "classifier_lattice": _classifier_lattice,
    "protocol_verify": _protocol_verify,
    "metrics_consistent": _metrics_consistent,
    "acked_commits_survive_promotion": _acked_commits_survive_promotion,
    "prefix_consistency": _prefix_consistency,
}
