"""Corpus driving, reproducer files, and the fuzz exit contract.

``repro fuzz`` runs a contiguous range of seeds; every failing seed is
shrunk to a minimal plan and serialized as a *reproducer* — a small
JSON file holding the reduced plan, the expected failure signature,
and the originating seed.  ``repro fuzz replay FILE`` re-executes the
plan bit-for-bit and reports whether the failure still reproduces.

Exit codes (shared by the CLI and CI):

* ``0`` — every run passed every oracle;
* ``1`` — at least one invariant violation (reproducers written);
* ``2`` — the harness itself failed (an exception escaped a run).
"""

from __future__ import annotations

import json
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..obs.metrics import MetricsRegistry
from .plan import FuzzPlan, generate_plan
from .runner import RunResult, execute_plan
from .shrink import shrink_plan

EXIT_CLEAN = 0
EXIT_VIOLATION = 1
EXIT_HARNESS_ERROR = 2

REPRO_VERSION = 1


@dataclass
class Failure:
    """One failing seed, after shrinking."""

    seed: int
    failed_oracles: tuple[str, ...]
    op_count_before: int
    op_count_after: int
    shrink_runs: int
    reproducer: "str | None"

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "failed_oracles": list(self.failed_oracles),
            "op_count_before": self.op_count_before,
            "op_count_after": self.op_count_after,
            "shrink_runs": self.shrink_runs,
            "reproducer": self.reproducer,
        }


@dataclass
class CorpusResult:
    """What a whole corpus run produced."""

    start_seed: int
    runs: int
    passed: int = 0
    failures: list[Failure] = field(default_factory=list)
    harness_errors: list[dict[str, Any]] = field(default_factory=list)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def exit_code(self) -> int:
        if self.harness_errors:
            return EXIT_HARNESS_ERROR
        if self.failures:
            return EXIT_VIOLATION
        return EXIT_CLEAN

    def report(self) -> dict[str, Any]:
        return {
            "fuzz": "corpus",
            "start_seed": self.start_seed,
            "runs": self.runs,
            "passed": self.passed,
            "failures": [f.to_dict() for f in self.failures],
            "harness_errors": self.harness_errors,
            "exit_code": self.exit_code,
            "metrics": self.registry.snapshot(),
        }


def run_seed(seed: int, **overrides: Any) -> RunResult:
    """Generate the plan for ``seed`` (with overrides) and execute it."""
    return execute_plan(generate_plan(seed, **overrides))


def save_reproducer(
    path: "Path | str", plan: FuzzPlan, failed_oracles: "tuple[str, ...]"
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "repro_version": REPRO_VERSION,
        "seed": plan.seed,
        "expected_failure": sorted(failed_oracles),
        "op_count": plan.op_count,
        "plan": plan.to_dict(),
    }
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def load_reproducer(path: "Path | str") -> tuple[FuzzPlan, list[str]]:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("repro_version")
    if version != REPRO_VERSION:
        raise ValueError(
            f"unsupported reproducer version {version!r}"
        )
    return (
        FuzzPlan.from_dict(payload["plan"]),
        list(payload.get("expected_failure", [])),
    )


def replay_file(path: "Path | str") -> tuple[RunResult, bool]:
    """Re-execute a reproducer; returns (result, signature matches)."""
    plan, expected = load_reproducer(path)
    result = execute_plan(plan)
    matches = set(expected) <= set(result.failed_oracles)
    return result, matches


def _shrink_failure(
    result: RunResult,
    registry: MetricsRegistry,
) -> tuple[FuzzPlan, int]:
    signature = set(result.failed_oracles)

    def _reproduces(candidate: FuzzPlan) -> bool:
        registry.counter("fuzz.shrink.runs").inc()
        try:
            rerun = execute_plan(candidate)
        except Exception:  # noqa: BLE001 — a crashing candidate is
            return False  # not the same bug; reject the reduction
        return signature <= set(rerun.failed_oracles)

    return shrink_plan(result.plan, _reproduces)


def run_corpus(
    start_seed: int,
    runs: int,
    *,
    out_dir: "Path | str | None" = "fuzz-failures",
    shrink: bool = True,
    progress: "Callable[[str], None] | None" = None,
    plan_overrides: "dict[str, Any] | None" = None,
) -> CorpusResult:
    """Run seeds ``start_seed .. start_seed + runs - 1``."""
    overrides = plan_overrides or {}
    result = CorpusResult(start_seed=start_seed, runs=runs)
    registry = result.registry
    for seed in range(start_seed, start_seed + runs):
        registry.counter("fuzz.runs").inc()
        try:
            run = run_seed(seed, **overrides)
        except Exception:  # noqa: BLE001 — harness fault barrier
            registry.counter("fuzz.harness_errors").inc()
            result.harness_errors.append(
                {
                    "seed": seed,
                    "traceback": traceback.format_exc(limit=8),
                }
            )
            continue
        registry.histogram("fuzz.run.requests").observe(
            run.report["counts"]["requests"]
        )
        if run.ok:
            result.passed += 1
            continue
        registry.counter("fuzz.failures").inc()
        failed = run.failed_oracles
        if progress is not None:
            progress(
                f"seed {seed}: FAILED {', '.join(failed)} "
                f"({run.plan.op_count} ops) — shrinking"
                if shrink
                else f"seed {seed}: FAILED {', '.join(failed)}"
            )
        minimized = run.plan
        shrink_runs = 0
        if shrink:
            minimized, shrink_runs = _shrink_failure(run, registry)
        reproducer_path: "str | None" = None
        if out_dir is not None:
            path = Path(out_dir) / f"repro-seed-{seed}.json"
            save_reproducer(path, minimized, failed)
            reproducer_path = str(path)
        result.failures.append(
            Failure(
                seed=seed,
                failed_oracles=failed,
                op_count_before=run.plan.op_count,
                op_count_after=minimized.op_count,
                shrink_runs=shrink_runs,
                reproducer=reproducer_path,
            )
        )
    return result
