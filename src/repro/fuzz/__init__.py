"""repro.fuzz — a deterministic concurrency fuzzer with oracles.

The paper proves that checking an arbitrary concurrent execution
against explicit consistency predicates is NP-complete (Theorem 1); in
practice the way to trust the server + durability stack is to *search*
— explore as many interleavings and fault schedules as possible and
check each one against the polynomial certificates the protocol
maintains.  This package is that search:

* :mod:`repro.fuzz.plan` — seeds expand to explicit, shrinkable,
  JSON-serializable run plans;
* :mod:`repro.fuzz.loop` — an asyncio event loop on a virtual clock
  (no wall time, no I/O → bit-for-bit reproducible interleavings);
* :mod:`repro.fuzz.runner` — executes a plan against the real server
  stack with crash-point injection, collecting a transcript;
* :mod:`repro.fuzz.oracles` — the invariants every run must satisfy;
* :mod:`repro.fuzz.shrink` — delta-debugging to a minimal reproducer;
* :mod:`repro.fuzz.corpus` — seed ranges, reproducer files, exit
  codes (``repro fuzz`` / ``repro fuzz replay``).
"""

from .corpus import (
    EXIT_CLEAN,
    EXIT_HARNESS_ERROR,
    EXIT_VIOLATION,
    CorpusResult,
    load_reproducer,
    replay_file,
    run_corpus,
    run_seed,
    save_reproducer,
)
from .loop import FuzzDeadlockError, VirtualClockLoop, run_virtual
from .oracles import OracleResult, run_oracles
from .plan import ClientPlan, FuzzPlan, PlannedTxn, generate_plan
from .runner import Evidence, RunResult, execute_plan, fuzz_database
from .shrink import shrink_plan

__all__ = [
    "ClientPlan",
    "CorpusResult",
    "EXIT_CLEAN",
    "EXIT_HARNESS_ERROR",
    "EXIT_VIOLATION",
    "Evidence",
    "FuzzDeadlockError",
    "FuzzPlan",
    "OracleResult",
    "PlannedTxn",
    "RunResult",
    "VirtualClockLoop",
    "execute_plan",
    "fuzz_database",
    "generate_plan",
    "load_reproducer",
    "replay_file",
    "run_corpus",
    "run_oracles",
    "run_seed",
    "run_virtual",
    "save_reproducer",
    "shrink_plan",
]
