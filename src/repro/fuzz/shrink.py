"""Greedy delta-debugging over fuzz plans.

A failing plan is minimized by structural deletion only — drop a
client, drop a transaction, drop a single operation, drop a
cooperation edge, drop the fault schedule — re-running the plan after
each candidate deletion and keeping it when the *failure signature*
(the set of failed oracle names) still reproduces.  Because plans are
explicit scripts (see :mod:`repro.fuzz.plan`), deletion is well
defined and the reduced plan replays the same way every time.

The loop is the classic greedy fixpoint: apply every candidate
deletion once per pass, restart the pass whenever one sticks, stop
when a full pass sticks nothing (or the run budget is spent).  The
result is 1-minimal with respect to the deletion operators — removing
any single remaining element loses the failure.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .plan import FuzzPlan


def _copy(plan: FuzzPlan) -> FuzzPlan:
    return FuzzPlan.from_dict(plan.to_dict())


def _candidates(plan: FuzzPlan) -> Iterator[tuple[str, FuzzPlan]]:
    """Yield (description, reduced-plan) candidates, boldest first."""
    if plan.crash_point is not None:
        candidate = _copy(plan)
        candidate.crash_point = None
        yield ("drop crash injection", candidate)
    for index in reversed(range(len(plan.clients))):
        if len(plan.clients) <= 1:
            break
        candidate = _copy(plan)
        del candidate.clients[index]
        yield (f"drop client {plan.clients[index].client_id}", candidate)
    for index, client in enumerate(plan.clients):
        if client.disconnect_after is not None:
            candidate = _copy(plan)
            candidate.clients[index].disconnect_after = None
            yield (
                f"drop disconnect of client {client.client_id}",
                candidate,
            )
    for ci, client in enumerate(plan.clients):
        for ti in reversed(range(len(client.txns))):
            if len(client.txns) <= 1 and len(plan.clients) <= 1:
                continue
            candidate = _copy(plan)
            del candidate.clients[ci].txns[ti]
            if not candidate.clients[ci].txns:
                del candidate.clients[ci]
                if not candidate.clients:
                    continue
            yield (f"drop txn {client.txns[ti].label}", candidate)
    for ci, client in enumerate(plan.clients):
        for ti, txn in enumerate(client.txns):
            for oi in reversed(range(len(txn.ops))):
                candidate = _copy(plan)
                del candidate.clients[ci].txns[ti].ops[oi]
                yield (
                    f"drop op {txn.ops[oi][0]} from {txn.label}",
                    candidate,
                )
    for ci, client in enumerate(plan.clients):
        for ti, txn in enumerate(client.txns):
            for pi in reversed(range(len(txn.predecessors))):
                candidate = _copy(plan)
                del candidate.clients[ci].txns[ti].predecessors[pi]
                yield (
                    f"drop predecessor edge of {txn.label}",
                    candidate,
                )


def shrink_plan(
    plan: FuzzPlan,
    reproduces: Callable[[FuzzPlan], bool],
    *,
    max_runs: int = 300,
) -> tuple[FuzzPlan, int]:
    """Minimize ``plan`` while ``reproduces`` stays true.

    ``reproduces`` must re-run the candidate and decide whether the
    original failure signature is still present.  Returns the reduced
    plan and the number of candidate runs spent.
    """
    current = _copy(plan)
    runs = 0
    progress = True
    while progress and runs < max_runs:
        progress = False
        for _description, candidate in _candidates(current):
            if runs >= max_runs:
                break
            runs += 1
            if reproduces(candidate):
                current = candidate
                progress = True
                break  # restart candidate enumeration on the new plan
    return current, runs
