"""repro — *Formal Model of Correctness Without Serializability*.

A complete, executable reproduction of Korth & Speegle (SIGMOD 1988):
the formal model (versions, nested transactions, pre/postconditions),
the correctness-class lattice of Section 4 with membership testers and
the paper's worked examples, the Section-5 concurrency-control protocol
as a runnable transaction manager, classical baselines, and a
discrete-event simulator for long-duration workloads.

Quickstart::

    from repro.schedules import Schedule
    from repro.classes import classify, figure2_region

    schedule = Schedule.parse("r1(x) w1(x) r2(x) r2(y) w2(y) r1(y) w1(y)")
    membership = classify(schedule, [{"x"}, {"y"}])
    print(membership)                 # MVSR but not SR, PWSR, ...
    print(figure2_region(membership)) # 4

See ``examples/`` for protocol-level walkthroughs and ``benchmarks/``
for the experiment suite (DESIGN.md maps experiments to modules).
"""

from . import (
    analysis,
    baselines,
    classes,
    core,
    protocol,
    sat,
    schedules,
    sim,
    storage,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "__version__",
    "analysis",
    "baselines",
    "classes",
    "core",
    "protocol",
    "sat",
    "schedules",
    "sim",
    "storage",
]
