"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``classify`` — classify a schedule into the Section-4 classes;
* ``examples`` — verify the paper's worked examples;
* ``census`` — the Figure-2 census (exhaustive or random);
* ``admission`` — the admitted-interleavings ladder (D1);
* ``showdown`` — the P1 scheduler comparison on a CAD workload;
* ``trace`` — record or replay a transaction-lifecycle trace (JSONL);
* ``dot`` — export a schedule's precedence graphs as Graphviz DOT;
* ``serve`` — run the Section-5 manager as a JSON-lines TCP service
  (``--wal-dir`` makes it durable: WAL + checkpoints + recovery;
  ``--metrics-port`` adds a Prometheus-scrapeable HTTP endpoint;
  ``--trace-out``/``--slow-ms`` turn on live span streaming;
  ``--repl-port`` accepts followers, ``--follow-of`` runs as one);
* ``top`` — a refreshing dashboard over a running server's ``stats``;
* ``promote`` — fail over: elect and promote the highest-applied
  follower through the ``recover --verify`` gate;
* ``recover`` — run verified crash recovery over a WAL directory;
* ``loadgen`` — replay a workload against a running server and write
  ``BENCH_server.json``;
* ``fuzz`` — run the deterministic concurrency fuzzer over a seed
  range (``repro fuzz replay FILE`` re-executes a saved reproducer).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence


def _version() -> str:
    """The installed distribution's version, or the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from . import __version__

        return __version__


def _positive_int(text: str) -> int:
    """argparse type for options that must be an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not an integer"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_objects(text: str | None, schedule) -> list[set[str]]:
    """Parse ``"x,y;z"`` into conjunct objects; default = one conjunct."""
    if not text:
        return [set(schedule.entities)]
    groups = []
    for chunk in text.split(";"):
        names = {name.strip() for name in chunk.split(",") if name.strip()}
        if names:
            groups.append(names)
    return groups or [set(schedule.entities)]


def _cmd_classify(args: argparse.Namespace) -> int:
    from .analysis import text_table
    from .classes import REGION_LABELS, classify, figure2_region
    from .schedules import Schedule

    schedule = Schedule.parse(args.schedule)
    objects = _parse_objects(args.objects, schedule)
    membership = classify(schedule, objects)
    region = figure2_region(membership)
    print(f"schedule:  {schedule}")
    print(f"objects:   {[sorted(group) for group in objects]}")
    rows = [
        {"class": name, "member": "yes" if member else "no"}
        for name, member in membership.as_dict().items()
    ]
    print(text_table(rows))
    print(f"Figure-2 region: {region} ({REGION_LABELS[region]})")
    return 0


def _cmd_examples(args: argparse.Namespace) -> int:
    from .analysis import text_table
    from .classes import ALL_EXAMPLES

    rows = []
    failures = 0
    for example in ALL_EXAMPLES:
        bad = example.check()
        failures += len(bad)
        rows.append(
            {
                "example": example.name,
                "region": example.region(),
                "status": "OK" if not bad else "; ".join(bad),
            }
        )
    print(text_table(rows))
    return 1 if failures else 0


def _cmd_census(args: argparse.Namespace) -> int:
    from .analysis import (
        census_of_programs,
        census_of_random_schedules,
        example1_programs,
        region_report,
    )

    if args.random:
        result = census_of_random_schedules(
            args.random,
            num_transactions=args.transactions,
            ops_per_transaction=args.ops,
            entities=("x", "y"),
            objects=[{"x"}, {"y"}],
            seed=args.seed,
            exact=args.exact,
        )
        print(
            f"random census: {result.total} schedules "
            f"({args.transactions} txns x {args.ops} ops)"
        )
    else:
        result = census_of_programs(
            example1_programs(),
            [{"x"}, {"y"}],
            limit=args.limit,
            exact=args.exact,
            jobs=args.jobs,
        )
        mode = "exact" if args.exact else "fast"
        workers = f", {args.jobs} jobs" if args.jobs > 1 else ""
        print(
            f"exhaustive census of Example 1's programs "
            f"({mode} classifier{workers})"
        )
    print(region_report(result.by_region))
    print(f"containment violations: {result.containment_failures}")
    if not args.random:
        print(
            f"classification cache hits: {result.cache_hits}"
            f"/{result.total}"
        )
    print("strict gains:")
    for label, gain in result.strict_gains().items():
        print(f"  {label:14s} {gain}")
    return 1 if result.containment_failures else 0


def _cmd_admission(args: argparse.Namespace) -> int:
    from .analysis import admission_report, example1_programs, text_table

    result = admission_report(example1_programs(), [{"x"}, {"y"}])
    print(
        f"admitted interleavings per criterion "
        f"({result.total} interleavings of Example 1's programs)"
    )
    print(text_table(result.rows()))
    return 0


def _cmd_showdown(args: argparse.Namespace) -> int:
    from .sim import cad_workload, compare_schedulers, metrics_table

    workload = cad_workload(
        num_designers=args.designers,
        think_time=args.think,
        seed=args.seed,
    )
    print(f"workload: {workload.name}")
    print(metrics_table(compare_schedulers(workload, seed=args.seed)))
    if args.trace:
        from .obs import RecordingTracer, write_jsonl
        from .sim import DEFAULT_SCHEDULERS, run_one

        tracer = RecordingTracer()
        run_one(
            DEFAULT_SCHEDULERS["korth-speegle"],
            workload,
            seed=args.seed,
            tracer=tracer,
        )
        count = write_jsonl(list(tracer.spans), args.trace)
        print(f"trace: {count} spans (korth-speegle) -> {args.trace}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        RecordingTracer,
        filter_spans,
        load_jsonl,
        render_timeline,
        timeline_stats,
        write_jsonl,
    )

    if args.record:
        from .sim import DEFAULT_SCHEDULERS, cad_workload, run_one

        factory = DEFAULT_SCHEDULERS.get(args.scheduler)
        if factory is None:
            known = ", ".join(sorted(DEFAULT_SCHEDULERS))
            print(
                f"error: unknown scheduler {args.scheduler!r} "
                f"(choose from: {known})",
                file=sys.stderr,
            )
            return 2
        workload = cad_workload(
            num_designers=args.designers,
            think_time=args.think,
            seed=args.seed,
        )
        tracer = RecordingTracer()
        metrics = run_one(
            factory,
            workload,
            seed=args.seed,
            tracer=tracer,
        )
        count = write_jsonl(list(tracer.spans), args.file)
        print(
            f"recorded {count} spans from {args.scheduler} on "
            f"{workload.name} ({metrics.committed_count} committed, "
            f"{metrics.total_waits} waits) -> {args.file}"
        )
        if not args.timeline:
            return 0

    try:
        spans = load_jsonl(args.file)
    except FileNotFoundError:
        print(f"error: no trace file {args.file!r}", file=sys.stderr)
        return 2
    except (ValueError, KeyError) as error:  # bad JSON / wrong shape
        print(
            f"error: {args.file!r} is not a JSONL trace ({error})",
            file=sys.stderr,
        )
        return 2
    kinds = args.kind.split(",") if args.kind else None
    spans = filter_spans(spans, txn=args.txn, kinds=kinds)
    if not spans:
        print("(no spans match)")
        return 0
    if args.stats:
        print(f"{len(spans)} spans")
        for kind, count in sorted(timeline_stats(spans).items()):
            print(f"  {kind:16s} {count}")
        return 0
    print(render_timeline(spans))
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from .classes.export import (
        conflict_graph_dot,
        cpc_graphs_dot,
        mv_conflict_graph_dot,
    )
    from .schedules import Schedule

    schedule = Schedule.parse(args.schedule)
    if args.graph == "conflict":
        print(conflict_graph_dot(schedule))
    elif args.graph == "mv":
        print(mv_conflict_graph_dot(schedule))
    else:
        objects = _parse_objects(args.objects, schedule)
        print(cpc_graphs_dot(schedule, objects))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import signal

    from .obs import LiveTracer, SpanRing
    from .server import ServerConfig, TransactionServer, build_workload

    workload = build_workload(
        args.workload,
        transactions=args.transactions,
        seed=args.seed,
        key_dist=args.key_dist,
    )
    if args.follow_of and not args.wal_dir:
        print(
            "error: --follow-of requires --wal-dir (the follower "
            "stores its replicated history there)",
            file=sys.stderr,
        )
        return 2
    config = ServerConfig(
        host=args.host,
        port=args.port,
        metrics_port=args.metrics_port,
        queue_size=args.queue_size,
        request_timeout=args.request_timeout,
        session_timeout=args.session_timeout,
        wal_dir=args.wal_dir,
        flush_interval=args.flush_interval,
        checkpoint_every=args.checkpoint_every,
        retain=args.retain,
        strict=args.strict,
        segment_bytes=args.wal_segment_bytes,
        repl_port=args.repl_port,
        sync_replicas=args.sync_replicas,
        follow_of=args.follow_of,
        shards=args.shards,
    )

    # Live tracing: on when any consumer of spans is requested.
    tracer = None
    ring = None
    slow_log = None
    if args.trace_out or args.slow_ms is not None:
        ring = SpanRing(args.trace_ring)
        if args.slow_ms is not None:
            slow_log = open(  # noqa: SIM115 — closed in the finally below
                args.slow_log, "a", encoding="utf-8"
            )

            def _on_slow(root, spans) -> None:
                slow_log.write(
                    json.dumps(
                        {
                            "txn": root.txn,
                            "duration": root.duration,
                            "spans": [span.to_dict() for span in spans],
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
                slow_log.flush()

            tracer = LiveTracer(
                ring,
                slow_threshold=args.slow_ms / 1000.0,
                on_slow=_on_slow,
            )
        else:
            tracer = LiveTracer(ring)

    async def _run() -> None:
        server = TransactionServer(
            workload.fresh_database(), config=config, tracer=tracer
        )
        if server.recovery is not None:
            summary = server.recovery.summary()
            checkpoint_lsn = summary["checkpoint_lsn"]
            last_lsn = summary["last_lsn"]
            replayed = (
                f"lsn {checkpoint_lsn + 1}..{last_lsn} "
                f"({summary['records_replayed']} records)"
                if last_lsn > checkpoint_lsn
                else "nothing (WAL ends at the checkpoint)"
            )
            print(
                "repro serve: recovered "
                f"{args.wal_dir}: checkpoint lsn {checkpoint_lsn}, "
                f"replayed {replayed}, "
                f"undid {len(summary['aborted_in_flight'])} in-flight "
                f"(+{summary['cascaded_aborts']} cascaded aborts, "
                f"{summary['cascaded_commits']} cascaded commits), "
                f"committed={summary['committed']}, "
                f"{summary['recovery_ms']} ms",
                flush=True,
            )
        elif server.shard_recoveries:
            replayed = sum(
                result.records_replayed
                for result in server.shard_recoveries.values()
            )
            committed = sum(
                len(result.committed)
                for result in server.shard_recoveries.values()
            )
            resolved = {
                entry["decision"] for entry in server.shard_resolutions
            }
            in_doubt = (
                f", resolved {len(server.shard_resolutions)} in-doubt "
                f"2PC branch(es) ({', '.join(sorted(resolved))})"
                if server.shard_resolutions
                else ""
            )
            print(
                f"repro serve: recovered {args.wal_dir} across "
                f"{len(server.shard_recoveries)} shards: "
                f"replayed {replayed} records, "
                f"committed={committed}{in_doubt}",
                flush=True,
            )
        elif args.wal_dir and args.follow_of:
            print(
                f"repro serve: follower of {args.follow_of}, "
                f"replicating into {args.wal_dir}",
                flush=True,
            )
        elif args.wal_dir:
            print(
                f"repro serve: fresh start — initialized {args.wal_dir} "
                "(no prior WAL history to recover)",
                flush=True,
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-Unix loop or non-main thread; Ctrl-C still raises
        await server.start()
        durable = f" (wal: {args.wal_dir})" if args.wal_dir else ""
        extras = [durable] if durable else []
        if server.repl_port is not None:
            extras.append(
                f" (repl: {config.host}:{server.repl_port}, "
                f"sync_replicas={config.sync_replicas})"
            )
        if args.follow_of:
            extras.append(f" (follower of {args.follow_of})")
        if server.metrics_port is not None:
            extras.append(
                f" (metrics: http://{config.host}:{server.metrics_port}"
                "/metrics)"
            )
        print(
            f"repro serve: {workload.name} listening on "
            f"{config.host}:{server.port}" + "".join(extras),
            flush=True,
        )

        drain_trace = None
        if args.trace_out and ring is not None:
            subscriber = ring.subscribe()
            trace_file = open(args.trace_out, "a", encoding="utf-8")

            def _drain_spans() -> int:
                spans, _dropped = subscriber.poll()
                for span in spans:
                    trace_file.write(
                        json.dumps(span.to_dict(), sort_keys=True) + "\n"
                    )
                if spans:
                    trace_file.flush()
                return len(spans)

            async def _trace_pump() -> None:
                while True:
                    await asyncio.sleep(0.25)
                    _drain_spans()

            pump = asyncio.create_task(
                _trace_pump(), name="repro-trace-pump"
            )

            def drain_trace() -> None:
                pump.cancel()
                _drain_spans()
                trace_file.close()

        await stop.wait()
        print("repro serve: draining", flush=True)
        summary = await server.shutdown()
        if drain_trace is not None:
            drain_trace()
            print(f"repro serve: trace -> {args.trace_out}", flush=True)
        print(
            "repro serve: drained "
            f"(aborted={len(summary['aborted'])}, "
            f"parked_failed={summary['parked_failed']}, "
            f"notifications_dropped={summary['notifications_dropped']})",
            flush=True,
        )

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    except Exception as error:  # noqa: BLE001 — recovery refusal path
        from .errors import DurabilityError

        if isinstance(error, DurabilityError):
            print(f"error: {error}", file=sys.stderr)
            return 2
        raise
    finally:
        if slow_log is not None:
            slow_log.close()
    return 0


def _cmd_promote(args: argparse.Namespace) -> int:
    from .replication import Promoter, ReplicationError
    from .server.client import Client
    from .server.errors import ServerError

    statuses: list[dict] = []
    for peer in args.peer:
        host, _, port_text = peer.rpartition(":")
        host = host or "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            print(
                f"error: bad peer {peer!r} (expected host:port)",
                file=sys.stderr,
            )
            return 2
        try:
            with Client.connect(host, port, timeout=args.timeout) as client:
                status = client.repl_status()
        except (OSError, ConnectionError) as error:
            print(f"repro promote: {peer} unreachable ({error})")
            continue
        status["peer"] = {"host": host, "port": port}
        print(
            f"repro promote: {peer} role={status.get('role', '?')} "
            f"applied_lsn={status.get('applied_lsn', '-')}"
        )
        statuses.append(status)
    try:
        winner = Promoter.choose(statuses)
    except ReplicationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    peer = winner["peer"]
    address = f"{peer['host']}:{peer['port']}"
    print(
        f"repro promote: electing {address} "
        f"(applied_lsn={winner['applied_lsn']})"
    )
    try:
        with Client.connect(
            peer["host"], peer["port"], timeout=args.timeout
        ) as client:
            report = client.promote(listen_port=args.listen_port)
    except ServerError as error:
        print(
            f"error: promotion failed on {address}: {error}",
            file=sys.stderr,
        )
        return 1
    except (OSError, ConnectionError) as error:
        print(
            f"error: lost {address} during promotion ({error})",
            file=sys.stderr,
        )
        return 1
    recovery = report.get("recovery", {})
    verified = recovery.get("verified")
    print(
        f"repro promote: {address} is primary "
        f"(promote {report.get('promote_ms', '?')} ms, "
        f"recovered committed={recovery.get('committed', '?')}, "
        f"last lsn={recovery.get('last_lsn', '?')}, "
        f"verified={verified})"
    )
    if args.listen_port is not None:
        print(
            f"repro promote: {address} also listening on "
            f"{peer['host']}:{args.listen_port}"
        )
    return 0 if verified else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs import run_top

    return run_top(
        args.host,
        args.port,
        interval=args.interval,
        iterations=args.iterations,
    )


def _cmd_recover(args: argparse.Namespace) -> int:
    import json

    from .durability import is_sharded_layout, recover
    from .errors import DurabilityError
    from .obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    try:
        if is_sharded_layout(args.wal_dir):
            return _recover_sharded_layout(args, registry)
        result = recover(
            args.wal_dir,
            verify=args.verify,
            strict=args.strict,
            registry=registry,
        )
    except DurabilityError as error:
        if args.json:
            print(json.dumps({"ok": False, "error": str(error)}))
        else:
            print(f"error: {error}", file=sys.stderr)
        return 2
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"wal dir:            {args.wal_dir}")
        print(f"checkpoint lsn:     {summary['checkpoint_lsn']}")
        print(f"last lsn:           {summary['last_lsn']}")
        print(f"records replayed:   {summary['records_replayed']}")
        print(f"torn tail:          {summary['torn_tail_truncated']}")
        print(f"committed txns:     {summary['committed']}")
        print(
            f"aborted in flight:  {summary['aborted_in_flight']} "
            f"(cascaded: {summary['cascaded_aborts']})"
        )
        print(f"cascaded commits:   {summary['cascaded_commits']}")
        print(f"recovery time:      {summary['recovery_ms']} ms")
        if args.verify:
            status = "VERIFIED" if result.verified else "FAILED"
            print(f"verification:       {status}")
            for violation in summary["violations"]:
                print(f"  violation: {violation}")
    if args.verify and not result.verified:
        return 1
    return 0


def _recover_sharded_layout(args: argparse.Namespace, registry) -> int:
    """``repro recover`` over a sharded WAL base (``<dir>/shardN``)."""
    import json

    from .durability import recover_sharded

    result = recover_sharded(
        args.wal_dir,
        verify=args.verify,
        strict=args.strict,
        registry=registry,
    )
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"wal dir:            {args.wal_dir} (sharded)")
        print(f"shards:             {len(result.shards)}")
        for index in sorted(result.shards):
            shard = result.shards[index].summary()
            print(
                f"  shard{index}: last lsn {shard['last_lsn']}, "
                f"replayed {shard['records_replayed']}, "
                f"committed={shard['committed']}, "
                f"aborted in flight={len(shard['aborted_in_flight'])}"
            )
        if result.resolutions:
            print("in-doubt 2PC branches resolved:")
            for entry in result.resolutions:
                print(
                    f"  {entry['txn']} (gid {entry['gid']}, "
                    f"shard {entry['shard']}, coordinator "
                    f"{entry['coordinator']}): {entry['decision']}"
                )
        else:
            print("in-doubt 2PC branches: none")
        if args.verify:
            status = "VERIFIED" if result.verified else "FAILED"
            print(f"verification:       {status}")
            for index in sorted(result.shards):
                for violation in result.shards[index].summary()[
                    "violations"
                ]:
                    print(f"  shard{index} violation: {violation}")
    if args.verify and not result.verified:
        return 1
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from .server.loadgen import (
        build_workload,
        report_table,
        run_loadgen,
    )

    workload = build_workload(
        args.workload,
        transactions=args.transactions,
        think=args.think,
        seed=args.seed,
        key_dist=args.key_dist,
    )
    try:
        report = asyncio.run(
            run_loadgen(
                workload,
                clients=args.clients,
                host=args.host,
                port=args.port,
                think_scale=args.think_scale,
                max_restarts=args.max_restarts,
                connect_retries=args.connect_retries,
                seed=args.seed,
            )
        )
    except ConnectionError as error:
        print(
            f"error: cannot reach server at {args.host}:{args.port} "
            f"({error})",
            file=sys.stderr,
        )
        return 2
    except OSError as error:
        print(
            f"error: cannot reach server at {args.host}:{args.port} "
            f"({error})",
            file=sys.stderr,
        )
        return 2
    print(report_table(report))
    if args.output:
        report.write(args.output)
        print(f"bench -> {args.output}")
    if report.protocol_errors:
        print(
            f"error: {report.protocol_errors} wire-protocol errors",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from .fuzz import run_corpus

    result = run_corpus(
        args.seed,
        args.runs,
        out_dir=args.out or None,
        shrink=not args.no_shrink,
        progress=lambda line: print(f"repro fuzz: {line}", flush=True),
    )
    report = result.report()
    print(
        f"repro fuzz: seeds {args.seed}..{args.seed + args.runs - 1}: "
        f"{result.passed}/{args.runs} passed, "
        f"{len(result.failures)} violations, "
        f"{len(result.harness_errors)} harness errors"
    )
    for failure in result.failures:
        where = failure.reproducer or "(not written)"
        print(
            f"repro fuzz: seed {failure.seed} failed "
            f"[{', '.join(failure.failed_oracles)}] — shrunk "
            f"{failure.op_count_before} -> {failure.op_count_after} ops "
            f"in {failure.shrink_runs} runs -> {where}"
        )
    for error in result.harness_errors:
        print(
            f"repro fuzz: seed {error['seed']} harness error:\n"
            f"{error['traceback']}",
            file=sys.stderr,
        )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"repro fuzz: report -> {args.report}")
    return result.exit_code


def _cmd_sim_list(args: argparse.Namespace) -> int:
    from .des import SCENARIOS

    for scenario in SCENARIOS.values():
        print(
            f"{scenario.name:26s} seed={scenario.seed:<3d} "
            f"clients={scenario.clients} followers={scenario.followers} "
            f"workload={scenario.workload}"
        )
        print(f"    {scenario.description}")
    return 0


def _sim_failed_checks(report: dict) -> list[str]:
    return sorted(
        name
        for section in report["epochs"]
        for name, verdict in section["oracles"].items()
        if not verdict["ok"]
    ) + sorted(
        name
        for name, verdict in report["invariants"].items()
        if not verdict["ok"]
    )


def _cmd_sim_run(args: argparse.Namespace) -> int:
    import json

    from .des import get_scenario, run_scenario

    try:
        scenario = get_scenario(args.scenario)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.seed is not None:
        scenario = scenario.with_overrides(seed=args.seed)
    report = run_scenario(scenario)
    metrics = report["metrics"]
    print(
        f"repro sim: {scenario.name} seed={scenario.seed} "
        f"digest={report['scenario_digest']}"
    )
    print(
        f"repro sim: epochs={len(report['epochs'])} "
        f"acked={metrics['commits_acked']} "
        f"abort_rate={metrics['abort_rate']:.3f} "
        f"throughput={metrics['throughput_commits_per_s']:.2f}/s "
        f"lag_lsn_p95={metrics['lag_lsn_p95']:g}"
    )
    if report["promotion"]:
        print(
            f"repro sim: promotion -> {report['promotion']['winner']} "
            f"(applied_lsn={report['promotion']['promoted_from_lsn']})"
        )
    failed = _sim_failed_checks(report)
    if report["deadlock"]:
        print(f"repro sim: DEADLOCK: {report['deadlock']}")
    for name in failed:
        print(f"repro sim: FAILED check: {name}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"repro sim: report -> {args.report}")
    print(f"repro sim: {'ok' if report['ok'] else 'FAILED'}")
    return 0 if report["ok"] else 1


def _floats_arg(text: str) -> list[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _ints_arg(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _cmd_sim_sweep(args: argparse.Namespace) -> int:
    import json

    from .des import get_scenario, run_sweep

    try:
        base = get_scenario(args.scenario)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.seed is not None:
        base = base.with_overrides(seed=args.seed)
    doc = run_sweep(
        base,
        nodes=args.nodes,
        partition_rates=args.partition_rates,
        workloads=(
            [w for w in args.workloads.split(",") if w.strip()]
            if args.workloads
            else None
        ),
        latencies=args.latencies,
    )
    for cell in doc["cells"]:
        status = "ok" if cell["ok"] else "FAILED"
        print(
            f"repro sim sweep: {cell['scenario']:40s} {status} "
            f"thr={cell['metrics']['throughput_commits_per_s']:8.2f}/s "
            f"abort={cell['metrics']['abort_rate']:.3f} "
            f"lag_p95={cell['metrics']['lag_lsn_p95']:g}"
        )
        for name in cell["failed_checks"]:
            print(f"repro sim sweep:   FAILED check: {name}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"repro sim sweep: wrote {args.output}")
    print(
        f"repro sim sweep: {len(doc['cells'])} cells, "
        f"{'ok' if doc['ok'] else 'FAILED'}"
    )
    return 0 if doc["ok"] else 1


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    import json

    from .fuzz import EXIT_HARNESS_ERROR, load_reproducer, replay_file

    try:
        _, expected = load_reproducer(args.file)
        result, matches = replay_file(args.file)
    except FileNotFoundError:
        print(f"error: no reproducer {args.file!r}", file=sys.stderr)
        return EXIT_HARNESS_ERROR
    except (ValueError, KeyError) as error:
        print(
            f"error: {args.file!r} is not a reproducer ({error})",
            file=sys.stderr,
        )
        return EXIT_HARNESS_ERROR
    print(
        f"repro fuzz replay: seed {result.plan.seed}, "
        f"{result.plan.op_count} ops, expected failure "
        f"[{', '.join(expected) or 'none'}]"
    )
    for name, verdict in result.report["oracles"].items():
        status = "ok" if verdict["ok"] else "FAILED"
        print(f"  {name:20s} {status}")
        for detail in verdict["details"]:
            print(f"      {detail}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(result.report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"repro fuzz replay: report -> {args.report}")
    if matches and expected:
        print("repro fuzz replay: failure reproduced")
        return 0
    if not expected:
        return 0 if result.ok else 1
    print(
        "repro fuzz replay: failure did NOT reproduce "
        f"(got [{', '.join(result.failed_oracles) or 'clean run'}])"
    )
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Korth & Speegle (SIGMOD 1988), 'Formal Model of "
            "Correctness Without Serializability' — reproduction tools"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    classify = sub.add_parser(
        "classify", help="classify a schedule into the Section-4 classes"
    )
    classify.add_argument(
        "schedule", help='e.g. "r1(x) w1(x) r2(x) r2(y) w2(y)"'
    )
    classify.add_argument(
        "--objects",
        help='conjunct objects, e.g. "x;y" or "x,y;z" (default: one conjunct)',
    )
    classify.set_defaults(func=_cmd_classify)

    examples = sub.add_parser(
        "examples", help="verify the paper's worked examples"
    )
    examples.set_defaults(func=_cmd_examples)

    census = sub.add_parser("census", help="the Figure-2 census")
    census.add_argument(
        "--random", type=int, default=0,
        help="classify N random schedules instead of the exhaustive census",
    )
    census.add_argument("--transactions", type=int, default=3)
    census.add_argument("--ops", type=int, default=3)
    census.add_argument("--seed", type=int, default=0)
    census.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="stripe the exhaustive census over N worker processes "
        "(must be >= 1)",
    )
    census.add_argument(
        "--limit", type=int, default=None,
        help="cap the number of interleavings examined",
    )
    census.add_argument(
        "--exact", action="store_true",
        help="run every class tester on every schedule "
        "(disable the staged fast path)",
    )
    census.set_defaults(func=_cmd_census)

    admission = sub.add_parser(
        "admission", help="the admitted-interleavings ladder (D1)"
    )
    admission.set_defaults(func=_cmd_admission)

    showdown = sub.add_parser(
        "showdown", help="the P1 scheduler comparison"
    )
    showdown.add_argument("--designers", type=int, default=6)
    showdown.add_argument("--think", type=float, default=100.0)
    showdown.add_argument("--seed", type=int, default=3)
    showdown.add_argument(
        "--trace",
        metavar="FILE",
        help="also record the korth-speegle run's trace to FILE (JSONL)",
    )
    showdown.set_defaults(func=_cmd_showdown)

    trace = sub.add_parser(
        "trace",
        help="record or replay a transaction-lifecycle trace (JSONL)",
    )
    trace.add_argument("file", help="JSONL trace file to replay (or write)")
    trace.add_argument(
        "--record",
        action="store_true",
        help="run a CAD workload and write its trace to FILE first",
    )
    trace.add_argument(
        "--scheduler",
        default="korth-speegle",
        help="scheduler to record (default: korth-speegle)",
    )
    trace.add_argument("--designers", type=int, default=6)
    trace.add_argument("--think", type=float, default=100.0)
    trace.add_argument("--seed", type=int, default=3)
    trace.add_argument(
        "--timeline",
        action="store_true",
        help="with --record: also print the timeline after recording",
    )
    trace.add_argument("--txn", help="only spans of this transaction")
    trace.add_argument(
        "--kind", help='only these span kinds, e.g. "wait,validate"'
    )
    trace.add_argument(
        "--stats",
        action="store_true",
        help="print span counts by kind instead of the timeline",
    )
    trace.set_defaults(func=_cmd_trace)

    dot = sub.add_parser(
        "dot", help="export precedence graphs as Graphviz DOT"
    )
    dot.add_argument("schedule")
    dot.add_argument(
        "--graph",
        choices=("conflict", "mv", "cpc"),
        default="conflict",
    )
    dot.add_argument("--objects")
    dot.set_defaults(func=_cmd_dot)

    serve = sub.add_parser(
        "serve",
        help="run the Section-5 manager as a JSON-lines TCP service",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7455,
        help="TCP port (0 = ephemeral; default 7455)",
    )
    serve.add_argument(
        "--workload", choices=("cad", "oltp"), default="cad",
        help="workload whose database schema to serve "
        "(must match the loadgen's)",
    )
    serve.add_argument("--transactions", type=_positive_int, default=16)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--key-dist", choices=("uniform", "zipf"), default="uniform",
        help="entity-access distribution of the workload schema/scripts "
        "(must match the loadgen's)",
    )
    serve.add_argument(
        "--shards", type=_positive_int, default=1,
        help="partition the entity space across this many single-"
        "threaded shards (cross-shard transactions use 2PC; with "
        "--wal-dir each shard logs under <dir>/shardN; default 1)",
    )
    serve.add_argument(
        "--queue-size", type=_positive_int, default=256,
        help="command-queue bound; overflow answers BUSY",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=5.0,
        help="seconds a request may stay queued or parked",
    )
    serve.add_argument(
        "--session-timeout", type=float, default=300.0,
        help="idle seconds before a connection is closed",
    )
    serve.add_argument(
        "--wal-dir", default=None,
        help="durability: WAL + checkpoint directory (recovered on "
        "start; omit for a purely in-memory server)",
    )
    serve.add_argument(
        "--flush-interval", type=float, default=0.005,
        help="group-commit fsync window in seconds "
        "(<= 0 = fsync every commit; default 0.005)",
    )
    serve.add_argument(
        "--checkpoint-every", type=_positive_int, default=512,
        help="WAL records between checkpoints (default 512)",
    )
    serve.add_argument(
        "--retain", type=_positive_int, default=3,
        help="checkpoints to retain (default 3)",
    )
    serve.add_argument(
        "--strict", action="store_true",
        help="run the manager in strict mode (ST histories; reads and "
        "writes block on uncommitted versions)",
    )
    serve.add_argument(
        "--wal-segment-bytes", type=int, default=0,
        help="roll the WAL to a fresh segment once the active one "
        "exceeds this many bytes (0 = roll only at checkpoints)",
    )
    serve.add_argument(
        "--repl-port", type=int, default=None,
        help="replication: accept follower connections on this port "
        "(0 = ephemeral; requires --wal-dir)",
    )
    serve.add_argument(
        "--sync-replicas", type=int, default=0,
        help="replication: withhold commit replies until this many "
        "followers have fsynced the commit (default 0 = async)",
    )
    serve.add_argument(
        "--follow-of", default=None, metavar="HOST:PORT",
        help="run as a follower of the primary's replication listener "
        "at HOST:PORT (requires --wal-dir; mutating ops redirect)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="also serve /metrics (Prometheus text), /stats and "
        "/healthz over HTTP on this port (0 = ephemeral; omit to "
        "disable)",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="live tracing: stream completed spans to FILE (JSONL, "
        "replayable with 'repro trace')",
    )
    serve.add_argument(
        "--trace-ring", type=_positive_int, default=4096,
        help="span ring-buffer capacity for --trace-out (default 4096)",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=None,
        help="live tracing: dump the span tree of any transaction "
        "slower than this many milliseconds to --slow-log",
    )
    serve.add_argument(
        "--slow-log", default="slow-txns.jsonl", metavar="FILE",
        help="slow-transaction log path (default slow-txns.jsonl)",
    )
    serve.set_defaults(func=_cmd_serve)

    top = sub.add_parser(
        "top",
        help="live dashboard over a running server's stats command",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7455)
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between polls (default 1.0)",
    )
    top.add_argument(
        "--iterations", type=_positive_int, default=None,
        help="stop after N frames (default: run until interrupted)",
    )
    top.set_defaults(func=_cmd_top)

    promote = sub.add_parser(
        "promote",
        help="fail over: elect the highest-applied follower among "
        "--peer nodes and promote it (exit 0 = promoted + verified)",
    )
    promote.add_argument(
        "--peer", action="append", required=True, metavar="HOST:PORT",
        help="a candidate node's client address (repeatable)",
    )
    promote.add_argument(
        "--listen-port", type=int, default=None,
        help="have the promoted node also bind this client port "
        "(the dead primary's)",
    )
    promote.add_argument(
        "--timeout", type=float, default=10.0,
        help="per-peer connect/request timeout in seconds",
    )
    promote.set_defaults(func=_cmd_promote)

    recover = sub.add_parser(
        "recover",
        help="run verified crash recovery over a WAL directory",
    )
    recover.add_argument(
        "--wal-dir", required=True,
        help="the WAL + checkpoint directory to recover",
    )
    recover.add_argument(
        "--verify", action=argparse.BooleanOptionalAction, default=True,
        help="verify the recovered state (committed-prefix equality + "
        "consistency predicate); exit 1 on failure",
    )
    recover.add_argument(
        "--strict", action="store_true",
        help="materialize the recovered manager in strict mode",
    )
    recover.add_argument(
        "--json", action="store_true",
        help="print the recovery summary as JSON",
    )
    recover.set_defaults(func=_cmd_recover)

    loadgen = sub.add_parser(
        "loadgen",
        help="replay a workload against a running server",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7455)
    loadgen.add_argument(
        "--clients", type=_positive_int, default=8,
        help="number of concurrent connections",
    )
    loadgen.add_argument(
        "--workload", choices=("cad", "oltp"), default="cad",
        help="workload to replay (must match the server's)",
    )
    loadgen.add_argument("--transactions", type=_positive_int, default=16)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--key-dist", choices=("uniform", "zipf"), default="uniform",
        help="entity-access distribution (uniform keeps the historical "
        "stream; zipf skews contention onto hot entities; must match "
        "the server's)",
    )
    loadgen.add_argument(
        "--think", type=float, default=0.0,
        help="scripted think time in virtual units (see --think-scale)",
    )
    loadgen.add_argument(
        "--think-scale", type=float, default=0.0,
        help="wall seconds per virtual think unit (0 = no sleeping)",
    )
    loadgen.add_argument(
        "--max-restarts", type=_positive_int, default=8,
        help="restart attempts per script before giving up",
    )
    loadgen.add_argument(
        "--connect-retries", type=int, default=25,
        help="connection attempts while waiting for the server",
    )
    loadgen.add_argument(
        "--output", default="BENCH_server.json",
        help="bench JSON path ('' = don't write)",
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    fuzz = sub.add_parser(
        "fuzz",
        help="run the deterministic concurrency fuzzer "
        "(exit 0 = clean, 1 = invariant violation, 2 = harness error)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=1,
        help="first seed of the corpus range (default 1)",
    )
    fuzz.add_argument(
        "--runs", type=_positive_int, default=200,
        help="number of consecutive seeds to run (default 200)",
    )
    fuzz.add_argument(
        "--out", default="fuzz-failures",
        help="directory for minimized reproducer JSON files "
        "('' = don't write)",
    )
    fuzz.add_argument(
        "--report", default=None,
        help="also write the corpus report as JSON to this path",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="save failing plans as-is instead of delta-debugging them",
    )
    fuzz.set_defaults(func=_cmd_fuzz)
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command")
    fuzz_replay = fuzz_sub.add_parser(
        "replay",
        help="re-execute a saved reproducer bit-for-bit "
        "(exit 0 = expected failure reproduced)",
    )
    fuzz_replay.add_argument("file", help="reproducer JSON file")
    fuzz_replay.add_argument(
        "--report", default=None,
        help="write the replayed run's full report as JSON to this path",
    )
    fuzz_replay.set_defaults(func=_cmd_fuzz_replay)

    sim = sub.add_parser(
        "sim",
        help="multi-node discrete-event cluster simulator "
        "(exit 0 = all checks pass, 1 = violation, 2 = usage error)",
    )
    sim_sub = sim.add_subparsers(dest="sim_command", required=True)
    sim_list = sim_sub.add_parser(
        "list", help="list the shipped adversarial scenarios"
    )
    sim_list.set_defaults(func=_cmd_sim_list)
    sim_run = sim_sub.add_parser(
        "run", help="run one scenario and validate it against the oracles"
    )
    sim_run.add_argument(
        "--scenario", required=True,
        help="scenario name (see 'repro sim list')",
    )
    sim_run.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's seed",
    )
    sim_run.add_argument(
        "--report", default=None,
        help="write the full run report as JSON to this path",
    )
    sim_run.set_defaults(func=_cmd_sim_run)
    sim_sweep = sim_sub.add_parser(
        "sweep",
        help="grid a scenario over cluster size / partition rate / "
        "workload / latency and write BENCH_sim.json",
    )
    sim_sweep.add_argument(
        "--scenario", default="hot_key_storm",
        help="base scenario for the grid (default hot_key_storm)",
    )
    sim_sweep.add_argument(
        "--seed", type=int, default=None,
        help="override the base scenario's seed",
    )
    sim_sweep.add_argument(
        "--nodes", type=_ints_arg, default=None,
        help="comma-separated total node counts (default 3,6)",
    )
    sim_sweep.add_argument(
        "--partition-rates", type=_floats_arg, default=None,
        help="comma-separated partition rates (default 0,0.3)",
    )
    sim_sweep.add_argument(
        "--workloads", default=None,
        help="comma-separated workload kinds (default: base scenario's)",
    )
    sim_sweep.add_argument(
        "--latencies", type=_floats_arg, default=None,
        help="comma-separated link latencies in virtual seconds",
    )
    sim_sweep.add_argument(
        "--output", default="BENCH_sim.json",
        help="bench JSON path ('' = don't write)",
    )
    sim_sweep.set_defaults(func=_cmd_sim_sweep)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
