"""Span-based transaction-lifecycle tracing.

The paper's motivation (Section 2.4) is quantitative — "reduce the
number and duration of waits, reduce the number and effect of aborts" —
but aggregates alone cannot say *why* a transaction waited, restarted,
or failed validation.  The tracer records the lifecycle as **spans**
(intervals: validate, wait, read, write, commit) and **events**
(points: arrive, define, re-eval, lock.block) with causal parent
links, so a run can be replayed offline as a per-transaction timeline
(:mod:`repro.obs.export`).

Design constraints:

* **Zero-cost when off.**  The base :class:`Tracer` is a no-op and is
  the default everywhere; instrumented hot paths guard attribute
  construction behind ``tracer.enabled`` so the disabled cost is one
  attribute load and a branch.
* **Clock-agnostic.**  The protocol layer has no clock, the simulator
  runs in virtual time.  A :class:`RecordingTracer` defaults to a
  monotonic tick counter and accepts any ``clock()`` callable (the
  simulation engine installs ``lambda: queue.now``).
* **Two name spaces, one timeline.**  The simulator names transactions
  by engine id (``T1``, ``T1#2``); the protocol by hierarchical name
  (``t.0.5``).  :meth:`Tracer.alias` maps protocol names onto engine
  ids at record time so one transaction's spans land in one group.

Span taxonomy (see ``docs/observability.md``):

========  ======  ==================================================
kind      form    meaning
========  ======  ==================================================
txn       span    one attempt at a transaction, begin → outcome
arrive    event   the attempt entered the system
define    event   protocol registration (parent, update set)
validate  span    R_v locks + D-sets + version selection
wait      span    parked on a blocked request, entity attached
read      span    one read request (version, value)
write     span    write-begin → write-end (the short W-lock window)
commit    span    commit-rule checks + release
abort     event   abort, with reason and cascade cause
restart   event   the simulator restarted the transaction
give-up   event   restart budget exhausted
reeval    event   Figure-4 re-evaluation decision
reassign  event   Figure-4 re-assignment to a new version
lock.*    event   lock block / grant transitions, queue depth
predicate.eval  event  a predicate evaluated against a state
========  ======  ==================================================
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(slots=True)
class Span:
    """One recorded interval (or point event, when ``end == start``).

    ``parent_id`` is the causal link: the enclosing open span of the
    same transaction at start time, unless overridden.
    """

    span_id: int
    kind: str
    txn: str
    start: float
    end: float | None = None
    parent_id: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def is_event(self) -> bool:
        return self.end == self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (see :mod:`repro.obs.export`)."""
        return {
            "span_id": self.span_id,
            "kind": self.kind,
            "txn": self.txn,
            "start": self.start,
            "end": self.end,
            "parent_id": self.parent_id,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            span_id=int(data["span_id"]),
            kind=str(data["kind"]),
            txn=str(data["txn"]),
            start=float(data["start"]),
            end=None if data.get("end") is None else float(data["end"]),
            parent_id=(
                None
                if data.get("parent_id") is None
                else int(data["parent_id"])
            ),
            attrs=dict(data.get("attrs", {})),
        )


class Tracer:
    """The no-op tracer — the default on every instrumented path.

    Every hook is a ``pass``/``return None``; hot paths additionally
    check :attr:`enabled` before building attribute dictionaries, so a
    disabled tracer costs one branch per instrumentation point.
    """

    enabled: bool = False

    def start(
        self,
        kind: str,
        txn: str,
        parent: "Span | int | None" = None,
        **attrs: Any,
    ) -> Span | None:
        """Open a span; returns ``None`` when disabled."""
        return None

    def end(self, span: Span | None, **attrs: Any) -> None:
        """Close a span previously returned by :meth:`start`."""

    def event(
        self,
        kind: str,
        txn: str,
        parent: "Span | int | None" = None,
        **attrs: Any,
    ) -> Span | None:
        """Record a point event."""
        return None

    @contextmanager
    def span(self, kind: str, txn: str, **attrs: Any) -> Iterator[Span | None]:
        handle = self.start(kind, txn, **attrs)
        try:
            yield handle
        finally:
            self.end(handle)

    def alias(self, name: str, canonical: str) -> None:
        """Record that ``name`` denotes the same transaction as
        ``canonical`` (protocol name → engine id)."""

    def record(
        self,
        kind: str,
        txn: str,
        start: float,
        end: float,
        parent: "Span | int | None" = None,
        **attrs: Any,
    ) -> Span | None:
        """Record an already-measured interval with explicit timestamps.

        Used by layers whose work completes *after* the causal parent
        closed — most importantly the WAL's group-commit fsync, which
        covers records appended during requests already answered.
        """
        return None

    def current_span_id(self, txn: str) -> int | None:
        """The innermost open span of ``txn`` (``None`` when disabled).

        Lets a lower layer capture a causal parent now for a span it
        will only :meth:`record` later (the group-commit pattern).
        """
        return None

    def reparent(self, span: Span | None, parent: Span | None) -> None:
        """Re-home ``span`` under ``parent`` after the fact.

        The server uses this for ``define``: the request span opens
        before the transaction (and its lifetime root span) exists, and
        is folded under the root once ``define`` returns the name.
        """

    def set_clock(self, clock: Callable[[], float] | None) -> None:
        """Install a timestamp source (no-op when disabled)."""


NULL_TRACER = Tracer()
"""The shared disabled tracer instance."""


class RecordingTracer(Tracer):
    """A tracer that keeps every span in memory.

    Timestamps come from ``clock`` when given (the simulator's virtual
    ``now``), else from a monotonic tick counter — pure-protocol
    sessions still get a total order and span durations in "ticks".
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        self._ticks = itertools.count()
        self._clock = clock
        self._aliases: dict[str, str] = {}
        self._open: dict[str, list[Span]] = {}
        self._by_txn: dict[str, list[Span]] = {}

    # -- configuration -------------------------------------------------------

    def set_clock(self, clock: Callable[[], float] | None) -> None:
        self._clock = clock

    def alias(self, name: str, canonical: str) -> None:
        if name == canonical:
            return
        self._aliases[name] = canonical
        canonical = self._resolve(canonical)
        # Re-home spans recorded before the alias was known (e.g. the
        # protocol's `define` event fires before the adapter learns
        # the protocol name).
        moved = self._by_txn.pop(name, None)
        if moved:
            for span in moved:
                span.txn = canonical
            self._by_txn.setdefault(canonical, []).extend(moved)
        open_stack = self._open.pop(name, None)
        if open_stack:
            self._open.setdefault(canonical, []).extend(open_stack)

    # -- recording -----------------------------------------------------------

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return float(next(self._ticks))

    def _resolve(self, txn: str) -> str:
        seen = set()
        while txn in self._aliases and txn not in seen:
            seen.add(txn)
            txn = self._aliases[txn]
        return txn

    def _parent_id(
        self, txn: str, parent: Span | int | None
    ) -> int | None:
        if isinstance(parent, Span):
            return parent.span_id
        if parent is not None:
            return int(parent)
        stack = self._open.get(txn)
        return stack[-1].span_id if stack else None

    def start(
        self,
        kind: str,
        txn: str,
        parent: Span | int | None = None,
        **attrs: Any,
    ) -> Span:
        txn = self._resolve(txn)
        span = Span(
            span_id=next(self._ids),
            kind=kind,
            txn=txn,
            start=self._now(),
            parent_id=self._parent_id(txn, parent),
            attrs=attrs,  # **attrs is already a fresh dict we own
        )
        self._spans.append(span)
        self._by_txn.setdefault(txn, []).append(span)
        self._open.setdefault(txn, []).append(span)
        return span

    def end(self, span: Span | None, **attrs: Any) -> None:
        if span is None or span.end is not None:
            return
        span.end = self._now()
        span.attrs.update(attrs)
        stack = self._open.get(span.txn)
        if stack and span in stack:
            stack.remove(span)

    def event(
        self,
        kind: str,
        txn: str,
        parent: Span | int | None = None,
        **attrs: Any,
    ) -> Span:
        txn = self._resolve(txn)
        now = self._now()
        span = Span(
            span_id=next(self._ids),
            kind=kind,
            txn=txn,
            start=now,
            end=now,
            parent_id=self._parent_id(txn, parent),
            attrs=attrs,  # **attrs is already a fresh dict we own
        )
        self._spans.append(span)
        self._by_txn.setdefault(txn, []).append(span)
        return span

    def record(
        self,
        kind: str,
        txn: str,
        start: float,
        end: float,
        parent: Span | int | None = None,
        **attrs: Any,
    ) -> Span:
        txn = self._resolve(txn)
        span = Span(
            span_id=next(self._ids),
            kind=kind,
            txn=txn,
            start=start,
            end=end,
            parent_id=self._parent_id(txn, parent),
            attrs=attrs,  # **attrs is already a fresh dict we own
        )
        self._spans.append(span)
        self._by_txn.setdefault(txn, []).append(span)
        return span

    def current_span_id(self, txn: str) -> int | None:
        stack = self._open.get(self._resolve(txn))
        return stack[-1].span_id if stack else None

    def reparent(self, span: Span | None, parent: Span | None) -> None:
        if span is not None:
            span.parent_id = None if parent is None else parent.span_id

    # -- queries -------------------------------------------------------------

    @property
    def spans(self) -> tuple[Span, ...]:
        return tuple(self._spans)

    def spans_for(self, txn: str) -> list[Span]:
        return list(self._by_txn.get(self._resolve(txn), ()))

    def of_kind(self, kind: str) -> list[Span]:
        return [span for span in self._spans if span.kind == kind]

    def kinds(self) -> set[str]:
        return {span.kind for span in self._spans}

    def __len__(self) -> int:
        return len(self._spans)
