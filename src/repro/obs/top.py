"""``repro top`` — a refreshing terminal dashboard for a live server.

Polls the ``stats`` protocol command of a running ``repro serve``
instance and redraws an ANSI dashboard: throughput and abort/BUSY
rates (derived from counter deltas between polls), queue and park
depth, per-phase latency percentiles straight from the registry
histograms, and the slowest in-flight work (the open-span list the
server returns when it runs with a live tracer).

Rendering is a pure function (:func:`render_top`) over two stats
snapshots, so tests drive it without a terminal; :func:`run_top` owns
the poll-sleep-redraw loop and the ANSI screen clearing.  No curses —
``\\x1b[H\\x1b[2J`` between frames keeps it dependency-free and works
in any ANSI terminal (and piped output degrades to frame-per-poll
text).
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, TextIO

__all__ = ["render_top", "run_top"]

_CLEAR = "\x1b[H\x1b[2J"

#: phase label → (histogram name, unit) rows of the latency table.
_PHASES = (
    ("queue wait", "server.queue.wait", "s"),
    ("park wait", "server.park.wait", "s"),
    ("validate", "validation_latency_us", "us"),
    ("wal fsync", "wal.flush.latency_ms", "ms"),
    ("request", "server.request.latency", "s"),
)


def _rate(
    now: dict[str, float],
    before: dict[str, float] | None,
    name: str,
    elapsed: float,
) -> float:
    if before is None or elapsed <= 0:
        return 0.0
    return max(0.0, now.get(name, 0.0) - before.get(name, 0.0)) / elapsed


def _delta(
    now: dict[str, float],
    before: dict[str, float] | None,
    name: str,
) -> float:
    if before is None:
        return now.get(name, 0.0)
    return max(0.0, now.get(name, 0.0) - before.get(name, 0.0))


def _fmt_latency(value: float, unit: str) -> str:
    if unit == "s":
        return f"{value * 1000.0:8.2f}ms"
    return f"{value:8.2f}{unit}"


def render_top(
    stats: dict[str, Any],
    *,
    previous: dict[str, Any] | None = None,
    elapsed: float = 0.0,
) -> str:
    """One dashboard frame from a ``stats`` response.

    ``previous``/``elapsed`` (the prior poll and the seconds between)
    turn monotonic counters into rates; with no prior frame the rate
    column shows lifetime totals instead.
    """
    snapshot = stats.get("stats", {})
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    prev_counters = (
        (previous or {}).get("stats", {}).get("counters", {})
        if previous
        else None
    )

    committed = _delta(counters, prev_counters, "server.txns.committed")
    aborted = _delta(counters, prev_counters, "server.txns.aborted")
    requests = _delta(counters, prev_counters, "server.requests")
    busy = _delta(counters, prev_counters, "server.busy")
    txn_rate = _rate(
        counters, prev_counters, "server.txns.committed", elapsed
    )
    req_rate = _rate(counters, prev_counters, "server.requests", elapsed)
    finished = committed + aborted
    abort_pct = 100.0 * aborted / finished if finished else 0.0
    admitted = requests + busy
    busy_pct = 100.0 * busy / admitted if admitted else 0.0

    queue_depth = stats.get("queue_depth", 0)
    parked = stats.get("parked", 0)
    queue_max = gauges.get("server.queue.depth", {}).get("max", 0)
    park_max = gauges.get("server.park.depth", {}).get("max", 0)
    sessions = gauges.get("server.sessions", {}).get("value", 0)

    window = f"{elapsed:.1f}s window" if previous else "lifetime"
    lines = [
        f"repro top — {window}",
        (
            f"txn/s {txn_rate:8.1f}   req/s {req_rate:8.1f}   "
            f"abort% {abort_pct:5.1f}   busy% {busy_pct:5.1f}   "
            f"sessions {sessions:g}"
        ),
        (
            f"queue {queue_depth} (max {queue_max:g})   "
            f"parked {parked} (max {park_max:g})   "
            f"commits {counters.get('server.txns.committed', 0):g}   "
            f"notif.dropped "
            f"{counters.get('server.notifications_dropped', 0):g}"
        ),
    ]
    repl = stats.get("repl")
    if repl:
        role = repl.get("role", "?")
        if role == "follower":
            lines.append(
                f"repl  role=follower   applied_lsn "
                f"{repl.get('applied_lsn', 0)}   "
                f"lag {repl.get('lag_lsn', 0)} lsn / "
                f"{repl.get('lag_ms', 0.0):g}ms   "
                f"connected {repl.get('connected', False)}"
            )
        elif role == "primary":
            followers = repl.get("followers", [])
            lines.append(
                f"repl  role=primary    durable_lsn "
                f"{repl.get('durable_lsn', 0)}   replicated_lsn "
                f"{repl.get('replicated_lsn', 0)}   "
                f"followers {len(followers)} "
                f"(sync={repl.get('sync_replicas', 0)})"
            )
    lines += [
        "",
        f"{'phase':<12}{'count':>8}{'p50':>11}{'p95':>11}{'p99':>11}"
        f"{'max':>11}",
    ]
    for label, name, unit in _PHASES:
        summary = histograms.get(name)
        if not summary or not summary.get("count"):
            continue
        lines.append(
            f"{label:<12}{summary['count']:>8}"
            + "".join(
                _fmt_latency(summary.get(key, 0.0), unit).rjust(11)
                for key in ("p50", "p95", "p99", "max")
            )
        )
    live = stats.get("live")
    if live:
        lines.append("")
        lines.append("slowest in flight (open spans, oldest first):")
        for entry in live[:10]:
            age_ms = entry.get("age", 0.0) * 1000.0
            op = entry.get("op") or "-"
            lines.append(
                f"  {entry.get('txn', '?'):<12} "
                f"{entry.get('kind', '?'):<12} op={op:<12} "
                f"age {age_ms:9.1f}ms"
            )
    elif live is not None:
        lines.append("")
        lines.append("slowest in flight: (idle)")
    return "\n".join(lines) + "\n"


def run_top(
    host: str = "127.0.0.1",
    port: int = 7455,
    *,
    interval: float = 1.0,
    iterations: int | None = None,
    out: TextIO | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll ``stats`` every ``interval`` seconds and redraw.

    ``iterations`` bounds the loop for tests and one-shot captures
    (``None`` = until interrupted).  Returns a process exit code.
    """
    from ..server.client import Client

    stream = out if out is not None else sys.stdout
    try:
        client = Client.connect(host, port)
    except OSError as error:
        print(
            f"error: cannot reach server at {host}:{port} ({error})",
            file=sys.stderr,
        )
        return 2
    previous: dict[str, Any] | None = None
    previous_at = clock()
    count = 0
    try:
        while iterations is None or count < iterations:
            try:
                stats = client.stats()
            except (ConnectionError, OSError):
                print("server went away", file=sys.stderr)
                return 1
            now = clock()
            frame = render_top(
                stats, previous=previous, elapsed=now - previous_at
            )
            if stream.isatty():
                stream.write(_CLEAR)
            stream.write(frame)
            stream.flush()
            previous, previous_at = stats, now
            count += 1
            if iterations is None or count < iterations:
                sleep(interval)
    except KeyboardInterrupt:
        pass
    finally:
        client.close()
    return 0
