"""Observability: tracing, metrics, and trace export.

The subsystem behind the paper's quantitative motivation (§2.4): a
span-based tracer for transaction lifecycles
(:mod:`repro.obs.trace`), a metrics registry with percentile
histograms (:mod:`repro.obs.metrics`), and JSONL exporters plus a
timeline renderer (:mod:`repro.obs.export`).  The no-op
:data:`NULL_TRACER` is the default on every instrumented path.
"""

from .export import (
    filter_spans,
    load_jsonl,
    render_timeline,
    timeline_stats,
    transactions_of,
    write_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import NULL_TRACER, RecordingTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "RecordingTracer",
    "Span",
    "Tracer",
    "filter_spans",
    "load_jsonl",
    "render_timeline",
    "timeline_stats",
    "transactions_of",
    "write_jsonl",
]
