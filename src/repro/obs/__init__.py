"""Observability: tracing, metrics, live telemetry, and trace export.

The subsystem behind the paper's quantitative motivation (§2.4): a
span-based tracer for transaction lifecycles
(:mod:`repro.obs.trace`), a metrics registry with percentile
histograms (:mod:`repro.obs.metrics`), and JSONL exporters plus a
timeline renderer (:mod:`repro.obs.export`).  The no-op
:data:`NULL_TRACER` is the default on every instrumented path.

The live layer serves a *running* service rather than a finished run:
:mod:`repro.obs.live` streams completed spans through a bounded ring
buffer (:class:`SpanRing` + :class:`LiveTracer`) with slow-transaction
capture, :mod:`repro.obs.prom` renders the registry in Prometheus text
format for the server's ``/metrics`` endpoint, and
:mod:`repro.obs.top` is the ``repro top`` dashboard over the ``stats``
protocol command.
"""

from .export import (
    filter_spans,
    load_jsonl,
    render_timeline,
    timeline_stats,
    transactions_of,
    write_jsonl,
)
from .live import LiveTracer, RingSubscriber, SpanRing
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .prom import render_prometheus
from .top import render_top, run_top
from .trace import NULL_TRACER, RecordingTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LiveTracer",
    "MetricsRegistry",
    "NULL_TRACER",
    "RecordingTracer",
    "RingSubscriber",
    "Span",
    "SpanRing",
    "Tracer",
    "filter_spans",
    "load_jsonl",
    "render_prometheus",
    "render_timeline",
    "render_top",
    "run_top",
    "timeline_stats",
    "transactions_of",
    "write_jsonl",
]
