"""Trace export, reload, and timeline rendering.

Traces are written as JSONL — one span per line — so they stream, can
be grepped, and can be re-loaded for offline inspection (the same
record-then-check workflow Biswas & Enea use for consistency checking).
:func:`render_timeline` turns a span list back into the per-transaction
story: every attempt's arrive/validate/wait/read/write/commit, nested
by causal parent, with virtual-time stamps and durations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Sequence

from .trace import Span


def span_to_line(span: Span) -> str:
    return json.dumps(span.to_dict(), sort_keys=True)


def write_jsonl(spans: Iterable[Span], path: "str | Path | IO[str]") -> int:
    """Write spans as JSONL; returns the number written."""
    if hasattr(path, "write"):
        return _write_stream(spans, path)  # type: ignore[arg-type]
    with open(path, "w", encoding="utf-8") as stream:
        return _write_stream(spans, stream)


def _write_stream(spans: Iterable[Span], stream: IO[str]) -> int:
    count = 0
    for span in spans:
        stream.write(span_to_line(span))
        stream.write("\n")
        count += 1
    return count


def load_jsonl(path: "str | Path | IO[str]") -> list[Span]:
    """Re-load a JSONL trace into :class:`Span` objects."""
    if hasattr(path, "read"):
        return _load_stream(path)  # type: ignore[arg-type]
    with open(path, "r", encoding="utf-8") as stream:
        return _load_stream(stream)


def _load_stream(stream: IO[str]) -> list[Span]:
    spans = []
    for line in stream:
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def filter_spans(
    spans: Iterable[Span],
    txn: str | None = None,
    kinds: "Sequence[str] | None" = None,
) -> list[Span]:
    """Restrict a trace to one transaction and/or a set of span kinds."""
    wanted = set(kinds) if kinds else None
    return [
        span
        for span in spans
        if (txn is None or span.txn == txn)
        and (wanted is None or span.kind in wanted)
    ]


def transactions_of(spans: Iterable[Span]) -> list[str]:
    """Transaction names in first-appearance order."""
    seen: dict[str, None] = {}
    for span in spans:
        seen.setdefault(span.txn, None)
    return list(seen)


def _format_attrs(span: Span) -> str:
    return " ".join(
        f"{key}={value}" for key, value in sorted(span.attrs.items())
    )


def _depth(span: Span, by_id: dict[int, Span]) -> int:
    depth = 0
    current = span
    while current.parent_id is not None:
        parent = by_id.get(current.parent_id)
        if parent is None:
            break
        depth += 1
        current = parent
    return depth


def render_timeline(
    spans: Sequence[Span],
    txn: str | None = None,
    kinds: "Sequence[str] | None" = None,
) -> str:
    """A per-transaction timeline, nested by causal parent.

    One block per transaction; within a block spans are ordered by
    start time and indented under their parent, with the duration in
    brackets (``[...]`` still open — e.g. a wait that never resolved).
    """
    chosen = filter_spans(spans, txn=txn, kinds=kinds)
    if not chosen:
        return "(no spans)"
    by_id = {span.span_id: span for span in chosen}
    lines: list[str] = []
    for name in transactions_of(chosen):
        group = sorted(
            (span for span in chosen if span.txn == name),
            key=lambda span: (span.start, span.span_id),
        )
        lines.append(f"== {name} ==")
        for span in group:
            indent = "  " * _depth(span, by_id)
            if span.duration is None:
                length = "[...]"
            elif span.is_event:
                length = ""
            else:
                length = f"[{span.duration:g}]"
            attrs = _format_attrs(span)
            body = " ".join(
                part for part in (span.kind, length, attrs) if part
            )
            lines.append(f"  {span.start:>10.1f}  {indent}{body}")
    return "\n".join(lines)


def timeline_stats(spans: Sequence[Span]) -> dict[str, int]:
    """Span counts by kind — a quick sanity view of a trace."""
    counts: dict[str, int] = {}
    for span in spans:
        counts[span.kind] = counts.get(span.kind, 0) + 1
    return dict(sorted(counts.items()))
