"""Prometheus text exposition of a :class:`MetricsRegistry`.

Renders the registry in the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_,
version 0.0.4, so the live server's ``/metrics`` endpoint can be
scraped by any Prometheus-compatible collector — no client library
needed, the format is plain text:

* counters → ``TYPE counter``
* gauges → ``TYPE gauge`` plus a ``<name>_max`` high-water gauge
* histograms → ``TYPE summary``: ``{quantile="0.5|0.95|0.99"}``
  series plus ``_sum`` and ``_count``, the standard pre-aggregated
  summary shape.

Dotted registry names (``server.queue.wait``) become legal Prometheus
names by mapping every non-``[a-zA-Z0-9_]`` byte to ``_``
(``repro_server_queue_wait`` with the ``repro_`` namespace prefix).
"""

from __future__ import annotations

import re

from .metrics import MetricsRegistry

__all__ = ["render_prometheus"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")

#: quantiles exported for every histogram, matching ``summary()``.
_QUANTILES = ((0.5, 50), (0.95, 95), (0.99, 99))


def _sanitize(name: str, prefix: str) -> str:
    flat = _NAME_OK.sub("_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"{prefix}{flat}" if prefix else flat


def _fmt(value: float) -> str:
    # Prometheus wants plain decimal; integers without a trailing .0
    # are fine and keep the output diff-friendly.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    registry: MetricsRegistry, *, prefix: str = "repro_"
) -> str:
    """The registry as Prometheus text format (one trailing newline)."""
    lines: list[str] = []

    for name, counter in sorted(registry.counters.items()):
        flat = _sanitize(name, prefix)
        lines.append(f"# HELP {flat} Counter {name!r}.")
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_fmt(counter.value)}")

    for name, gauge in sorted(registry.gauges.items()):
        flat = _sanitize(name, prefix)
        lines.append(f"# HELP {flat} Gauge {name!r}.")
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_fmt(gauge.value)}")
        lines.append(f"# HELP {flat}_max High-water mark of {name!r}.")
        lines.append(f"# TYPE {flat}_max gauge")
        lines.append(f"{flat}_max {_fmt(gauge.max_value)}")

    for name, histogram in sorted(registry.histograms.items()):
        flat = _sanitize(name, prefix)
        lines.append(f"# HELP {flat} Histogram {name!r}.")
        lines.append(f"# TYPE {flat} summary")
        for q, p in _QUANTILES:
            lines.append(
                f'{flat}{{quantile="{q}"}} {_fmt(histogram.percentile(p))}'
            )
        lines.append(f"{flat}_sum {_fmt(histogram.total)}")
        lines.append(f"{flat}_count {_fmt(histogram.count)}")

    return "\n".join(lines) + "\n"
