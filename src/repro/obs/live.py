"""Live telemetry: streaming spans instead of post-hoc dumps.

The :class:`~repro.obs.trace.RecordingTracer` keeps every span forever
— fine for a bounded simulation, wrong for a server that stays up.
This module provides the live counterparts:

* :class:`SpanRing` — a bounded ring buffer of *completed* spans with a
  cursor-based subscriber API.  Producers never block; a subscriber
  that falls behind loses the oldest spans and is told exactly how
  many (``dropped``), mirroring the server's own
  ``server.notifications_dropped`` policy for slow consumers.
* :class:`LiveTracer` — a :class:`~repro.obs.trace.Tracer` with the
  same alias / open-stack parent propagation as ``RecordingTracer``,
  but completed spans stream into a :class:`SpanRing` instead of
  accumulating.  Open spans are tracked only while open, so memory is
  bounded by ring capacity plus in-flight work.
* Slow-transaction capture — when constructed with ``slow_threshold``
  and ``on_slow``, the tracer buffers each root span's subtree and
  hands the complete tree to ``on_slow(root, spans)`` when the root
  closes having taken at least the threshold.  Fast trees are
  discarded the moment their root closes.

Timestamps default to :func:`time.monotonic`; the fuzzer installs its
virtual clock through the constructor or :meth:`LiveTracer.set_clock`.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable

from .trace import Span, Tracer

__all__ = ["SpanRing", "RingSubscriber", "LiveTracer"]


class RingSubscriber:
    """A cursor into a :class:`SpanRing`.

    :meth:`poll` returns every span published since the previous poll
    — or, when the subscriber fell behind the ring window, the spans
    still available plus a count of those lost.
    """

    def __init__(self, ring: "SpanRing") -> None:
        self._ring = ring
        self._cursor = ring._next_seq  # subscribe from "now"
        self.dropped_total = 0

    def poll(self) -> tuple[list[Span], int]:
        """Return ``(new_spans, dropped)`` since the last poll."""
        spans, dropped, self._cursor = self._ring._read_from(self._cursor)
        self.dropped_total += dropped
        return spans, dropped

    def close(self) -> None:
        self._ring._unsubscribe(self)


class SpanRing:
    """Bounded, never-blocking buffer of completed spans.

    ``push`` is O(1) and never waits on consumers: the ring holds the
    last ``capacity`` spans and each subscriber reads at its own pace.
    ``on_drop(count)`` (if given) is invoked whenever a subscriber's
    poll discovers it lost spans — the server wires this to the
    ``obs.spans_dropped`` counter.
    """

    def __init__(
        self,
        capacity: int = 4096,
        on_drop: Callable[[int], None] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.on_drop = on_drop
        self._buf: list[Span | None] = [None] * capacity
        self._next_seq = 0  # sequence number of the NEXT push
        self._subscribers: list[RingSubscriber] = []
        self._lock = threading.Lock()

    def push(self, span: Span) -> None:
        with self._lock:
            self._buf[self._next_seq % self.capacity] = span
            self._next_seq += 1

    def __len__(self) -> int:
        return min(self._next_seq, self.capacity)

    def subscribe(self) -> RingSubscriber:
        with self._lock:
            sub = RingSubscriber(self)
            self._subscribers.append(sub)
            return sub

    def _unsubscribe(self, sub: RingSubscriber) -> None:
        with self._lock:
            if sub in self._subscribers:
                self._subscribers.remove(sub)

    def _read_from(self, cursor: int) -> tuple[list[Span], int, int]:
        """Spans from ``cursor`` onward, dropped count, new cursor."""
        with self._lock:
            head = self._next_seq
            oldest = max(0, head - self.capacity)
            dropped = max(0, oldest - cursor)
            start = max(cursor, oldest)
            spans = [
                self._buf[seq % self.capacity]
                for seq in range(start, head)
            ]
        if dropped and self.on_drop is not None:
            self.on_drop(dropped)
        return [s for s in spans if s is not None], dropped, head

    def latest(self, n: int | None = None) -> list[Span]:
        """The most recent ``n`` spans (all buffered when ``None``)."""
        with self._lock:
            head = self._next_seq
            oldest = max(0, head - self.capacity)
            if n is not None:
                oldest = max(oldest, head - n)
            return [
                s
                for seq in range(oldest, head)
                if (s := self._buf[seq % self.capacity]) is not None
            ]


#: cap on spans buffered per slow-candidate tree, and on the number of
#: concurrently-tracked roots — keeps slow-log memory bounded even if
#: roots leak (e.g. a span never closed because the session vanished).
_MAX_TREE_SPANS = 512
_MAX_LIVE_ROOTS = 1024


class LiveTracer(Tracer):
    """A tracer that streams completed spans into a :class:`SpanRing`.

    Parent propagation, aliasing and the :meth:`record` /
    :meth:`current_span_id` group-commit hooks behave exactly like
    :class:`~repro.obs.trace.RecordingTracer`; the difference is
    retention — completed spans go to the ring (and optionally the
    slow-transaction buffer) instead of an ever-growing list.
    """

    enabled = True

    def __init__(
        self,
        ring: SpanRing | None = None,
        clock: Callable[[], float] | None = None,
        *,
        slow_threshold: float | None = None,
        on_slow: Callable[[Span, list[Span]], None] | None = None,
    ) -> None:
        self.ring = ring if ring is not None else SpanRing()
        self._ids = itertools.count(1)
        self._clock = clock if clock is not None else time.monotonic
        self._aliases: dict[str, str] = {}
        self._open: dict[str, list[Span]] = {}
        self.slow_threshold = slow_threshold
        self.on_slow = on_slow
        # root span id -> spans of that tree, buffered until the root
        # closes (only when slow capture is configured).
        self._trees: dict[int, list[Span]] = {}
        # span id -> root span id, for spans still relevant to an open
        # tree; entries die with their tree.
        self._roots: dict[int, int] = {}

    # -- configuration -------------------------------------------------------

    def set_clock(self, clock: Callable[[], float] | None) -> None:
        self._clock = clock if clock is not None else time.monotonic

    def alias(self, name: str, canonical: str) -> None:
        if name == canonical:
            return
        self._aliases[name] = canonical
        canonical = self._resolve(canonical)
        open_stack = self._open.pop(name, None)
        if open_stack:
            for span in open_stack:
                span.txn = canonical
            self._open.setdefault(canonical, []).extend(open_stack)

    # -- internals -----------------------------------------------------------

    def _resolve(self, txn: str) -> str:
        if txn not in self._aliases:  # fast path: no set allocation
            return txn
        seen = set()
        while txn in self._aliases and txn not in seen:
            seen.add(txn)
            txn = self._aliases[txn]
        return txn

    def _parent_id(self, txn: str, parent: Span | int | None) -> int | None:
        if isinstance(parent, Span):
            return parent.span_id
        if parent is not None:
            return int(parent)
        stack = self._open.get(txn)
        return stack[-1].span_id if stack else None

    def _track(self, span: Span) -> None:
        """Attach ``span`` to its root's slow-candidate tree."""
        if self.on_slow is None:
            return
        parent = span.parent_id
        if parent is None or parent not in self._roots:
            # A new root. Evict the oldest tree if at capacity.
            if len(self._trees) >= _MAX_LIVE_ROOTS:
                victim = next(iter(self._trees))
                for s in self._trees.pop(victim):
                    self._roots.pop(s.span_id, None)
            self._roots[span.span_id] = span.span_id
            self._trees[span.span_id] = [span]
            return
        root = self._roots[parent]
        tree = self._trees.get(root)
        if tree is not None and len(tree) < _MAX_TREE_SPANS:
            self._roots[span.span_id] = root
            tree.append(span)

    def _finish_slow(self, span: Span) -> None:
        """Fire slow capture when a completed span closes its root."""
        root = self._roots.get(span.span_id)
        if root != span.span_id:
            return  # not a root — tree resolves when the root closes
        spans = self._trees.pop(span.span_id, None)
        if spans is None:
            return
        for s in spans:
            self._roots.pop(s.span_id, None)
        duration = span.duration
        threshold = self.slow_threshold
        if (
            duration is not None
            and threshold is not None
            and duration >= threshold
        ):
            self.on_slow(span, spans)

    # -- recording -----------------------------------------------------------

    # The three producers below inline parent resolution and guard the
    # slow-capture calls behind ``on_slow`` — the tracer rides the
    # dispatcher hot path, and with slow capture off (the common case)
    # a span must cost exactly: id, clock, Span(), open-stack append,
    # ring push.

    def start(
        self,
        kind: str,
        txn: str,
        parent: Span | int | None = None,
        **attrs: Any,
    ) -> Span:
        txn = self._resolve(txn)
        if parent is None:
            stack = self._open.get(txn)
            parent_id = stack[-1].span_id if stack else None
        elif parent.__class__ is Span:
            parent_id = parent.span_id
        else:
            parent_id = int(parent)
        span = Span(
            span_id=next(self._ids),
            kind=kind,
            txn=txn,
            start=self._clock(),
            parent_id=parent_id,
            attrs=attrs,  # **attrs is already a fresh dict we own
        )
        self._open.setdefault(txn, []).append(span)
        if self.on_slow is not None:
            self._track(span)
        return span

    def end(self, span: Span | None, **attrs: Any) -> None:
        if span is None or span.end is not None:
            return
        span.end = self._clock()
        if attrs:
            span.attrs.update(attrs)
        stack = self._open.get(span.txn)
        if stack and span in stack:
            stack.remove(span)
            if not stack:
                del self._open[span.txn]
        self.ring.push(span)
        if self.on_slow is not None:
            self._finish_slow(span)

    def event(
        self,
        kind: str,
        txn: str,
        parent: Span | int | None = None,
        **attrs: Any,
    ) -> Span:
        now = self._clock()
        return self.record(kind, txn, now, now, parent, **attrs)

    def record(
        self,
        kind: str,
        txn: str,
        start: float,
        end: float,
        parent: Span | int | None = None,
        **attrs: Any,
    ) -> Span:
        txn = self._resolve(txn)
        if parent is None:
            stack = self._open.get(txn)
            parent_id = stack[-1].span_id if stack else None
        elif parent.__class__ is Span:
            parent_id = parent.span_id
        else:
            parent_id = int(parent)
        span = Span(
            span_id=next(self._ids),
            kind=kind,
            txn=txn,
            start=start,
            end=end,
            parent_id=parent_id,
            attrs=attrs,  # **attrs is already a fresh dict we own
        )
        self.ring.push(span)
        if self.on_slow is not None:
            self._track(span)
            self._finish_slow(span)
        return span

    def current_span_id(self, txn: str) -> int | None:
        stack = self._open.get(self._resolve(txn))
        return stack[-1].span_id if stack else None

    def reparent(self, span: Span | None, parent: Span | None) -> None:
        if span is None:
            return
        span.parent_id = None if parent is None else parent.span_id
        if self.on_slow is None or parent is None:
            return
        # Merge the span's slow-candidate tree into the new parent's.
        old_root = self._roots.get(span.span_id)
        new_root = self._roots.get(parent.span_id)
        if old_root is None or new_root is None or old_root == new_root:
            return
        moved = self._trees.pop(old_root, [])
        target = self._trees.get(new_root)
        for s in moved:
            if target is not None and len(target) < _MAX_TREE_SPANS:
                target.append(s)
                self._roots[s.span_id] = new_root
            else:
                self._roots.pop(s.span_id, None)

    # -- introspection -------------------------------------------------------

    def open_spans(self) -> list[Span]:
        """Every currently-open span (oldest first), for live views."""
        spans = [s for stack in self._open.values() for s in stack]
        spans.sort(key=lambda s: s.start)
        return spans
