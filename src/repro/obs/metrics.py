"""Counters, gauges, and histograms for run-level quantities.

The registry is the numeric side of the observability subsystem: the
tracer (:mod:`repro.obs.trace`) answers *why*, the registry answers
*how much*.  :class:`~repro.sim.metrics.RunMetrics` is built on top of
it — per-wait durations, commit latencies, validation latencies, and
lock-queue depths land in histograms, from which the summary reports
percentiles (p50/p95/p99) instead of just mean/max.

Everything is plain in-memory Python: instruments are cheap to create,
``observe``/``inc`` are O(1) appends, and percentiles are computed on
demand by nearest-rank over a sort (runs are bounded, so this is fine
— and keeps the hot path allocation-free).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(slots=True)
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass(slots=True)
class Gauge:
    """A value that moves both ways; tracks its high-water mark."""

    name: str
    value: float = 0.0
    max_value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


@dataclass(slots=True)
class Histogram:
    """A distribution of observed values with percentile queries.

    ``max_samples`` bounds memory for long-running processes (the live
    server): when set, ``values`` keeps only the most recent window
    and percentiles describe that window, while ``count``, ``total``,
    ``mean``, ``max`` and ``min`` stay exact over the full lifetime.
    """

    name: str
    values: list[float] = field(default_factory=list)
    max_samples: int | None = None
    _count: int = field(default=0, repr=False)
    _total: float = field(default=0.0, repr=False)
    _max: float | None = field(default=None, repr=False)
    _min: float | None = field(default=None, repr=False)

    def observe(self, value: float) -> None:
        self.values.append(value)
        self._count += 1
        self._total += value
        if self._max is None or value > self._max:
            self._max = value
        if self._min is None or value < self._min:
            self._min = value
        if self.max_samples is not None and len(self.values) > self.max_samples:
            del self.values[0]

    @property
    def count(self) -> int:
        # values mutated directly (tests, pre-window callers) still count
        return max(self._count, len(self.values))

    @property
    def total(self) -> float:
        if self._count >= len(self.values):
            return self._total
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def max(self) -> float:
        if self._count >= len(self.values):
            return self._max if self._max is not None else 0.0
        return max(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        if self._count >= len(self.values):
            return self._min if self._min is not None else 0.0
        return min(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; 0.0 on an empty histogram."""
        if not self.values:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} outside [0, 100]")
        ordered = sorted(self.values)
        if p == 0:
            return ordered[0]
        rank = max(1, -(-len(ordered) * p // 100))  # ceil(n*p/100)
        return ordered[int(rank) - 1]

    def percentiles(self, *ps: float) -> dict[str, float]:
        return {f"p{p:g}": self.percentile(p) for p in ps}

    def summary(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    One registry per run; the simulator's :class:`RunMetrics` owns one
    and the protocol's lock table and validation path feed it when
    attached (see :meth:`TransactionManager.set_registry`).
    """

    def __init__(self, *, default_max_samples: int | None = None) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: window applied to histograms created after construction; the
        #: server sets this so per-request latency histograms stay
        #: bounded over an arbitrarily long uptime.
        self.default_max_samples = default_max_samples

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(
            name, Histogram(name, max_samples=self.default_max_samples)
        )

    @property
    def counters(self) -> dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def snapshot(self) -> dict[str, Any]:
        """One JSON-ready dict of every instrument's current state."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": gauge.value, "max": gauge.max_value}
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }
