"""The WAL-backed Section-5 transaction manager.

:class:`DurableTransactionManager` subclasses the in-memory
:class:`~repro.protocol.scheduler.TransactionManager` and appends one
logical WAL record per successful state transition — after the
in-memory transition for most operations, but *before* the version is
created for writes (the record carries the exact sequence stamp the
store is about to issue, which replay asserts; this is the
write-ahead discipline at the logical level).

Aborts are logged with the full cascade (every transaction aborted and
every version expunged), and re-evaluation or cascade re-assignments
are logged as REASSIGN diffs, so replay never has to re-run selection
or Figure-4 logic — redo is pure state transcription and therefore
deterministic.

Use :meth:`DurableTransactionManager.open` to bind a WAL directory:
it recovers (with verification — refusing to serve on a mismatch) when
the directory has history, or starts fresh and writes the initial
checkpoint so the directory is always recoverable from its checkpoint
plus WAL suffix.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from ..core.transactions import Spec
from ..errors import RecoveryError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..protocol.scheduler import (
    Outcome,
    StepResult,
    TransactionManager,
    TxnPhase,
)
from ..protocol.validation import VersionSelector
from ..storage.database import Database
from ..storage.version_store import Version
from .crashpoints import CrashPoints
from .records import (
    OP_ABORT,
    OP_COMMIT,
    OP_DEFINE,
    OP_PREPARE,
    OP_READ,
    OP_REASSIGN,
    OP_UNDO_COMMIT,
    OP_VALIDATE,
    OP_WRITE,
)
from .recovery import RecoveryResult, recover
from .snapshot import CheckpointStore
from .state import LogicalState
from .wal import WriteAheadLog, cleanup_segments, list_segments


def _ref(version: Version) -> list[Any]:
    return [version.value, version.author, version.sequence]


class DurableTransactionManager(TransactionManager):
    """A :class:`TransactionManager` that survives crashes."""

    def __init__(
        self,
        database: Database,
        *,
        wal: WriteAheadLog | None = None,
        checkpoints: CheckpointStore | None = None,
        checkpoint_every: int = 0,
        selector: VersionSelector | None = None,
        root_spec: Spec | None = None,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        strict: bool = False,
        root_name: str | None = None,
    ) -> None:
        super().__init__(
            database,
            selector=selector,
            root_spec=root_spec,
            tracer=tracer,
            registry=registry,
            strict=strict,
            root_name=root_name,
        )
        self._wal = wal
        self._checkpoints = checkpoints
        self.checkpoint_every = checkpoint_every
        self._records_since_checkpoint = 0
        self._commit_lsns: dict[str, int] = {}
        #: Live 2PC promises (txn -> PREPARE data): carried into every
        #: checkpoint so an in-doubt branch survives WAL rotation.
        self._prepared: dict[str, dict[str, Any]] = {}
        self._depth = 0

    # -- opening a WAL directory -------------------------------------------

    @classmethod
    def open(
        cls,
        wal_dir: "Path | str",
        database_factory: "Any | None" = None,
        *,
        flush_interval: float = 0.0,
        checkpoint_every: int = 0,
        segment_bytes: int = 0,
        retain: int = 3,
        selector: VersionSelector | None = None,
        root_spec: Spec | None = None,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        strict: bool = False,
        crash_points: CrashPoints | None = None,
        verify: bool = True,
        root_name: str | None = None,
    ) -> "tuple[DurableTransactionManager, RecoveryResult | None]":
        """Bind a WAL directory: recover it, or initialize it fresh.

        Returns ``(manager, recovery)`` where ``recovery`` is ``None``
        on a fresh start.  Raises :class:`RecoveryError` when recovery
        verification fails (the caller must not serve) or when the
        directory is fresh but no ``database_factory`` was given.
        """
        wal_dir = Path(wal_dir)
        wal_dir.mkdir(parents=True, exist_ok=True)
        checkpoints = CheckpointStore(
            wal_dir,
            retain=retain,
            registry=registry,
            crash_points=crash_points,
        )
        has_history = bool(checkpoints.checkpoints()) or bool(
            list_segments(wal_dir)
        )
        recovery: RecoveryResult | None = None
        if has_history:
            recovery = recover(
                wal_dir, verify=verify, strict=strict, registry=registry
            )
            if verify and not recovery.verified:
                raise RecoveryError(
                    "refusing to serve: recovered state failed "
                    "verification: " + "; ".join(recovery.violations)
                )
            wal = WriteAheadLog(
                wal_dir,
                next_lsn=recovery.last_lsn + 1,
                flush_interval=flush_interval,
                segment_bytes=segment_bytes,
                registry=registry,
                tracer=tracer,
                crash_points=crash_points,
            )
            manager = recovery.state.materialize(
                selector=selector,
                tracer=tracer,
                registry=registry,
                strict=strict,
                manager_class=cls,
                wal=wal,
                checkpoints=checkpoints,
                checkpoint_every=checkpoint_every,
            )
            assert isinstance(manager, cls)
            for name, txn_state in recovery.state.txns.items():
                if txn_state.commit_lsn is not None:
                    manager._commit_lsns[name] = txn_state.commit_lsn
        else:
            if database_factory is None:
                raise RecoveryError(
                    f"{wal_dir} has no history and no database factory "
                    "was provided"
                )
            database = database_factory()
            wal = WriteAheadLog(
                wal_dir,
                next_lsn=1,
                flush_interval=flush_interval,
                segment_bytes=segment_bytes,
                registry=registry,
                tracer=tracer,
                crash_points=crash_points,
            )
            manager = cls(
                database,
                wal=wal,
                checkpoints=checkpoints,
                checkpoint_every=checkpoint_every,
                selector=selector,
                root_spec=root_spec,
                tracer=tracer,
                registry=registry,
                strict=strict,
                root_name=root_name,
            )
        # Re-anchor the directory: a checkpoint of the current state
        # (post-recovery, or the fresh initial state) so it is always
        # recoverable from checkpoint + WAL suffix.
        manager.checkpoint()
        return manager, recovery

    # -- durability plumbing -----------------------------------------------

    @property
    def wal(self) -> WriteAheadLog | None:
        return self._wal

    @property
    def checkpoints(self) -> CheckpointStore | None:
        return self._checkpoints

    def commit_lsn_of(self, txn: str) -> int | None:
        """The WAL LSN of ``txn``'s commit record, if it committed."""
        return self._commit_lsns.get(txn)

    def _append(self, op: str, txn: str, data: dict[str, Any]) -> None:
        if self._wal is None:
            return
        record = self._wal.append(op, txn, data)
        if op == OP_COMMIT:
            self._commit_lsns[txn] = record.lsn
        self._records_since_checkpoint += 1

    def maybe_flush(self) -> int:
        """Group-commit tick: fsync if the flush deadline passed."""
        if self._wal is None or self._wal.closed:
            return 0
        return self._wal.maybe_flush()

    def flush(self) -> int:
        if self._wal is None or self._wal.closed:
            return 0
        return self._wal.flush()

    def checkpoint(self) -> "Path | None":
        """Write a checkpoint of the current state and rotate the WAL."""
        if self._wal is None or self._checkpoints is None:
            return None
        self._wal.flush()
        state = LogicalState.from_manager(self)
        for name, lsn in self._commit_lsns.items():
            if name in state.txns:
                state.txns[name].commit_lsn = lsn
        for name in list(self._prepared):
            txn_state = state.txns.get(name)
            if txn_state is None or txn_state.terminated:
                del self._prepared[name]  # decision already durable
                continue
            txn_state.prepared = dict(self._prepared[name])
        last_lsn = self._wal.last_lsn
        path = self._checkpoints.write(state.to_dict(), last_lsn)
        self._wal.rotate()
        oldest = self._checkpoints.oldest_retained_lsn()
        if oldest is not None:
            cleanup_segments(self._wal.directory, oldest)
        self._records_since_checkpoint = 0
        return path

    def _maybe_checkpoint(self) -> None:
        if (
            self._depth == 0
            and self.checkpoint_every > 0
            and self._records_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()

    def close(self, checkpoint: bool = True) -> None:
        """Flush (and by default checkpoint) before shutting down."""
        if self._wal is None or self._wal.closed:
            return
        if checkpoint:
            self.checkpoint()
        self._wal.close()

    # -- logged protocol operations ----------------------------------------

    def define(
        self,
        parent: str,
        spec: Spec,
        update_set: Iterable[str],
        predecessors: Iterable[str] = (),
        successors: Iterable[str] = (),
        undo_committed_successors: bool = False,
    ) -> str:
        preds = list(predecessors)
        succs = list(successors)
        updates = sorted(frozenset(update_set))
        self._depth += 1
        try:
            name = super().define(
                parent,
                spec,
                updates,
                preds,
                succs,
                undo_committed_successors,
            )
            self._append(
                OP_DEFINE,
                name,
                {
                    "parent": parent,
                    "update_set": updates,
                    "predecessors": preds,
                    "successors": succs,
                    "input_constraint": str(spec.input_constraint),
                    "output_condition": str(spec.output_condition),
                },
            )
        finally:
            self._depth -= 1
        self._maybe_checkpoint()
        return name

    def validate(self, txn: str) -> StepResult:
        self._depth += 1
        try:
            result = super().validate(txn)
            if result.outcome is Outcome.OK:
                assigned = self.record(txn).assigned
                self._append(
                    OP_VALIDATE,
                    txn,
                    {
                        "assigned": {
                            item: _ref(version)
                            for item, version in sorted(
                                assigned.items()
                            )
                        }
                    },
                )
        finally:
            self._depth -= 1
        self._maybe_checkpoint()
        return result

    def read(self, txn: str, entity: str) -> StepResult:
        self._depth += 1
        try:
            result = super().read(txn, entity)
            if result.outcome is Outcome.OK:
                version = self.record(txn).assigned[entity]
                self._append(
                    OP_READ,
                    txn,
                    {"entity": entity, "version": _ref(version)},
                )
        finally:
            self._depth -= 1
        self._maybe_checkpoint()
        return result

    def end_write(self, txn: str, entity: str, value: int) -> StepResult:
        self._depth += 1
        try:
            record = self.record(txn)
            if entity in record.in_flight_writes:
                # Validate eagerly so a rejected value is never logged,
                # then log the record *before* the store issues the
                # stamp it predicts — write-ahead, and any Figure-4
                # abort/reassign records land after their cause.
                self._db.schema[entity].validate(value)
                self._append(
                    OP_WRITE,
                    txn,
                    {
                        "entity": entity,
                        "value": value,
                        "sequence": self._db.store.sequence_watermark,
                    },
                )
            result = super().end_write(txn, entity, value)
        finally:
            self._depth -= 1
        self._maybe_checkpoint()
        return result

    def _reassign(self, record, entity, new_version) -> bool:
        ok = super()._reassign(record, entity, new_version)
        if ok:
            self._append(
                OP_REASSIGN,
                record.name,
                {
                    "assigned": {
                        item: _ref(version)
                        for item, version in sorted(
                            record.assigned.items()
                        )
                    }
                },
            )
        return ok

    def commit(self, txn: str) -> StepResult:
        self._depth += 1
        try:
            result = super().commit(txn)
            if result.outcome is Outcome.OK:
                record = self.record(txn)
                released = dict(record.merged_child_writes)
                released.update(
                    {
                        item: version.value
                        for item, version in record.writes.items()
                    }
                )
                self._append(OP_COMMIT, txn, {"released": released})
        finally:
            self._depth -= 1
        self._maybe_checkpoint()
        return result

    def prepare(self, txn: str, data: dict[str, Any]) -> int | None:
        """Log a durable 2PC phase-1 promise for ``txn``.

        ``data`` must carry ``gid``, ``participants`` (branch names
        keyed by shard id as strings), and ``coordinator`` (the shard
        whose branch's commit record is the decision).  The record is
        fsynced before returning — phase 2 must never start on a
        promise that only exists in the OS page cache.  Returns the
        record's LSN (``None`` without a WAL).
        """
        record = self.record(txn)  # raises ProtocolError on unknown
        if record.terminated:
            return None
        if self._wal is None:
            return None
        self._append(OP_PREPARE, txn, dict(data))
        self._prepared[txn] = dict(data)
        lsn = self._wal.last_lsn
        self.flush()
        self._maybe_checkpoint()
        return lsn

    def undo_relative_commit(self, txn: str) -> StepResult:
        self._depth += 1
        try:
            result = super().undo_relative_commit(txn)
            if result.outcome is Outcome.OK:
                self._append(OP_UNDO_COMMIT, txn, {})
                self._commit_lsns.pop(txn, None)
        finally:
            self._depth -= 1
        self._maybe_checkpoint()
        return result

    def abort(self, txn: str, reason: str = "requested") -> list[str]:
        self._depth += 1
        try:
            if self.record(txn).phase is TxnPhase.ABORTED:
                return super().abort(txn, reason)
            before = list(self._db.store)
            assigned_before = {
                record.name: {
                    item: version.sequence
                    for item, version in record.assigned.items()
                }
                for record in self.iter_records()
                if not record.terminated
            }
            names = super().abort(txn, reason)
            if names:
                dead = set(names)
                expunged = [
                    [version.entity, version.sequence]
                    for version in before
                    if version.author in dead
                ]
                self._append(
                    OP_ABORT,
                    txn,
                    {
                        "aborted": names,
                        "reason": reason,
                        "expunged": expunged,
                    },
                )
                self._log_reassignments(assigned_before, dead)
        finally:
            self._depth -= 1
        self._maybe_checkpoint()
        return names

    def _log_reassignments(
        self,
        assigned_before: dict[str, dict[str, int]],
        dead: set[str],
    ) -> None:
        """Log cascade re-selections so replay needs no selector."""
        for name, stamps in assigned_before.items():
            if name in dead:
                continue
            record = self._records.get(name)
            if record is None or record.terminated:
                continue
            now = {
                item: version.sequence
                for item, version in record.assigned.items()
            }
            if now != stamps:
                self._append(
                    OP_REASSIGN,
                    name,
                    {
                        "assigned": {
                            item: _ref(version)
                            for item, version in sorted(
                                record.assigned.items()
                            )
                        }
                    },
                )
