"""WAL records → flat schedules for RC/ACA/ST classification.

Bridges the durability subsystem to the model-level recoverability
hierarchy of :mod:`repro.schedules.recovery`: the committed projection
of a WAL (data operations of finally-committed transactions, in LSN
order, commit order by COMMIT LSN) becomes a
:class:`~repro.schedules.recovery.CommittedSchedule`.

One honesty note: :class:`~repro.schedules.schedule.Schedule` is
mono-version — its reads-from function serves every read from the
*most recent earlier write*.  The Section-5 manager is multi-version
and may serve an older committed version, so the flat projection can
disagree with the *recorded* reads-from relation.
:func:`flat_reads_match_recorded` detects this; when it holds, the
classical predicates apply verbatim, and :func:`recorded_is_rc` is the
multi-version-faithful RC check that holds for every recovered
history regardless.
"""

from __future__ import annotations

from typing import Iterable

from ..schedules.operations import Operation, OpType
from ..schedules.recovery import CommittedSchedule
from .records import OP_COMMIT, OP_READ, OP_WRITE, WalRecord


def _final_committed(records: "list[WalRecord]") -> list[str]:
    """Finally-committed transaction names, in commit (LSN) order."""
    order: list[str] = []
    for record in records:
        if record.op == OP_COMMIT:
            if record.txn not in order:
                order.append(record.txn)
        elif record.op == "undo_commit":
            if record.txn in order:
                order.remove(record.txn)
        elif record.op == "abort":
            for name in record.data["aborted"]:
                if name in order:
                    order.remove(name)
    return order


def committed_projection(
    records: Iterable[WalRecord],
    commit_order: "list[str] | None" = None,
) -> CommittedSchedule | None:
    """The committed projection of a WAL as a flat schedule.

    ``commit_order`` overrides the WAL-derived committed set — pass
    :attr:`RecoveryResult.committed` to project onto the transactions
    that actually *survived* recovery (the WAL itself records no
    ABORT for the undo pass's in-flight rollbacks).  Returns ``None``
    when no surviving transaction performed data operations.
    """
    records = list(records)
    if commit_order is None:
        commit_order = _final_committed(records)
    committed = set(commit_order)
    ops: list[Operation] = []
    for record in records:
        if record.txn not in committed:
            continue
        if record.op == OP_READ:
            ops.append(
                Operation(record.txn, OpType.READ, record.data["entity"])
            )
        elif record.op == OP_WRITE:
            ops.append(
                Operation(
                    record.txn, OpType.WRITE, record.data["entity"]
                )
            )
    if not ops:
        return None
    from ..schedules.schedule import Schedule

    schedule = Schedule(ops)
    order = [
        txn
        for txn in commit_order
        if txn in set(schedule.transactions)
    ]
    return CommittedSchedule(schedule, tuple(order))


def recorded_reads_from(
    records: Iterable[WalRecord],
) -> dict[tuple[str, str, int], "str | None"]:
    """The reads-from relation the WAL actually recorded.

    Maps ``(reader, entity, occurrence)`` to the *author* of the
    version served (``None`` for the initial version), counting each
    reader's reads of one entity in order — the same keying the flat
    :meth:`Schedule.read_sources` uses, so the two are comparable.
    """
    sources: dict[tuple[str, str, int], "str | None"] = {}
    seen: dict[tuple[str, str], int] = {}
    for record in records:
        if record.op != OP_READ:
            continue
        entity = record.data["entity"]
        key = (record.txn, entity)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        author = record.data["version"][1]
        sources[(record.txn, entity, occurrence)] = author
    return sources


def flat_reads_match_recorded(
    records: Iterable[WalRecord],
    commit_order: "list[str] | None" = None,
) -> bool:
    """Does the mono-version flattening agree with recorded reads-from?

    Compares, for committed transactions only, each read's recorded
    author with the flat schedule's most-recent-earlier-write source.
    When ``True``, the classical RC/ACA/ST predicates speak for the
    actual execution.
    """
    records = list(records)
    committed_schedule = committed_projection(records, commit_order)
    if committed_schedule is None:
        return True
    committed = set(committed_schedule.schedule.transactions)
    flat = committed_schedule.schedule.read_sources()
    recorded = {
        key: author
        for key, author in recorded_reads_from(records).items()
        if key[0] in committed
    }
    for key, author in recorded.items():
        flat_author = flat.get(key)
        effective = author if author in committed else None
        if flat_author != effective:
            return False
    return True


def recorded_is_rc(
    records: Iterable[WalRecord],
    commit_order: "list[str] | None" = None,
) -> bool:
    """RC against the *recorded* (multi-version) reads-from relation.

    Every committed reader's committed sources must commit before the
    reader does (compared by COMMIT LSN).  This is the check that is
    faithful to the multi-version execution and must hold for every
    WAL a recovery pass accepts.
    """
    records = list(records)
    if commit_order is None:
        commit_order = _final_committed(records)
    commit_position = {
        name: index for index, name in enumerate(commit_order)
    }
    for (reader, __, ___), author in recorded_reads_from(
        records
    ).items():
        if reader not in commit_position:
            continue  # reader never (finally) committed
        if author is None or author == reader:
            continue
        if author not in commit_position:
            return False  # read from a never-committed transaction
        if commit_position[author] > commit_position[reader]:
            return False
    return True
