"""Durability: write-ahead log, checkpoints, and verified recovery.

The paper's opening criticism of serializability is that it admits
schedules hostile to crash recovery; :mod:`repro.schedules.recovery`
encodes the RC/ACA/ST hierarchy at the model level.  This package makes
the complementary systems argument: it gives the Section-5 transaction
manager a write-ahead log with group commit, periodic checkpoints, and
a recovery pass whose result is *verified* — the recovered state must
be exactly the committed prefix of the pre-crash execution and satisfy
the database consistency predicate, or the service refuses to start.

Layout
------
``records``     WAL record types, JSONL encoding, checksums.
``crashpoints`` Fault-injection hooks (``CrashPoint``) used by tests.
``wal``         The append-only segmented log with group commit.
``snapshot``    Atomic checkpoint files with retention.
``state``       The logical replay state (redo, undo, materialize).
``recovery``    The recovery pass plus independent verification.
``manager``     :class:`DurableTransactionManager` — WAL-backed §5.
``harness``     Crash-simulation harness driving the crash points.
``history``     WAL records → flat schedules for RC/ACA/ST checks.
``shard_recovery``  In-doubt 2PC resolution over per-shard WALs.
"""

from .crashpoints import CRASH_POINTS, CrashPoints, SimulatedCrash
from .harness import CrashOutcome, simulate_crash
from .manager import DurableTransactionManager
from .records import WalRecord
from .recovery import RecoveryResult, recover
from .shard_recovery import (
    ShardedRecoveryResult,
    is_sharded_layout,
    list_shard_dirs,
    recover_sharded,
    resolve_in_doubt,
    shard_wal_dir,
)
from .wal import WriteAheadLog

__all__ = [
    "CRASH_POINTS",
    "CrashOutcome",
    "CrashPoints",
    "DurableTransactionManager",
    "RecoveryResult",
    "ShardedRecoveryResult",
    "SimulatedCrash",
    "WalRecord",
    "WriteAheadLog",
    "is_sharded_layout",
    "list_shard_dirs",
    "recover",
    "recover_sharded",
    "resolve_in_doubt",
    "shard_wal_dir",
    "simulate_crash",
]
