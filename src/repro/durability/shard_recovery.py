"""Cross-shard recovery: resolve in-doubt 2PC branches, then recover.

A sharded server lays its durability out as one WAL directory per
shard (``<base>/shard0``, ``<base>/shard1``, …), each a completely
ordinary single-manager WAL that :func:`~repro.durability.recovery.recover`
understands on its own.  The only cross-shard state is the two-phase
commit protocol: a branch that logged a durable PREPARE but no terminal
record is *in doubt* — its fate was decided (or not) on the coordinator
shard, whose branch's COMMIT record **is** the decision record (there
is no separate coordinator log; phase 2 commits the coordinator branch
first, so its terminal state is authoritative).

Resolution therefore runs *before* the per-shard recovery passes:

1. replay every shard's checkpoint + WAL suffix (redo only, no undo)
   to find prepared-but-unterminated branches;
2. for each, consult the coordinator shard's replayed state: if the
   coordinator branch committed, the global decision was commit —
   append a genuine COMMIT record to the in-doubt shard's WAL so its
   own recovery replays a complete history; otherwise leave the branch
   alone and let ``undo_in_flight`` abort it (presumed abort).

After resolution each shard recovers independently and the standard
verification (committed-prefix equality, consistency, Section-5
predicates) runs per shard; :func:`recover_sharded` wraps the whole
sequence.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import RecoveryError
from ..obs.metrics import MetricsRegistry
from .records import OP_COMMIT
from .snapshot import CheckpointStore
from .state import LogicalState, TxnState
from .recovery import RecoveryResult, recover
from .wal import WriteAheadLog, scan_wal, truncate_torn_tail

_SHARD_DIR = re.compile(r"^shard(\d+)$")


def shard_wal_dir(base_dir: "Path | str", index: int) -> Path:
    """The WAL directory of shard ``index`` under ``base_dir``."""
    return Path(base_dir) / f"shard{index}"


def list_shard_dirs(base_dir: "Path | str") -> list[tuple[int, Path]]:
    """``(index, path)`` for every shard directory, ordered by index."""
    base = Path(base_dir)
    if not base.is_dir():
        return []
    found = []
    for child in base.iterdir():
        match = _SHARD_DIR.match(child.name)
        if match is not None and child.is_dir():
            found.append((int(match.group(1)), child))
    return sorted(found)


def is_sharded_layout(base_dir: "Path | str") -> bool:
    """Whether ``base_dir`` is a sharded WAL base (vs a plain WAL dir)."""
    return bool(list_shard_dirs(base_dir))


# ---------------------------------------------------------------------------
# In-doubt resolution
# ---------------------------------------------------------------------------


def _replay_shard(wal_dir: Path) -> tuple[LogicalState, int]:
    """Checkpoint + WAL-suffix redo for one shard, **without** undo.

    Prepared branches must be judged against what the log *records*,
    not against what undo would roll back — undo is exactly the step
    that presumed-abort resolution decides to run or pre-empt.  The
    torn tail is truncated here so a decision record appended later
    lands on a clean log.
    """
    loaded = CheckpointStore(wal_dir).load_newest()
    if loaded is None:
        raise RecoveryError(
            f"no usable checkpoint in {wal_dir} "
            "(corrupt, or not a WAL directory)"
        )
    checkpoint_state, checkpoint_lsn = loaded
    scan = scan_wal(wal_dir)
    truncate_torn_tail(scan)
    state = LogicalState.from_dict(checkpoint_state)
    expected = checkpoint_lsn + 1
    for record in scan.records:
        if record.lsn <= checkpoint_lsn:
            continue
        if record.lsn != expected:
            raise RecoveryError(
                f"WAL gap in {wal_dir}: expected lsn {expected}, "
                f"found {record.lsn}"
            )
        state.apply(record)
        expected += 1
    return state, max(checkpoint_lsn, scan.last_lsn)


def _in_doubt(state: LogicalState) -> list[TxnState]:
    """Branches that promised to commit but never heard the decision."""
    return [
        txn
        for txn in state.txns.values()
        if txn.prepared is not None and not txn.terminated
    ]


def _released_values(txn: TxnState) -> dict[str, int]:
    """What committing ``txn`` releases to its parent.

    Mirrors the live manager's commit: the merged child releases,
    overlaid with the branch's own final write values.
    """
    released = dict(txn.merged_child_writes)
    released.update(
        {entity: value for entity, (value, _seq) in txn.writes.items()}
    )
    return released


def resolve_in_doubt(
    base_dir: "Path | str",
) -> list[dict[str, Any]]:
    """Decide every in-doubt 2PC branch across a sharded WAL base.

    Returns one report entry per in-doubt branch::

        {"gid": ..., "txn": ..., "shard": ..., "coordinator": ...,
         "decision": "commit" | "abort"}

    Commit decisions are made durable immediately (a COMMIT record
    appended to the owning shard's WAL); abort decisions write nothing
    — presumed abort means the subsequent per-shard ``recover()`` pass
    rolls the branch back as ordinary in-flight work.
    """
    shards = list_shard_dirs(base_dir)
    if not shards:
        return []
    replayed: dict[int, tuple[LogicalState, int]] = {
        index: _replay_shard(path) for index, path in shards
    }
    resolutions: list[dict[str, Any]] = []
    # Commit decisions grouped per shard so each WAL is appended to
    # once, in lsn order.
    decided: dict[int, list[TxnState]] = {}
    for index, (state, _last_lsn) in replayed.items():
        for txn in _in_doubt(state):
            promise = txn.prepared or {}
            coordinator = promise.get("coordinator")
            participants = promise.get("participants", {})
            decision = "abort"
            coordinator_entry = replayed.get(coordinator)
            if coordinator_entry is not None:
                coordinator_branch = participants.get(str(coordinator))
                peer = coordinator_entry[0].txns.get(
                    coordinator_branch or ""
                )
                if peer is not None and peer.phase == "committed":
                    decision = "commit"
            if decision == "commit":
                decided.setdefault(index, []).append(txn)
            resolutions.append(
                {
                    "gid": promise.get("gid"),
                    "txn": txn.name,
                    "shard": index,
                    "coordinator": coordinator,
                    "decision": decision,
                }
            )
    for index, branches in decided.items():
        _state, last_lsn = replayed[index]
        wal = WriteAheadLog(
            shard_wal_dir(base_dir, index), next_lsn=last_lsn + 1
        )
        try:
            for txn in branches:
                wal.append(
                    OP_COMMIT,
                    txn.name,
                    {"released": _released_values(txn)},
                )
            wal.flush()
        finally:
            wal.close()
    return resolutions


# ---------------------------------------------------------------------------
# The full sharded pass
# ---------------------------------------------------------------------------


@dataclass
class ShardedRecoveryResult:
    """Per-shard recovery results plus the 2PC resolution report."""

    shards: dict[int, RecoveryResult]
    resolutions: list[dict[str, Any]] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        return all(
            result.verified for result in self.shards.values()
        )

    def summary(self) -> dict[str, Any]:
        return {
            "verified": self.verified,
            "shards": {
                str(index): result.summary()
                for index, result in sorted(self.shards.items())
            },
            "resolutions": list(self.resolutions),
        }


def recover_sharded(
    base_dir: "Path | str",
    *,
    verify: bool = True,
    strict: bool = False,
    registry: MetricsRegistry | None = None,
) -> ShardedRecoveryResult:
    """Resolve in-doubt branches, then recover every shard.

    Raises :class:`RecoveryError` if ``base_dir`` holds no shard
    directories — callers should route plain WAL directories to
    :func:`~repro.durability.recovery.recover` instead (see
    :func:`is_sharded_layout`).
    """
    shards = list_shard_dirs(base_dir)
    if not shards:
        raise RecoveryError(
            f"no shard directories under {base_dir} "
            "(expected shard0, shard1, …)"
        )
    resolutions = resolve_in_doubt(base_dir)
    results = {
        index: recover(
            path, verify=verify, strict=strict, registry=registry
        )
        for index, path in shards
    }
    return ShardedRecoveryResult(
        shards=results, resolutions=resolutions
    )
