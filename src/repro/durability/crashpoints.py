"""Crash-point fault injection for the durability subsystem.

A :class:`CrashPoint` is a named location in the WAL/checkpoint code
where a test can arm a simulated crash.  The instrumented code calls
:meth:`CrashPoints.check` (or :meth:`CrashPoints.hit` when it needs to
do partial work first, e.g. writing half a record); when the armed hit
count is reached a :class:`SimulatedCrash` propagates, abandoning all
in-memory state exactly as a SIGKILL would.  Recovery then runs against
whatever bytes "survived" — all written bytes for a process kill, only
fsynced bytes for a power loss (see :mod:`repro.durability.harness`).

The registry is instance-scoped (no global mutable state): production
code uses the inert :data:`NULL_CRASH_POINTS`, tests construct their
own registry and thread it through the WAL/checkpoint/manager stack.
"""

from __future__ import annotations

from ..errors import DurabilityError

CRASH_POINTS: tuple[str, ...] = (
    "wal.mid_record",
    "wal.before_flush",
    "wal.after_flush",
    "checkpoint.mid_write",
    "checkpoint.before_rename",
    "checkpoint.after_rename",
    "checkpoint.after_retention",
)
"""Every registered crash point, in rough execution order.

``wal.mid_record``
    Half of a WAL record's bytes reach the OS, then the crash — the
    torn-tail case replay must truncate.
``wal.before_flush`` / ``wal.after_flush``
    Either side of the group-commit fsync.
``checkpoint.mid_write``
    Partway through writing the checkpoint temp file.
``checkpoint.before_rename`` / ``checkpoint.after_rename``
    Either side of the atomic rename that publishes a checkpoint.
``checkpoint.after_retention``
    After old checkpoints were removed but before segment cleanup.
"""


class SimulatedCrash(BaseException):
    """An injected crash — deliberately *not* an :class:`Exception`.

    Deriving from :class:`BaseException` lets it pierce ``except
    Exception`` fault barriers (the server dispatcher's, pytest
    helpers'), the same way a real SIGKILL ignores them.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point}")
        self.point = point


class CrashPoints:
    """An armable registry of crash points.

    Arm a point with :meth:`arm`; the Nth time instrumented code hits
    it, the crash fires.  Hit counts for every point are recorded even
    when unarmed, so tests can discover how often each point is
    exercised by a given workload before sweeping it.
    """

    def __init__(self) -> None:
        self._armed: dict[str, int] = {}
        self.hits: dict[str, int] = {point: 0 for point in CRASH_POINTS}
        self.fired: str | None = None

    def arm(self, point: str, at_hit: int = 1) -> None:
        """Fire :class:`SimulatedCrash` on the ``at_hit``-th hit.

        The count is relative to *now*: hits recorded before arming
        (e.g. by a bootstrap checkpoint) do not bring the crash
        closer.
        """
        if point not in CRASH_POINTS:
            raise DurabilityError(f"unknown crash point {point!r}")
        if at_hit < 1:
            raise DurabilityError("at_hit must be >= 1")
        self._armed[point] = self.hits[point] + at_hit

    def disarm(self, point: str | None = None) -> None:
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def hit(self, point: str) -> bool:
        """Record a hit; return ``True`` when the caller must crash.

        Callers that need to do partial work before dying (torn
        records, half-written checkpoints) use the boolean and raise
        :class:`SimulatedCrash` themselves; everyone else should call
        :meth:`check`.
        """
        if point not in self.hits:
            raise DurabilityError(f"unknown crash point {point!r}")
        self.hits[point] += 1
        armed_at = self._armed.get(point)
        if armed_at is not None and self.hits[point] >= armed_at:
            del self._armed[point]
            self.fired = point
            return True
        return False

    def check(self, point: str) -> None:
        """Hit the point and raise :class:`SimulatedCrash` if armed."""
        if self.hit(point):
            raise SimulatedCrash(point)


NULL_CRASH_POINTS = CrashPoints()
"""A shared, never-armed registry for production paths.

Nothing ever arms it, so its only cost is the hit counters.
"""
