"""The segmented append-only write-ahead log with group commit.

Durability contract
-------------------
:meth:`WriteAheadLog.append` hands the encoded record to the OS
(``os.write``) before returning, so a *process* crash (SIGKILL) loses
nothing that was appended.  The ``fsync`` that makes records survive a
*power* loss is batched — group commit: durable records (commit, abort,
undo-commit) arm a flush deadline ``flush_interval`` seconds out, and
one fsync then covers every record appended since the previous flush.
``flush_interval <= 0`` degenerates to synchronous commit (fsync before
``append`` returns for durable records).

The log is segmented: ``wal-{first_lsn:012d}.jsonl``.  A new segment
starts at every open and at every checkpoint (:meth:`rotate`), so
checkpoint retention can drop whole segment files whose records are
all covered by the oldest retained checkpoint.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..errors import DurabilityError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from .crashpoints import NULL_CRASH_POINTS, CrashPoints, SimulatedCrash
from .records import TornRecord, WalRecord

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".jsonl"


def segment_name(first_lsn: int) -> str:
    return f"{SEGMENT_PREFIX}{first_lsn:012d}{SEGMENT_SUFFIX}"


def segment_first_lsn(path: Path) -> int:
    stem = path.name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise DurabilityError(
            f"not a WAL segment file name: {path.name}"
        ) from None


def list_segments(wal_dir: Path) -> list[Path]:
    """WAL segment files in LSN order."""
    return sorted(
        (
            path
            for path in wal_dir.iterdir()
            if path.name.startswith(SEGMENT_PREFIX)
            and path.name.endswith(SEGMENT_SUFFIX)
        ),
        key=segment_first_lsn,
    )


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# Scanning (recovery side)
# ---------------------------------------------------------------------------


@dataclass
class ScanResult:
    """Everything recovery needs to know about the on-disk log."""

    records: list[WalRecord]
    segments: list[Path]
    torn: tuple[Path, int] | None = None  # (path, bytes to keep)
    torn_reason: str | None = None

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else 0


def scan_wal(wal_dir: Path) -> ScanResult:
    """Read and verify every segment, detecting a torn tail.

    A damaged line is a *torn tail* only when it sits at the end of the
    newest segment with no valid record after it — the signature of a
    crash mid-append.  Damage anywhere else (or an LSN discontinuity)
    is corruption and raises :class:`DurabilityError`; recovery must
    not guess around missing history.
    """
    segments = list_segments(wal_dir)
    records: list[WalRecord] = []
    torn: tuple[Path, int] | None = None
    torn_reason: str | None = None
    for index, path in enumerate(segments):
        is_last = index == len(segments) - 1
        data = path.read_bytes()
        offset = 0
        expected_first = segment_first_lsn(path)
        saw_first = False
        while offset < len(data):
            newline = data.find(b"\n", offset)
            line = data[offset:newline] if newline >= 0 else data[offset:]
            line_complete = newline >= 0
            try:
                if not line_complete:
                    raise TornRecord("record not newline-terminated")
                record = WalRecord.decode(line)
            except TornRecord as error:
                if not is_last:
                    raise DurabilityError(
                        f"corrupt WAL record mid-log in {path.name}: "
                        f"{error}"
                    ) from None
                _require_no_valid_suffix(path, data, offset)
                torn = (path, offset)
                torn_reason = str(error)
                break
            if not saw_first:
                if record.lsn != expected_first:
                    raise DurabilityError(
                        f"segment {path.name} starts at lsn "
                        f"{record.lsn}, expected {expected_first}"
                    )
                saw_first = True
            if records and record.lsn != records[-1].lsn + 1:
                raise DurabilityError(
                    f"LSN discontinuity at {path.name}: "
                    f"{records[-1].lsn} -> {record.lsn}"
                )
            records.append(record)
            offset = newline + 1
        if torn is not None:
            break
    return ScanResult(
        records=records,
        segments=segments,
        torn=torn,
        torn_reason=torn_reason,
    )


def _require_no_valid_suffix(path: Path, data: bytes, offset: int) -> None:
    """A torn tail must be *tail*: no decodable record may follow."""
    rest = data[offset:]
    for line in rest.split(b"\n")[1:]:
        if not line:
            continue
        try:
            WalRecord.decode(line)
        except TornRecord:
            continue
        raise DurabilityError(
            f"corrupt record followed by a valid one in {path.name}; "
            "refusing to truncate non-tail damage"
        )


def read_batch(
    wal_dir: Path,
    after_lsn: int,
    *,
    up_to_lsn: int,
    max_records: int = 512,
) -> "list[WalRecord] | None":
    """Read records ``after_lsn < lsn <= up_to_lsn`` off the disk log.

    This is the replication ship cursor: it reads segment *files*, never
    the live appender, so the primary's single-threaded manager is
    untouched.  Damaged or incomplete lines simply end the batch — the
    caller only asks for LSNs at or below the primary's ``durable_lsn``,
    which are guaranteed whole, so a short read just means the bytes are
    still in flight.

    Returns ``None`` when the cursor is *lost*: checkpoint retention has
    deleted the segment holding ``after_lsn + 1``, so the caller must
    fall back to snapshot shipping.
    """
    if after_lsn >= up_to_lsn:
        return []
    segments = list_segments(wal_dir)
    if not segments:
        return None
    want = after_lsn + 1
    start_index: int | None = None
    for index, path in enumerate(segments):
        if segment_first_lsn(path) <= want:
            start_index = index
        else:
            break
    if start_index is None:
        return None  # history before the oldest retained segment
    batch: list[WalRecord] = []
    for path in segments[start_index:]:
        data = path.read_bytes()
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                break  # in-flight append; stop cleanly
            try:
                record = WalRecord.decode(data[offset:newline])
            except TornRecord:
                break  # torn tail; nothing durable beyond it
            offset = newline + 1
            if record.lsn <= after_lsn:
                continue
            if record.lsn != want:
                return None  # hole: cursor points into dropped history
            if record.lsn > up_to_lsn:
                return batch
            batch.append(record)
            want = record.lsn + 1
            if len(batch) >= max_records:
                return batch
    return batch


def truncate_torn_tail(scan: ScanResult) -> bool:
    """Physically truncate a torn tail found by :func:`scan_wal`."""
    if scan.torn is None:
        return False
    path, keep = scan.torn
    with open(path, "rb+") as handle:
        handle.truncate(keep)
        handle.flush()
        os.fsync(handle.fileno())
    return True


# ---------------------------------------------------------------------------
# Appending (service side)
# ---------------------------------------------------------------------------


class WriteAheadLog:
    """Appender over a fresh segment starting at ``next_lsn``.

    The appender never reopens old segments — recovery truncates any
    torn tail *before* constructing one, and each open starts a new
    segment file, so the append path is purely sequential.
    """

    def __init__(
        self,
        wal_dir: "Path | str",
        *,
        next_lsn: int = 1,
        flush_interval: float = 0.0,
        segment_bytes: int = 0,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        crash_points: CrashPoints | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._dir = Path(wal_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._next_lsn = next_lsn
        self.flush_interval = flush_interval
        #: Roll to a new segment once the current one reaches this many
        #: bytes (0 = only roll at checkpoints).  Keeps ship batches and
        #: tail scans bounded.
        self.segment_bytes = segment_bytes
        #: Called with the new durable LSN after every fsync that made
        #: records durable — the replication shipper's wakeup.
        self.on_flush: Callable[[int], None] | None = None
        self._durable_lsn = next_lsn - 1
        self._registry = registry
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: (txn, causal parent span id, lsn) of durable records whose
        #: fsync is still pending; drained by :meth:`flush` into one
        #: ``wal.fsync`` span per waiting transaction.
        self._pending_durable: list[tuple[str, int | None, int]] = []
        self._points = (
            crash_points if crash_points is not None else NULL_CRASH_POINTS
        )
        self._clock = clock
        self._fd: int | None = None
        self._path: Path | None = None
        # Reused across appends: records serialise straight into this
        # buffer (see WalRecord.encode_into), so the append path
        # allocates no per-record line objects.
        self._encode_buffer = bytearray()
        self._written = 0  # bytes handed to the OS, current segment
        self._durable = 0  # bytes known fsynced, current segment
        self._pending_records = 0
        self._flush_due: float | None = None
        self._durable_lengths: dict[str, int] = {}
        self._open_segment()

    # -- lifecycle ---------------------------------------------------------

    def _open_segment(self) -> None:
        path = self._dir / segment_name(self._next_lsn)
        if path.exists():
            # A crash right after rotation (or a torn tail truncated to
            # nothing) leaves an empty segment with this exact name;
            # adopt its slot.  A non-empty one would mean the caller
            # skipped recovery.
            if path.stat().st_size == 0:
                path.unlink()
            else:
                raise DurabilityError(
                    f"segment {path.name} already exists"
                )
        self._fd = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
        )
        self._path = path
        self._written = 0
        self._durable = 0
        self._pending_records = 0
        self._flush_due = None
        self._durable_lengths[path.name] = 0
        # Make the segment file itself durable (its name in the dir).
        _fsync_dir(self._dir)

    def rotate(self) -> None:
        """Flush and start a new segment (called at checkpoint)."""
        self._require_open()
        self.flush()
        assert self._fd is not None and self._path is not None
        os.close(self._fd)
        self._fd = None
        self._open_segment()

    def close(self) -> None:
        if self._fd is None:
            return
        try:
            self.flush()
        finally:
            os.close(self._fd)
            self._fd = None

    @property
    def closed(self) -> bool:
        return self._fd is None

    def _require_open(self) -> None:
        if self._fd is None:
            raise DurabilityError("WAL is closed")

    # -- append ------------------------------------------------------------

    def append(self, op: str, txn: str, data: dict[str, Any]) -> WalRecord:
        """Append one record; bytes reach the OS before returning.

        Durable ops arm the group-commit flush deadline (or fsync
        immediately when ``flush_interval <= 0``).
        """
        self._require_open()
        assert self._fd is not None
        record = WalRecord(self._next_lsn, op, txn, data)
        buffer = self._encode_buffer
        buffer.clear()
        length = record.encode_into(buffer)
        if self._points.hit("wal.mid_record"):
            # A torn write: half the record reaches the OS, then death.
            os.write(self._fd, memoryview(buffer)[: max(1, length // 2)])
            raise SimulatedCrash("wal.mid_record")
        os.write(self._fd, buffer)
        self._next_lsn += 1
        self._written += length
        self._pending_records += 1
        if self._registry is not None:
            self._registry.counter("wal.records").inc()
            self._registry.counter("wal.bytes").inc(length)
        if record.durable:
            if self._tracer.enabled:
                # Capture the causal parent *now* — the commit/abort
                # request span is still open — for the fsync span that
                # will only be recorded when the group flushes.
                self._pending_durable.append(
                    (txn, self._tracer.current_span_id(txn), record.lsn)
                )
            if self.flush_interval <= 0:
                self.flush()
            elif self._flush_due is None:
                self._flush_due = self._clock() + self.flush_interval
        if self.segment_bytes > 0 and self._written >= self.segment_bytes:
            self.rotate()
        return record

    # -- group commit ------------------------------------------------------

    def flush(self) -> int:
        """fsync pending bytes; returns how many records became durable."""
        self._require_open()
        assert self._fd is not None and self._path is not None
        if self._durable == self._written:
            self._flush_due = None
            self._pending_records = 0
            self._pending_durable.clear()
            self._durable_lsn = self._next_lsn - 1
            return 0
        batch = self._pending_records
        self._points.check("wal.before_flush")
        started = self._clock()
        os.fsync(self._fd)
        finished = self._clock()
        elapsed_ms = (finished - started) * 1000.0
        self._durable = self._written
        self._durable_lengths[self._path.name] = self._durable
        self._pending_records = 0
        self._flush_due = None
        if self._registry is not None:
            self._registry.counter("wal.fsyncs").inc()
            self._registry.histogram("wal.flush.latency_ms").observe(
                elapsed_ms
            )
            self._registry.histogram("wal.flush.batch_records").observe(
                batch
            )
        if self._pending_durable:
            # One fsync made every waiting transaction durable; give
            # each its own span, parented where its record was appended
            # (that request span may have closed already — group
            # commit outlives the commit reply by design).
            for txn, parent, lsn in self._pending_durable:
                self._tracer.record(
                    "wal.fsync",
                    txn,
                    start=started,
                    end=finished,
                    parent=parent,
                    lsn=lsn,
                    batch_records=batch,
                )
            self._pending_durable.clear()
        self._points.check("wal.after_flush")
        self._durable_lsn = self._next_lsn - 1
        if self.on_flush is not None:
            self.on_flush(self._durable_lsn)
        return batch

    def maybe_flush(self) -> int:
        """Flush if the group-commit deadline has passed."""
        if self._flush_due is not None and self._clock() >= self._flush_due:
            return self.flush()
        return 0

    # -- introspection -----------------------------------------------------

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def durable_lsn(self) -> int:
        """Highest LSN known fsynced — the replication ship horizon."""
        return self._durable_lsn

    @property
    def pending_records(self) -> int:
        return self._pending_records

    @property
    def flush_due(self) -> float | None:
        return self._flush_due

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def current_segment(self) -> Path | None:
        return self._path

    def durable_lengths(self) -> dict[str, int]:
        """Per-segment byte counts known to have reached stable storage.

        Only segments this appender wrote appear; older segments (from
        previous incarnations) were flushed before their rotation and
        are fully durable.  The crash harness uses this map to simulate
        a power loss by truncating surviving copies to durable length.
        """
        lengths = dict(self._durable_lengths)
        for name in list(lengths):
            if self._path is not None and name == self._path.name:
                continue
            # Rotated-away segments were flushed on rotate/close.
            path = self._dir / name
            if path.exists():
                lengths[name] = path.stat().st_size
        return lengths


def cleanup_segments(wal_dir: Path, safe_lsn: int) -> list[Path]:
    """Delete segments whose records are all ``<= safe_lsn``.

    ``safe_lsn`` is the oldest *retained* checkpoint's last LSN: every
    record at or below it is reachable from a checkpoint, so segments
    entirely below the next segment's start can go.  The newest segment
    is never deleted.
    """
    segments = list_segments(wal_dir)
    removed: list[Path] = []
    for path, successor in zip(segments, segments[1:]):
        if segment_first_lsn(successor) <= safe_lsn + 1:
            path.unlink()
            removed.append(path)
        else:
            break
    return removed
