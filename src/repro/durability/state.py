"""The logical replay state: redo, undo, and materialization.

:class:`LogicalState` is the durable image of a running
:class:`~repro.protocol.scheduler.TransactionManager`: the schema, the
consistency constraint, every live version, and every transaction
record (phase, assigned versions, reads-from, writes, relative-commit
releases).  It is plain JSON-able data, captured two ways:

* :meth:`from_manager` — a checkpoint of a live manager;
* :meth:`apply` — redo of one WAL record during replay.

Recovery composes them: load the newest checkpoint, :meth:`apply` the
WAL suffix, :meth:`undo_in_flight` to abort whatever the crash caught
mid-execution (cascading through the *recorded* reads-from relation —
exactly the phenomenon the RC/ACA/ST hierarchy of
:mod:`repro.schedules.recovery` classifies), then :meth:`materialize`
a fresh manager whose records are resurrected from the survivors so
the Section-5 verification predicates (``verify_parent_based``,
``verify_correctness``) can run against the recovered state.

One deliberate divergence from the live manager: the runtime
:meth:`~repro.protocol.scheduler.TransactionManager.abort` of an
already-committed child leaves the child's released values merged into
the parent's world view (its versions are expunged but the values
linger).  Recovery instead rebuilds every parent's world view from the
release log of *finally committed, surviving* children only — the
recovered state is the clean committed prefix, which is also what the
independent verification fold computes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from ..core.entities import Domain, Entity, Schema
from ..core.predicates import Predicate
from ..core.states import UniqueState
from ..core.transactions import Spec
from ..errors import RecoveryError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..protocol.scheduler import (
    TransactionManager,
    TxnPhase,
    TxnRecord,
)
from ..protocol.validation import VersionSelector
from ..storage.database import Database
from ..storage.version_store import Version, VersionStore
from .records import (
    OP_ABORT,
    OP_COMMIT,
    OP_DEFINE,
    OP_PREPARE,
    OP_READ,
    OP_REASSIGN,
    OP_UNDO_COMMIT,
    OP_VALIDATE,
    OP_WRITE,
    WalRecord,
)

VersionRef = tuple[int, "str | None", int]  # (value, author, sequence)


def _ref(version: Version) -> list[Any]:
    return [version.value, version.author, version.sequence]


@dataclass
class TxnState:
    """The durable image of one transaction record."""

    name: str
    parent: str | None
    phase: str
    update_set: list[str]
    input_constraint: str
    output_condition: str
    children: list[str] = field(default_factory=list)
    order_pairs: list[list[str]] = field(default_factory=list)
    child_counter: int = 0
    did_data_access: bool = False
    assigned: dict[str, list[Any]] = field(default_factory=dict)
    read_items: list[str] = field(default_factory=list)
    read_versions: dict[str, list[Any]] = field(default_factory=dict)
    writes: dict[str, list[Any]] = field(default_factory=dict)
    release_log: list[list[Any]] = field(default_factory=list)
    merged_child_writes: dict[str, int] = field(default_factory=dict)
    in_flight_writes: list[str] = field(default_factory=list)
    commit_lsn: int | None = None
    #: 2PC phase-1 promise: ``{"gid", "participants", "coordinator"}``
    #: from the PREPARE record, or ``None``.  Serialised only when set
    #: so single-shard checkpoints stay byte-identical to the old
    #: format.
    prepared: dict[str, Any] | None = None

    @property
    def terminated(self) -> bool:
        return self.phase in ("committed", "aborted")

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "name": self.name,
            "parent": self.parent,
            "phase": self.phase,
            "update_set": self.update_set,
            "input_constraint": self.input_constraint,
            "output_condition": self.output_condition,
            "children": self.children,
            "order_pairs": self.order_pairs,
            "child_counter": self.child_counter,
            "did_data_access": self.did_data_access,
            "assigned": self.assigned,
            "read_items": self.read_items,
            "read_versions": self.read_versions,
            "writes": self.writes,
            "release_log": self.release_log,
            "merged_child_writes": self.merged_child_writes,
            "in_flight_writes": self.in_flight_writes,
            "commit_lsn": self.commit_lsn,
        }
        if self.prepared is not None:
            payload["prepared"] = self.prepared
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TxnState":
        return cls(**payload)


@dataclass
class UndoReport:
    """What :meth:`LogicalState.undo_in_flight` had to roll back."""

    aborted_in_flight: list[str] = field(default_factory=list)
    cascaded_aborts: list[str] = field(default_factory=list)
    cascaded_commits: list[str] = field(default_factory=list)
    expunged_versions: int = 0

    @property
    def all_dead(self) -> list[str]:
        return (
            self.aborted_in_flight
            + self.cascaded_aborts
            + self.cascaded_commits
        )


def _domain_to_dict(domain: Domain) -> dict[str, Any]:
    if domain.values is not None:
        return {"values": sorted(domain.values)}
    return {"low": domain.low, "high": domain.high}


def _domain_from_dict(payload: dict[str, Any]) -> Domain:
    if "values" in payload:
        return Domain(values=frozenset(payload["values"]))
    return Domain(low=payload["low"], high=payload["high"])


class LogicalState:
    """JSON-able logical state of a manager plus its version store."""

    def __init__(
        self,
        schema_spec: dict[str, dict[str, Any]],
        constraint: str,
        initial: dict[str, int],
        next_sequence: int,
        versions: "list[list[Any]]",
        txns: dict[str, TxnState],
        root: str,
    ) -> None:
        self.schema_spec = schema_spec
        self.constraint = constraint
        self.initial = initial
        self.next_sequence = next_sequence
        # entity -> [ [value, author, sequence], ... ] in creation order
        self.versions: dict[str, list[list[Any]]] = {
            name: [] for name in schema_spec
        }
        for entity, value, author, sequence in versions:
            self.versions[entity].append([value, author, sequence])
        self.txns = txns
        self.root = root

    # -- construction ------------------------------------------------------

    @classmethod
    def from_manager(cls, manager: TransactionManager) -> "LogicalState":
        db = manager.database
        schema = db.schema
        snapshot = db.store.snapshot()
        txns: dict[str, TxnState] = {}
        for record in manager.iter_records():
            txns[record.name] = cls._txn_from_record(record)
        return cls(
            schema_spec={
                name: _domain_to_dict(schema[name].domain)
                for name in schema.names
            },
            constraint=str(db.constraint),
            initial={
                name: db.initial_state[name] for name in schema.names
            },
            next_sequence=snapshot["next_sequence"],
            versions=snapshot["versions"],
            txns=txns,
            root=manager.root,
        )

    @staticmethod
    def _txn_from_record(record: TxnRecord) -> TxnState:
        assigned = {
            item: _ref(version)
            for item, version in record.assigned.items()
        }
        return TxnState(
            name=record.name,
            parent=record.parent,
            phase=record.phase.value,
            update_set=sorted(record.update_set),
            input_constraint=str(record.spec.input_constraint),
            output_condition=str(record.spec.output_condition),
            children=list(record.children),
            order_pairs=sorted(
                [a, b] for a, b in record.order_pairs
            ),
            child_counter=record.child_counter,
            did_data_access=record.did_data_access,
            assigned=assigned,
            read_items=sorted(record.read_items),
            read_versions={
                item: assigned[item]
                for item in sorted(record.read_items)
                if item in assigned
            },
            writes={
                entity: [version.value, version.sequence]
                for entity, version in record.writes.items()
            },
            release_log=[
                [child, dict(released)]
                for child, released in record.release_log
            ],
            merged_child_writes=dict(record.merged_child_writes),
            in_flight_writes=sorted(record.in_flight_writes),
        )

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        rows = sorted(
            (
                [entity, value, author, sequence]
                for entity, triples in self.versions.items()
                for value, author, sequence in triples
            ),
            key=lambda row: row[3],
        )
        return {
            "schema": self.schema_spec,
            "constraint": self.constraint,
            "initial": self.initial,
            "store": {
                "next_sequence": self.next_sequence,
                "versions": rows,
            },
            "txns": {
                name: txn.to_dict() for name, txn in self.txns.items()
            },
            "root": self.root,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "LogicalState":
        try:
            return cls(
                schema_spec=payload["schema"],
                constraint=payload["constraint"],
                initial=payload["initial"],
                next_sequence=payload["store"]["next_sequence"],
                versions=payload["store"]["versions"],
                txns={
                    name: TxnState.from_dict(txn)
                    for name, txn in payload["txns"].items()
                },
                root=payload["root"],
            )
        except (KeyError, TypeError) as error:
            raise RecoveryError(
                f"malformed checkpoint state: {error}"
            ) from None

    def clone(self) -> "LogicalState":
        return LogicalState.from_dict(copy.deepcopy(self.to_dict()))

    # -- redo --------------------------------------------------------------

    def apply(self, record: WalRecord) -> None:
        """Redo one WAL record against this state."""
        handler = {
            OP_DEFINE: self._apply_define,
            OP_VALIDATE: self._apply_validate,
            OP_REASSIGN: self._apply_reassign,
            OP_READ: self._apply_read,
            OP_WRITE: self._apply_write,
            OP_COMMIT: self._apply_commit,
            OP_UNDO_COMMIT: self._apply_undo_commit,
            OP_ABORT: self._apply_abort,
            OP_PREPARE: self._apply_prepare,
        }[record.op]
        handler(record)

    def _txn(self, name: str) -> TxnState:
        try:
            return self.txns[name]
        except KeyError:
            raise RecoveryError(
                f"WAL references unknown transaction {name!r}"
            ) from None

    def _apply_define(self, record: WalRecord) -> None:
        data = record.data
        parent = self._txn(data["parent"])
        name = record.txn
        if name in self.txns:
            raise RecoveryError(f"duplicate DEFINE for {name}")
        parent.children.append(name)
        suffix = int(name.rsplit(".", 1)[1])
        parent.child_counter = max(parent.child_counter, suffix + 1)
        for pred in data["predecessors"]:
            parent.order_pairs.append([pred, name])
        for succ in data["successors"]:
            parent.order_pairs.append([name, succ])
        self.txns[name] = TxnState(
            name=name,
            parent=data["parent"],
            phase="defined",
            update_set=list(data["update_set"]),
            input_constraint=data["input_constraint"],
            output_condition=data["output_condition"],
        )

    def _apply_validate(self, record: WalRecord) -> None:
        txn = self._txn(record.txn)
        txn.assigned = dict(record.data["assigned"])
        txn.phase = "validated"

    def _apply_reassign(self, record: WalRecord) -> None:
        txn = self._txn(record.txn)
        txn.assigned = dict(record.data["assigned"])

    def _apply_read(self, record: WalRecord) -> None:
        txn = self._txn(record.txn)
        entity = record.data["entity"]
        if entity not in txn.read_items:
            txn.read_items.append(entity)
        txn.read_versions[entity] = list(record.data["version"])
        txn.did_data_access = True

    def _apply_write(self, record: WalRecord) -> None:
        txn = self._txn(record.txn)
        entity = record.data["entity"]
        value = record.data["value"]
        sequence = record.data["sequence"]
        if sequence != self.next_sequence:
            raise RecoveryError(
                f"WRITE lsn={record.lsn} expects sequence {sequence} "
                f"but replay is at {self.next_sequence} — "
                "non-deterministic replay"
            )
        self.next_sequence += 1
        self.versions[entity].append([value, record.txn, sequence])
        txn.writes[entity] = [value, sequence]
        txn.did_data_access = True

    def _apply_prepare(self, record: WalRecord) -> None:
        """Redo a 2PC phase-1 promise.

        The branch's protocol phase is untouched — a prepared branch
        that never hears the decision is in-doubt, and
        :meth:`undo_in_flight` aborts it (presumed abort) unless the
        sharded recovery pass resolved it to commit first by consulting
        the coordinator shard's log.
        """
        txn = self._txn(record.txn)
        txn.prepared = dict(record.data)

    def _apply_commit(self, record: WalRecord) -> None:
        txn = self._txn(record.txn)
        txn.phase = "committed"
        txn.commit_lsn = record.lsn
        released = dict(record.data["released"])
        if txn.parent is not None:
            parent = self._txn(txn.parent)
            parent.release_log.append([txn.name, released])
            parent.merged_child_writes.update(released)

    def _apply_undo_commit(self, record: WalRecord) -> None:
        txn = self._txn(record.txn)
        txn.phase = "validated"
        txn.commit_lsn = None
        if txn.parent is not None:
            parent = self._txn(txn.parent)
            parent.release_log = [
                entry
                for entry in parent.release_log
                if entry[0] != txn.name
            ]
            rebuilt: dict[str, int] = {}
            for __, released in parent.release_log:
                rebuilt.update(released)
            parent.merged_child_writes = rebuilt

    def _apply_abort(self, record: WalRecord) -> None:
        for name in record.data["aborted"]:
            self._txn(name).phase = "aborted"
        dead = {
            (entity, sequence)
            for entity, sequence in map(tuple, record.data["expunged"])
        }
        if dead:
            for entity, triples in self.versions.items():
                self.versions[entity] = [
                    triple
                    for triple in triples
                    if (entity, triple[2]) not in dead
                ]

    # -- undo --------------------------------------------------------------

    def undo_in_flight(self) -> UndoReport:
        """Abort everything the crash caught mid-execution, cascading.

        Death spreads three ways and runs to fixpoint:

        * downward — a dead transaction's whole subtree dies (its
          children's commits were only relative to it);
        * upward — a dead transaction that had *committed* into a
          committed parent taints the parent's merged world, so the
          parent dies too (the cascading-rollback phenomenon);
        * sideways — any survivor whose *recorded reads-from* edge
          points at an expunged version dies (RC enforcement: nobody
          may have read state that no longer exists).
        """
        report = UndoReport()
        was_committed = {
            name
            for name, txn in self.txns.items()
            if txn.phase == "committed"
        }
        dead: set[str] = set()
        frontier = [
            name
            for name, txn in self.txns.items()
            if name != self.root and not txn.terminated
        ]
        in_flight = set(frontier)
        while frontier:
            next_frontier: list[str] = []
            for name in frontier:
                if name in dead:
                    continue
                dead.add(name)
                txn = self.txns[name]
                next_frontier.extend(txn.children)
                if (
                    name in was_committed
                    and txn.parent is not None
                    and txn.parent != self.root
                    and txn.parent in was_committed
                ):
                    next_frontier.append(txn.parent)
            frontier = [n for n in next_frontier if n not in dead]
            if frontier:
                continue
            # Sideways: reads-from edges into versions that die with
            # the current dead set.
            dead_refs = {
                (entity, triple[2])
                for entity, triples in self.versions.items()
                for triple in triples
                if triple[1] in dead
            }
            for name, txn in self.txns.items():
                if name in dead or txn.phase == "aborted":
                    continue
                if name == self.root:
                    continue
                for entity, ref in txn.read_versions.items():
                    if (entity, ref[2]) in dead_refs:
                        frontier.append(name)
                        break

        for entity, triples in self.versions.items():
            kept = [t for t in triples if t[1] not in dead]
            report.expunged_versions += len(triples) - len(kept)
            self.versions[entity] = kept
        for name in sorted(dead):
            txn = self.txns[name]
            txn.phase = "aborted"
            txn.in_flight_writes = []
            if name in was_committed:
                report.cascaded_commits.append(name)
            elif name in in_flight:
                report.aborted_in_flight.append(name)
            else:
                report.cascaded_aborts.append(name)

        # Rebuild every surviving parent's world view from the release
        # log of finally-committed children only (clean semantics; see
        # the module docstring).
        for txn in self.txns.values():
            surviving = [
                entry
                for entry in txn.release_log
                if self.txns[entry[0]].phase == "committed"
            ]
            txn.release_log = surviving
            rebuilt: dict[str, int] = {}
            for __, released in surviving:
                rebuilt.update(released)
            txn.merged_child_writes = rebuilt
        return report

    # -- views -------------------------------------------------------------

    def committed_names(self) -> list[str]:
        """Surviving committed transactions, in commit order."""
        committed = [
            txn
            for txn in self.txns.values()
            if txn.phase == "committed"
        ]
        committed.sort(key=lambda txn: txn.commit_lsn or 0)
        return [txn.name for txn in committed]

    def root_view(self) -> dict[str, int]:
        """The root's world view: initial values + merged releases."""
        view = dict(self.initial)
        view.update(self.txns[self.root].merged_child_writes)
        return view

    # -- materialization ---------------------------------------------------

    def build_schema(self) -> Schema:
        return Schema(
            Entity(name, _domain_from_dict(spec))
            for name, spec in self.schema_spec.items()
        )

    def materialize(
        self,
        *,
        selector: VersionSelector | None = None,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        strict: bool = False,
        manager_class: type[TransactionManager] = TransactionManager,
        **manager_kwargs: Any,
    ) -> TransactionManager:
        """Resurrect a live manager over this state.

        The returned manager serves new transactions against the
        recovered world: the root's child counter continues (no name
        reuse — a reused name would let a future abort expunge a
        recovered transaction's versions), the release log and merged
        world view are restored, and every recorded transaction is
        rebuilt so the Section-5 verification predicates can run.
        """
        schema = self.build_schema()
        constraint = Predicate.parse(self.constraint)
        store = VersionStore.from_snapshot(
            schema,
            {
                "next_sequence": self.next_sequence,
                "versions": sorted(
                    (
                        [entity, value, author, sequence]
                        for entity, triples in self.versions.items()
                        for value, author, sequence in triples
                    ),
                    key=lambda row: row[3],
                ),
            },
        )
        database = Database.from_parts(
            schema,
            constraint,
            UniqueState(schema, dict(self.initial)),
            store,
        )
        root_state = self.txns[self.root]
        manager = manager_class(
            database,
            selector=selector,
            root_spec=Spec(
                Predicate.parse(root_state.input_constraint),
                Predicate.parse(root_state.output_condition),
            ),
            tracer=tracer,
            registry=registry,
            strict=strict,
            # The recovered root's label (shard managers use a custom
            # one) so resurrected and future names share a namespace.
            root_name=self.root,
            **manager_kwargs,
        )
        # Resurrection reaches into the manager's record table: the
        # durability layer is the one component allowed to rebuild
        # protocol state it previously persisted.
        records = manager._records
        root_record = records[self.root]
        self._restore_common(root_record, root_state)
        for name, txn_state in self.txns.items():
            if name == self.root:
                continue
            record = TxnRecord(
                name=name,
                parent=txn_state.parent,
                spec=Spec(
                    Predicate.parse(txn_state.input_constraint),
                    Predicate.parse(txn_state.output_condition),
                ),
                update_set=frozenset(txn_state.update_set),
                phase=TxnPhase(txn_state.phase),
            )
            record.assigned = {
                item: Version(item, value, author, sequence)
                for item, (value, author, sequence) in sorted(
                    txn_state.assigned.items()
                )
            }
            record.read_items = set(txn_state.read_items)
            record.writes = {
                entity: Version(entity, value, name, sequence)
                for entity, (value, sequence) in sorted(
                    txn_state.writes.items()
                )
            }
            self._restore_common(record, txn_state)
            # Adoption (not a bare table insert) keeps the manager's
            # live-transaction set and fast-path caches coherent.
            manager._adopt_record(record)
        return manager

    @staticmethod
    def _restore_common(record: TxnRecord, txn_state: TxnState) -> None:
        record.children = list(txn_state.children)
        record.order_pairs = {
            (a, b) for a, b in txn_state.order_pairs
        }
        record.child_counter = txn_state.child_counter
        record.did_data_access = txn_state.did_data_access
        record.merged_child_writes = dict(txn_state.merged_child_writes)
        record.release_log = [
            (child, dict(released))
            for child, released in txn_state.release_log
        ]
