"""WAL record types and their JSONL wire format.

The log is *logical*: one record per successful manager operation, at
the granularity of the Section-5 protocol's own API (define, validate,
read, write, commit, abort, …), not physical page images.  Replay is
therefore a deterministic re-application of protocol state transitions
— and because the manager's version sequence stamps are restored across
checkpoints (see :attr:`VersionStore.sequence_watermark`), every WRITE
record's logged stamp must reproduce exactly, which replay asserts.

Wire format: one JSON object per line,

    {"lsn": 17, "op": "commit", "txn": "t.3", "data": {...}, "crc": N}

``crc`` is the CRC-32 of the canonical JSON of the other four fields.
A record that fails to parse or checksum at the *tail* of the newest
segment is a torn write (crash mid-append) and is truncated; anywhere
else it is corruption and recovery refuses to proceed.
"""

from __future__ import annotations

import json
import re
import zlib
from dataclasses import dataclass
from typing import Any

from ..errors import DurabilityError

# Logical operation kinds, mirroring the manager's API.
OP_DEFINE = "define"
OP_VALIDATE = "validate"
OP_REASSIGN = "reassign"
OP_READ = "read"
OP_WRITE = "write"
OP_COMMIT = "commit"
OP_UNDO_COMMIT = "undo_commit"
OP_ABORT = "abort"
#: Two-phase commit, phase 1: the shard promises to commit this branch
#: if the coordinator decides commit.  ``data`` carries the global
#: transaction id, the participant branch names keyed by shard, and the
#: coordinator shard — enough for recovery to resolve the branch
#: in-doubt (presumed abort) against the coordinator shard's decision.
OP_PREPARE = "prepare"

ALL_OPS = frozenset(
    {
        OP_DEFINE,
        OP_VALIDATE,
        OP_REASSIGN,
        OP_READ,
        OP_WRITE,
        OP_COMMIT,
        OP_UNDO_COMMIT,
        OP_ABORT,
        OP_PREPARE,
    }
)

#: Ops whose loss would lose an acknowledged state transition a client
#: may have observed — these schedule a group-commit flush.  PREPARE is
#: durable: phase 2 of the cross-shard commit only starts once every
#: participant's promise is on disk.
DURABLE_OPS = frozenset({OP_COMMIT, OP_UNDO_COMMIT, OP_ABORT, OP_PREPARE})


def _canonical(payload: dict[str, Any]) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


#: A string ``json.dumps`` would emit verbatim between quotes: printable
#: ASCII with no ``"`` (0x22) and no ``\`` (0x5C).  Transaction names in
#: practice are ``t.root``-style dotted paths, so this always matches on
#: the live path; anything stranger falls back to the full encoder.
_PLAIN_JSON_TEXT = re.compile(rb'^[\x20\x21\x23-\x5B\x5D-\x7E]*$')


def _encode_body(lsn: int, op: str, txn: str, data: dict[str, Any]) -> bytes:
    """Canonical JSON of the four non-crc fields.

    The field names sort as ``data < lsn < op < txn``, so the envelope
    around the one genuinely dynamic value (``data``) is a fixed
    template — built here by byte splicing with a **single**
    ``json.dumps`` call (the data payload) instead of serialising a
    wrapper dict.  ``json.dumps`` keeps ``ensure_ascii`` on, so the
    payload segment is pure ASCII and the splice cannot change the
    byte encoding.  Output is byte-identical to
    ``_canonical({"data": ..., "lsn": ..., "op": ..., "txn": ...})``,
    which the decode side still recomputes to verify the CRC.
    """
    txn_bytes = txn.encode("utf-8", "surrogatepass")
    if type(lsn) is not int or not _PLAIN_JSON_TEXT.match(txn_bytes):
        # A txn name needing JSON escaping (or an exotic lsn type) —
        # take the general path.
        return _canonical(
            {"data": data, "lsn": lsn, "op": op, "txn": txn}
        )
    data_json = json.dumps(
        data, sort_keys=True, separators=(",", ":")
    ).encode("ascii")
    return b'{"data":%b,"lsn":%d,"op":"%b","txn":"%b"}' % (
        data_json,
        lsn,
        op.encode("ascii"),
        txn_bytes,
    )


@dataclass(frozen=True)
class WalRecord:
    """One logical WAL record."""

    lsn: int
    op: str
    txn: str
    data: dict[str, Any]

    def __post_init__(self) -> None:
        if self.op not in ALL_OPS:
            raise DurabilityError(f"unknown WAL op {self.op!r}")

    @property
    def durable(self) -> bool:
        return self.op in DURABLE_OPS

    def encode(self) -> bytes:
        """The record as one newline-terminated JSONL line.

        ``"crc"`` sorts before the other four field names, so the
        framed line *is* the canonical five-field JSON with the crc
        spliced in front of the already-serialised body — one
        serialisation pass where the commit path used to pay two
        (once to checksum, once to frame).  Byte-identical to the
        original two-pass encoding; the determinism test in
        ``tests/durability/test_records.py`` holds the two against
        each other.
        """
        body = _encode_body(self.lsn, self.op, self.txn, self.data)
        return b'{"crc":%d,%b\n' % (zlib.crc32(body), body[1:])

    def encode_into(self, buffer: bytearray) -> int:
        """Append the framed line to ``buffer``; returns bytes added.

        The appender reuses one preallocated buffer across records so
        the per-append garbage is just the serialised data payload,
        not three throwaway line copies.
        """
        start = len(buffer)
        body = _encode_body(self.lsn, self.op, self.txn, self.data)
        buffer += b'{"crc":%d,' % zlib.crc32(body)
        buffer += memoryview(body)[1:]
        buffer += b"\n"
        return len(buffer) - start

    @classmethod
    def decode(cls, line: bytes) -> "WalRecord":
        """Parse one line; raises :class:`TornRecord` on any damage.

        Damage is indistinguishable between "torn tail" and "bit rot"
        at the record level — the *position* of the bad record (tail of
        the newest segment or not) decides which, and that is the
        replayer's call.
        """
        try:
            payload = json.loads(line)
        except (ValueError, UnicodeDecodeError) as error:
            raise TornRecord(f"undecodable WAL line: {error}") from None
        if not isinstance(payload, dict) or set(payload) != {
            "lsn",
            "op",
            "txn",
            "data",
            "crc",
        }:
            raise TornRecord("malformed WAL record shape")
        crc = payload.pop("crc")
        if crc != zlib.crc32(_canonical(payload)):
            raise TornRecord(
                f"checksum mismatch on WAL record lsn={payload.get('lsn')}"
            )
        try:
            return cls(
                lsn=payload["lsn"],
                op=payload["op"],
                txn=payload["txn"],
                data=payload["data"],
            )
        except DurabilityError as error:
            raise TornRecord(str(error)) from None


class TornRecord(DurabilityError):
    """A WAL line that fails to parse or checksum."""
