"""Crash-point fault-injection harness.

Runs a workload against a :class:`DurableTransactionManager` with one
armed crash point, lets the :class:`SimulatedCrash` fire, then builds a
*survivor copy* of the WAL directory modelling what stable storage
would hold and runs recovery on it.

Two survival models:

``kill``
    The process died (SIGKILL) but the machine did not.  Every byte
    handed to the OS survives — full file copies.  This is the model
    for the ``os.write``-before-return contract of the WAL.

``powerloss``
    The machine died.  Only fsynced bytes survive: each WAL segment in
    the survivor copy is truncated to the appender's
    :meth:`WriteAheadLog.durable_lengths` figure (group-committed but
    unflushed records vanish).  Checkpoint files are copied whole —
    they are fsynced before their atomic rename, so a visible
    checkpoint is a durable checkpoint; a half-written ``*.tmp`` is
    copied as-is and ignored by recovery.

The harness never asserts — it reports.  Tests make the claims:
recovery must land on exactly the durable committed prefix, and the
recovered state must verify.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..obs.metrics import MetricsRegistry
from ..storage.database import Database
from .crashpoints import CRASH_POINTS, CrashPoints, SimulatedCrash
from .manager import DurableTransactionManager
from .recovery import RecoveryResult, recover
from .wal import SEGMENT_PREFIX, SEGMENT_SUFFIX

MODES = ("kill", "powerloss")


@dataclass
class CrashOutcome:
    """What one simulated crash-and-recover run produced."""

    crash_point: str
    mode: str
    fired: bool
    #: Transactions the live manager saw committed at crash time.
    pre_crash_committed: list[str]
    #: Root-level world view at crash time (live manager's view).
    pre_crash_view: dict[str, int]
    survivor_dir: Path
    recovery: RecoveryResult
    workload_result: Any = None
    error: "Exception | None" = field(default=None, repr=False)

    @property
    def recovered_committed(self) -> list[str]:
        return list(self.recovery.committed)


def build_survivor_copy(
    live_dir: Path,
    survivor_dir: Path,
    *,
    mode: str = "kill",
    durable_lengths: "dict[str, int] | None" = None,
) -> Path:
    """Copy a WAL directory the way stable storage would keep it.

    ``durable_lengths`` (from :meth:`WriteAheadLog.durable_lengths`,
    captured at crash time) drives ``powerloss`` truncation; segments
    absent from the map predate this appender and are fully durable.
    """
    if mode not in MODES:
        raise ValueError(f"unknown crash mode {mode!r}; expected {MODES}")
    durable_lengths = durable_lengths or {}
    survivor_dir.mkdir(parents=True, exist_ok=True)
    for path in sorted(live_dir.iterdir()):
        if not path.is_file():
            continue
        target = survivor_dir / path.name
        is_segment = path.name.startswith(
            SEGMENT_PREFIX
        ) and path.name.endswith(SEGMENT_SUFFIX)
        if (
            mode == "powerloss"
            and is_segment
            and path.name in durable_lengths
        ):
            keep = durable_lengths[path.name]
            target.write_bytes(path.read_bytes()[:keep])
        else:
            shutil.copyfile(path, target)
    return survivor_dir


def simulate_crash(
    scratch_dir: "Path | str",
    database_factory: Callable[[], Database],
    workload: Callable[[DurableTransactionManager], Any],
    *,
    crash_point: str,
    at_hit: int = 1,
    mode: str = "kill",
    flush_interval: float = 0.0,
    checkpoint_every: int = 0,
    retain: int = 3,
    strict: bool = False,
    verify: bool = True,
    registry: MetricsRegistry | None = None,
) -> CrashOutcome:
    """Arm one crash point, run the workload, crash, recover a copy.

    ``scratch_dir`` receives two subdirectories: ``live`` (the dying
    process's WAL) and ``survivor`` (what recovery actually reads).
    The workload may itself raise — any non-crash exception is captured
    in :attr:`CrashOutcome.error` and recovery still runs, because a
    crashed *workload* is just another thing recovery must survive.
    """
    if crash_point not in CRASH_POINTS:
        raise ValueError(
            f"unknown crash point {crash_point!r}; "
            f"expected one of {CRASH_POINTS}"
        )
    scratch_dir = Path(scratch_dir)
    live_dir = scratch_dir / "live"
    survivor_dir = scratch_dir / "survivor"
    points = CrashPoints()

    manager, _ = DurableTransactionManager.open(
        live_dir,
        database_factory,
        flush_interval=flush_interval,
        checkpoint_every=checkpoint_every,
        retain=retain,
        strict=strict,
        crash_points=points,
    )
    # Arm only once the service is up: the crash targets the workload,
    # not the bootstrap checkpoint that open() writes.
    points.arm(crash_point, at_hit=at_hit)
    fired = False
    workload_result: Any = None
    error: "Exception | None" = None
    try:
        workload_result = workload(manager)
    except SimulatedCrash:
        fired = True
    except Exception as caught:  # noqa: BLE001 - reported, not hidden
        error = caught

    pre_crash_committed = _live_committed(manager)
    pre_crash_view = dict(manager.view(manager.root))
    durable_lengths = (
        manager.wal.durable_lengths() if manager.wal is not None else {}
    )
    # The live directory is the dead machine's disk from here on: no
    # close(), no final flush — that is exactly what a crash denies us.
    build_survivor_copy(
        live_dir,
        survivor_dir,
        mode=mode,
        durable_lengths=durable_lengths,
    )
    recovery = recover(
        survivor_dir, verify=verify, strict=strict, registry=registry
    )
    return CrashOutcome(
        crash_point=crash_point,
        mode=mode,
        fired=fired,
        pre_crash_committed=pre_crash_committed,
        pre_crash_view=pre_crash_view,
        survivor_dir=survivor_dir,
        recovery=recovery,
        workload_result=workload_result,
        error=error,
    )


def _live_committed(manager: DurableTransactionManager) -> list[str]:
    """Names the dying manager held as committed, at crash time."""
    from ..protocol.scheduler import TxnPhase

    return sorted(
        record.name
        for record in manager.iter_records()
        if record.phase is TxnPhase.COMMITTED
    )
