"""Atomic checkpoint files with checksums and retention.

A checkpoint is one JSON file ``checkpoint-{last_lsn:012d}.json``
holding the full logical state of the manager (see
:mod:`repro.durability.state`) as of WAL position ``last_lsn``,
protected by a SHA-256 over the canonical payload.  Publication is the
classic atomic dance: write to a temp file, fsync it, ``os.replace``
into place, fsync the directory — a crash at any point leaves either
the old set of checkpoints or the old set plus a complete new one,
never a half-written one with a valid name.

Retention keeps the newest ``retain`` checkpoints; recovery falls back
through them newest-first, skipping any that fail their checksum.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from ..errors import DurabilityError
from ..obs.metrics import MetricsRegistry
from .crashpoints import NULL_CRASH_POINTS, CrashPoints, SimulatedCrash
from .wal import _fsync_dir

CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".json"
FORMAT_VERSION = 1


def checkpoint_name(last_lsn: int) -> str:
    return f"{CHECKPOINT_PREFIX}{last_lsn:012d}{CHECKPOINT_SUFFIX}"


def checkpoint_lsn(path: Path) -> int:
    stem = path.name[len(CHECKPOINT_PREFIX) : -len(CHECKPOINT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise DurabilityError(
            f"not a checkpoint file name: {path.name}"
        ) from None


def _digest(last_lsn: int, state: dict[str, Any]) -> str:
    canonical = json.dumps(
        {"last_lsn": last_lsn, "state": state},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


class CheckpointStore:
    """Reads and writes the checkpoint files of one WAL directory."""

    def __init__(
        self,
        wal_dir: "Path | str",
        *,
        retain: int = 3,
        registry: MetricsRegistry | None = None,
        crash_points: CrashPoints | None = None,
    ) -> None:
        if retain < 1:
            raise DurabilityError("must retain at least one checkpoint")
        self._dir = Path(wal_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self.retain = retain
        self._registry = registry
        self._points = (
            crash_points if crash_points is not None else NULL_CRASH_POINTS
        )

    def checkpoints(self) -> list[Path]:
        """Checkpoint files, oldest first."""
        return sorted(
            (
                path
                for path in self._dir.iterdir()
                if path.name.startswith(CHECKPOINT_PREFIX)
                and path.name.endswith(CHECKPOINT_SUFFIX)
            ),
            key=checkpoint_lsn,
        )

    def oldest_retained_lsn(self) -> int | None:
        existing = self.checkpoints()
        return checkpoint_lsn(existing[0]) if existing else None

    # -- write -------------------------------------------------------------

    def write(self, state: dict[str, Any], last_lsn: int) -> Path:
        """Publish a checkpoint atomically; prune beyond ``retain``."""
        target = self._dir / checkpoint_name(last_lsn)
        payload = {
            "format": FORMAT_VERSION,
            "last_lsn": last_lsn,
            "sha256": _digest(last_lsn, state),
            "state": state,
        }
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        tmp = target.with_suffix(target.suffix + ".tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            if self._points.hit("checkpoint.mid_write"):
                os.write(fd, encoded[: max(1, len(encoded) // 2)])
                raise SimulatedCrash("checkpoint.mid_write")
            os.write(fd, encoded)
            os.fsync(fd)
        finally:
            os.close(fd)
        self._points.check("checkpoint.before_rename")
        os.replace(tmp, target)
        _fsync_dir(self._dir)
        self._points.check("checkpoint.after_rename")
        if self._registry is not None:
            self._registry.counter("durability.checkpoints").inc()
            self._registry.counter("durability.checkpoint_bytes").inc(
                len(encoded)
            )
        self._prune()
        self._points.check("checkpoint.after_retention")
        return target

    def _prune(self) -> None:
        existing = self.checkpoints()
        for stale in existing[: max(0, len(existing) - self.retain)]:
            stale.unlink()
        for leftover in self._dir.glob(f"{CHECKPOINT_PREFIX}*.tmp"):
            leftover.unlink()

    # -- read --------------------------------------------------------------

    def load_newest(self) -> "tuple[dict[str, Any], int] | None":
        """The newest checkpoint that passes its checksum, if any.

        Falls back through older checkpoints on damage; returns
        ``(state, last_lsn)`` or ``None`` when no usable checkpoint
        exists (fresh directory, or every candidate corrupt — the
        caller decides whether replay-from-scratch is possible).
        """
        for path in reversed(self.checkpoints()):
            loaded = self._load(path)
            if loaded is not None:
                return loaded
        return None

    def _load(self, path: Path) -> "tuple[dict[str, Any], int] | None":
        try:
            payload = json.loads(path.read_bytes())
        except (ValueError, OSError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != FORMAT_VERSION:
            return None
        state = payload.get("state")
        last_lsn = payload.get("last_lsn")
        if not isinstance(state, dict) or not isinstance(last_lsn, int):
            return None
        if payload.get("sha256") != _digest(last_lsn, state):
            return None
        if last_lsn != checkpoint_lsn(path):
            return None
        return state, last_lsn
