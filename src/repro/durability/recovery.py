"""The recovery pass: checkpoint + WAL replay + undo + verification.

Recovery is *verified*, per the Börger–Schewe–Wang / Biswas–Enea line
of work motivating this subsystem: it is not enough that the files come
back — the recovered state must itself be a correct execution prefix.
Two independent checks run after replay:

1. **Committed-prefix equality** — a separate fold over the raw WAL
   records (deliberately *not* sharing :meth:`LogicalState.apply`'s
   code path) recomputes which transactions are finally committed and
   what the root's world view must be; both must match the recovered
   manager exactly: no committed write lost, no uncommitted write
   visible.
2. **Correctness of the prefix** — the recovered database must satisfy
   the consistency predicate, and the Section-5 verification
   predicates (``verify_parent_based``, ``verify_correctness``) must
   hold over the resurrected records.

A non-empty violation list means the caller must refuse to serve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import RecoveryError
from ..obs.metrics import MetricsRegistry
from ..protocol.scheduler import TransactionManager, TxnPhase
from .records import (
    OP_ABORT,
    OP_COMMIT,
    OP_DEFINE,
    OP_UNDO_COMMIT,
    OP_WRITE,
    WalRecord,
)
from .snapshot import CheckpointStore
from .state import LogicalState, UndoReport
from .wal import ScanResult, scan_wal, truncate_torn_tail


@dataclass
class RecoveryResult:
    """Everything the recovery pass produced and measured."""

    manager: TransactionManager
    state: LogicalState
    checkpoint_lsn: int
    last_lsn: int
    records_replayed: int
    torn_tail_truncated: bool
    undo: UndoReport
    committed: list[str]
    violations: list[str] = field(default_factory=list)
    recovery_ms: float = 0.0

    @property
    def verified(self) -> bool:
        return not self.violations

    def summary(self) -> dict[str, Any]:
        return {
            "verified": self.verified,
            "checkpoint_lsn": self.checkpoint_lsn,
            "last_lsn": self.last_lsn,
            "records_replayed": self.records_replayed,
            "torn_tail_truncated": self.torn_tail_truncated,
            "committed": len(self.committed),
            "aborted_in_flight": list(self.undo.aborted_in_flight),
            "cascaded_aborts": list(self.undo.cascaded_aborts),
            "cascaded_commits": list(self.undo.cascaded_commits),
            "expunged_versions": self.undo.expunged_versions,
            "violations": list(self.violations),
            "recovery_ms": round(self.recovery_ms, 3),
        }


def recover(
    wal_dir: "Path | str",
    *,
    verify: bool = True,
    strict: bool = False,
    registry: MetricsRegistry | None = None,
) -> RecoveryResult:
    """Run the full recovery pass over one WAL directory.

    Raises :class:`RecoveryError` when the directory holds no usable
    checkpoint (every WAL directory starts life with one, so this
    means damage, not a fresh start), when the WAL is corrupt beyond a
    torn tail, or when replay is non-deterministic.  Verification
    failures do *not* raise — they are reported in ``violations`` so
    the caller can refuse to serve with full diagnostics.
    """
    started = time.perf_counter()
    wal_dir = Path(wal_dir)
    if not wal_dir.is_dir():
        raise RecoveryError(f"no WAL directory at {wal_dir}")
    checkpoints = CheckpointStore(wal_dir)
    loaded = checkpoints.load_newest()
    if loaded is None:
        raise RecoveryError(
            f"no usable checkpoint in {wal_dir} "
            "(corrupt, or not a WAL directory)"
        )
    checkpoint_state, checkpoint_lsn = loaded
    scan = scan_wal(wal_dir)
    torn = truncate_torn_tail(scan)

    state = LogicalState.from_dict(checkpoint_state)
    replayed = 0
    expected = checkpoint_lsn + 1
    for record in scan.records:
        if record.lsn <= checkpoint_lsn:
            continue
        if record.lsn != expected:
            raise RecoveryError(
                f"WAL gap: expected lsn {expected}, found {record.lsn} "
                f"(checkpoint at {checkpoint_lsn})"
            )
        state.apply(record)
        expected += 1
        replayed += 1
    last_lsn = max(checkpoint_lsn, scan.last_lsn)

    undo = state.undo_in_flight()
    manager = state.materialize(strict=strict, registry=registry)

    result = RecoveryResult(
        manager=manager,
        state=state,
        checkpoint_lsn=checkpoint_lsn,
        last_lsn=last_lsn,
        records_replayed=replayed,
        torn_tail_truncated=torn,
        undo=undo,
        committed=state.committed_names(),
    )
    if verify:
        result.violations = verify_recovery(scan, result)
    result.recovery_ms = (time.perf_counter() - started) * 1000.0
    if registry is not None:
        registry.gauge("recovery.time_ms").set(result.recovery_ms)
        registry.gauge("recovery.records_replayed").set(replayed)
        registry.counter("recovery.runs").inc()
        if not result.verified:
            registry.counter("recovery.verification_failures").inc()
    return result


# ---------------------------------------------------------------------------
# Verification
# ---------------------------------------------------------------------------


def verify_recovery(
    scan: ScanResult, result: RecoveryResult
) -> list[str]:
    """Independent checks of the recovered state; empty = verified."""
    violations: list[str] = []
    violations.extend(_check_committed_prefix(scan.records, result))
    violations.extend(_check_consistency(result))
    violations.extend(_check_protocol_predicates(result.manager))
    return violations


def _fold_committed(
    records: list[WalRecord], dead: set[str]
) -> tuple[list[str], dict[str, dict[str, int]], dict[str, str]]:
    """A minimal second opinion on who committed what.

    Scans raw COMMIT/UNDO_COMMIT/ABORT records (ignoring everything
    :meth:`LogicalState.apply` tracks beyond them) and removes the
    transactions recovery's undo pass declared dead.  Returns the
    final commit order, each survivor's released values, and each
    survivor's parent.
    """
    order: list[str] = []
    released: dict[str, dict[str, int]] = {}
    parents: dict[str, str] = {}
    for record in records:
        if record.op == OP_COMMIT:
            if record.txn not in order:
                order.append(record.txn)
            released[record.txn] = dict(record.data["released"])
        elif record.op == OP_UNDO_COMMIT:
            if record.txn in order:
                order.remove(record.txn)
            released.pop(record.txn, None)
        elif record.op == OP_ABORT:
            for name in record.data["aborted"]:
                if name in order:
                    order.remove(name)
                released.pop(name, None)
        elif record.op == OP_DEFINE:
            parents[record.txn] = record.data["parent"]
    survivors = [name for name in order if name not in dead]
    return survivors, released, parents


def _check_committed_prefix(
    records: list[WalRecord], result: RecoveryResult
) -> list[str]:
    violations: list[str] = []
    state = result.state
    manager = result.manager
    dead = set(result.undo.all_dead)

    # Which transactions the WAL says finally committed.  Checkpointed
    # commits may predate the scanned records (their COMMIT lsn can be
    # below a cleaned-up segment), so the fold is seeded from the
    # checkpoint's committed set minus anything the records or undo
    # pass later retracted.
    fold_order, fold_released, fold_parents = _fold_committed(
        records, dead
    )
    recovered = set(result.committed)
    replay_floor = records[0].lsn if records else None
    fold_set = set(fold_order)
    for name in list(recovered):
        txn = state.txns[name]
        if name in fold_set:
            continue
        if (
            replay_floor is None
            or (txn.commit_lsn or 0) < replay_floor
        ):
            # Committed before the scanned window: the checkpoint is
            # the only witness, which is fine.
            fold_set.add(name)
        else:
            violations.append(
                f"{name} is committed after recovery but the WAL "
                "records no surviving commit for it"
            )
    for name in fold_set - recovered:
        violations.append(
            f"{name} committed durably but is not committed after "
            "recovery (committed write lost)"
        )

    # Every surviving committed transaction's logged writes must be
    # present in the recovered store, and every recovered version must
    # belong to a surviving committed transaction (or be initial).
    committed_writes: dict[tuple[str, int], tuple[str, int]] = {}
    for record in records:
        if record.op == OP_WRITE and record.txn in recovered:
            committed_writes[
                (record.data["entity"], record.data["sequence"])
            ] = (record.txn, record.data["value"])
    store = manager.database.store
    live = {
        (version.entity, version.sequence): version
        for version in store
    }
    for (entity, sequence), (txn, value) in committed_writes.items():
        version = live.get((entity, sequence))
        if version is None:
            violations.append(
                f"committed write {entity}#{sequence} by {txn} "
                "missing from recovered store"
            )
        elif version.value != value or version.author != txn:
            violations.append(
                f"recovered version {entity}#{sequence} does not "
                f"match the WAL ({version.value}@{version.author} "
                f"vs {value}@{txn})"
            )
    for (entity, sequence), version in live.items():
        author = version.author
        if author is None:
            continue
        author_state = state.txns.get(author)
        if author_state is None or author_state.phase != "committed":
            violations.append(
                f"uncommitted write {entity}#{sequence} by {author} "
                "visible after recovery"
            )

    # Root-view equality: fold the surviving root-level releases in
    # commit order and compare with the recovered manager's world.
    fold_view = dict(state.initial)
    for name in result.committed:
        parent = fold_parents.get(name) or state.txns[name].parent
        if parent != state.root:
            continue
        values = fold_released.get(name)
        if values is None:
            # Commit predates the scanned window; trust the
            # checkpointed release log entry instead.
            for child, released in state.txns[state.root].release_log:
                if child == name:
                    values = dict(released)
                    break
        if values:
            fold_view.update(values)
    recovered_view = manager.view(manager.root)
    if fold_view != recovered_view:
        diff = {
            entity: (fold_view.get(entity), recovered_view.get(entity))
            for entity in set(fold_view) | set(recovered_view)
            if fold_view.get(entity) != recovered_view.get(entity)
        }
        violations.append(
            f"recovered root view diverges from committed prefix: {diff}"
        )
    return violations


def _check_consistency(result: RecoveryResult) -> list[str]:
    violations: list[str] = []
    database = result.manager.database
    view = result.manager.view(result.manager.root)
    if not database.constraint.evaluate(view):
        violations.append(
            "recovered world view violates the consistency "
            f"predicate {database.constraint}"
        )
    if not database.has_consistent_version_state():
        violations.append(
            "no consistent version state exists in the recovered store"
        )
    return violations


def _check_protocol_predicates(
    manager: TransactionManager,
) -> list[str]:
    violations: list[str] = []
    seen: set[str] = set()
    for record in list(manager.iter_records()):
        if record.name in seen:
            continue
        seen.add(record.name)
        if not record.children:
            continue
        if record.phase is TxnPhase.ABORTED:
            continue
        for violation in manager.verify_parent_based(record.name):
            violations.append(f"parent-based: {violation}")
        for violation in manager.verify_correctness(record.name):
            violations.append(f"correctness: {violation}")
    return violations
